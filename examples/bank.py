"""A small distributed bank — the classic Network Objects demo.

Run:  python examples/bank.py

What it exercises beyond the quickstart:

* network objects returned from methods: each account is its own
  object, created at the bank and handed to clients as a reference;
* registered application structs (transaction records) crossing the
  wire inside ordinary data structures;
* two concurrent clients sharing one account object — invocations
  serialise at the owner, where the concrete object lives;
* distributed GC: when clients drop account references, the bank's
  dirty sets empty and unneeded account objects become collectable.
"""

import threading
from dataclasses import dataclass
from typing import List

from repro import NetObj, RemoteError, Space, register_struct


@register_struct
@dataclass
class Transaction:
    """A plain data record; registered so it can cross the wire."""

    kind: str
    amount: int
    balance_after: int


class Account(NetObj):
    """One account: a network object owned by the bank's space."""

    def __init__(self, name: str):
        self.name = name
        self._balance = 0
        self._history: List[Transaction] = []
        self._lock = threading.Lock()

    def deposit(self, amount: int) -> int:
        if amount <= 0:
            raise ValueError("deposit must be positive")
        with self._lock:
            self._balance += amount
            self._history.append(
                Transaction("deposit", amount, self._balance)
            )
            return self._balance

    def withdraw(self, amount: int) -> int:
        with self._lock:
            if amount > self._balance:
                raise ValueError(
                    f"insufficient funds: {self._balance} < {amount}"
                )
            self._balance -= amount
            self._history.append(
                Transaction("withdraw", amount, self._balance)
            )
            return self._balance

    def balance(self) -> int:
        with self._lock:
            return self._balance

    def statement(self) -> List[Transaction]:
        with self._lock:
            return list(self._history)


class Bank(NetObj):
    """The bank hands out Account references on demand."""

    def __init__(self):
        self._accounts = {}
        self._lock = threading.Lock()

    def open_account(self, name: str) -> Account:
        with self._lock:
            if name not in self._accounts:
                self._accounts[name] = Account(name)
            return self._accounts[name]

    def account_names(self) -> List[str]:
        with self._lock:
            return sorted(self._accounts)


def client_worker(endpoint: str, who: str, rounds: int) -> None:
    with Space(f"client-{who}") as space:
        bank = space.import_object(endpoint, "bank")
        account = bank.open_account("shared")   # a reference result
        for _ in range(rounds):
            account.deposit(10)
        print(f"[{who}] balance now {account.balance()}")


def main() -> None:
    with Space("bank", listen=["tcp://127.0.0.1:0"]) as bank_space:
        bank_space.serve("bank", Bank())
        endpoint = bank_space.endpoints[0]
        print(f"bank serving on {endpoint}")

        # Two clients hammer the same account concurrently.
        threads = [
            threading.Thread(target=client_worker, args=(endpoint, who, 50))
            for who in ("alice", "bob")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Audit from a third client.
        with Space("auditor") as auditor:
            bank = auditor.import_object(endpoint, "bank")
            account = bank.open_account("shared")
            assert account.balance() == 1000, account.balance()
            history = account.statement()
            print(f"audit: {len(history)} transactions, "
                  f"final balance {history[-1].balance_after}")
            assert isinstance(history[-1], Transaction)

            # Remote exceptions arrive as RemoteError with the
            # original kind and a server-side traceback.
            try:
                account.withdraw(10_000)
            except RemoteError as exc:
                print(f"expected failure: {exc.kind}: {exc.message}")
                assert exc.kind == "ValueError"

    print("done.")


if __name__ == "__main__":
    main()
