"""Watching the distributed collector work.

Run:  python examples/gc_observatory.py

A narrated tour of the reference life cycle: dirty calls on import,
the Figure-1 handoff race (pass a reference and drop it immediately),
clean calls on surrogate death, and crash recovery via the pinger.
Prints the collector's own statistics at each step so you can see the
protocol happening.
"""

import gc
import time
import weakref

from repro import GcConfig, NetObj, Space


class Token(NetObj):
    def __init__(self, label: str):
        self.label = label

    def ping(self) -> str:
        return f"token {self.label} alive"


class Vault(NetObj):
    """Creates Tokens kept alive only by remote references."""

    def __init__(self):
        self.issued = []

    def issue(self, label: str) -> Token:
        token = Token(label)
        self.issued.append(weakref.ref(token))
        return token

    def live_tokens(self) -> int:
        gc.collect()
        return sum(1 for ref in self.issued if ref() is not None)


class Shelf(NetObj):
    """A place to park references (the third party)."""

    def __init__(self):
        self.items = []

    def put(self, item) -> int:
        self.items.append(item)
        return len(self.items)

    def clear(self) -> None:
        self.items.clear()
        gc.collect()


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def wait_for(predicate, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        gc.collect()
        time.sleep(0.02)
    return predicate()


def main() -> None:
    gc_config = GcConfig(ping_interval=0.1, ping_timeout=0.5,
                         ping_max_failures=2)
    owner = Space("owner", listen=["tcp://127.0.0.1:0"], gc=gc_config)
    courier = Space("courier", listen=["tcp://127.0.0.1:0"])
    keeper = Space("keeper", listen=["tcp://127.0.0.1:0"])
    try:
        vault = Vault()
        owner.serve("vault", vault)
        keeper.serve("shelf", Shelf())

        banner("import: ⊥ → nil → OK (dirty call + ack)")
        vault_at_courier = courier.import_object(owner.endpoints[0], "vault")
        token = vault_at_courier.issue("T1")
        print("courier got:", token.ping())
        print("courier stats:", {
            k: v for k, v in courier.gc_stats().items()
            if k in ("surrogates", "dirty_calls_sent")
        })
        print("owner sees dirty calls:",
              owner.gc_stats()["dirty_calls_seen"])

        banner("Figure-1 race: hand off and drop immediately")
        shelf_at_courier = courier.import_object(keeper.endpoints[0], "shelf")
        shelf_at_courier.put(token)
        del token                     # courier lets go at once
        gc.collect()
        courier.cleanup_daemon.wait_idle()
        print("live tokens at owner:", vault_at_courier.live_tokens())
        assert vault_at_courier.live_tokens() == 1, "premature collection!"

        banner("surrogate death → clean call → reclamation")
        keeper.agent.get("shelf").clear()   # keeper drops its reference
        assert wait_for(lambda: vault_at_courier.live_tokens() == 0)
        print("live tokens at owner:", vault_at_courier.live_tokens())
        print("owner clean calls seen:",
              owner.gc_stats()["clean_calls_seen"])

        banner("crash recovery: pinger purges a dead client")
        token2 = vault_at_courier.issue("T2")
        print("issued", token2.ping())
        assert vault_at_courier.live_tokens() == 1
        keep_vault_alive = keeper.import_object(owner.endpoints[0], "vault")
        print("courier space now 'crashes' (no clean calls sent)...")
        courier.shutdown()
        assert wait_for(lambda: keep_vault_alive.live_tokens() == 0,
                        timeout=10)
        print("owner purged the dead client; tokens reclaimed:",
              keep_vault_alive.live_tokens() == 0)
        print("pinger purges performed:", owner.pinger.clients_purged)
    finally:
        courier.shutdown()
        keeper.shutdown()
        owner.shutdown()
    print("\ndone.")


if __name__ == "__main__":
    main()
