"""A chat hub built on third-party reference transfer and callbacks.

Run:  python examples/chat_thirdparty.py

Every participant owns a Mailbox network object and registers it with
the hub.  Delivering a message means the *hub* invokes a method on an
object owned by a *client* — the connection is symmetric, exactly as
in the paper.  When a participant asks for a peer's mailbox, the hub
hands over a reference it merely holds (it is not the owner): a
third-party transfer, after which the two participants talk directly
and the hub is out of the loop.
"""

import threading

from repro import NetObj, Space


class Mailbox(NetObj):
    """Client-owned message sink."""

    def __init__(self, who: str):
        self.who = who
        self.messages = []
        self._cond = threading.Condition()

    def deliver(self, sender: str, text: str) -> None:
        with self._cond:
            self.messages.append((sender, text))
            self._cond.notify_all()

    def wait_for(self, count: int, timeout: float = 5.0) -> list:
        with self._cond:
            self._cond.wait_for(lambda: len(self.messages) >= count,
                                timeout=timeout)
            return list(self.messages)


class Hub(NetObj):
    """The rendezvous: holds references to mailboxes it does not own."""

    def __init__(self):
        self._boxes = {}
        self._lock = threading.Lock()

    def join(self, who: str, mailbox: Mailbox) -> list:
        with self._lock:
            self._boxes[who] = mailbox
            return sorted(self._boxes)

    def broadcast(self, sender: str, text: str) -> int:
        with self._lock:
            targets = [
                (who, box) for who, box in self._boxes.items()
                if who != sender
            ]
        for _who, box in targets:
            box.deliver(sender, text)      # hub -> client callback
        return len(targets)

    def mailbox_of(self, who: str) -> Mailbox:
        """Third-party transfer: the requester receives a reference to
        an object owned by another participant."""
        with self._lock:
            return self._boxes[who]


def main() -> None:
    with Space("hub", listen=["tcp://127.0.0.1:0"]) as hub_space:
        hub_space.serve("hub", Hub())
        endpoint = hub_space.endpoints[0]
        print(f"hub on {endpoint}")

        alice_space = Space("alice", listen=["tcp://127.0.0.1:0"])
        bob_space = Space("bob", listen=["tcp://127.0.0.1:0"])
        try:
            alice_box = Mailbox("alice")
            bob_box = Mailbox("bob")

            alice_hub = alice_space.import_object(endpoint, "hub")
            bob_hub = bob_space.import_object(endpoint, "hub")

            print("alice joins:", alice_hub.join("alice", alice_box))
            print("bob joins:  ", bob_hub.join("bob", bob_box))

            # Hub-mediated broadcast: the hub calls back into both
            # client-owned mailboxes.
            delivered = alice_hub.broadcast("alice", "hello everyone")
            print(f"broadcast reached {delivered} peer(s)")
            assert bob_box.wait_for(1) == [("alice", "hello everyone")]

            # Third-party transfer: bob obtains *alice's* mailbox from
            # the hub and then talks to alice directly — the message
            # below travels bob -> alice, not through the hub.
            alices_box_at_bob = bob_hub.mailbox_of("alice")
            alices_box_at_bob.deliver("bob", "psst, direct message")
            messages = alice_box.wait_for(1)
            print("alice received:", messages)
            assert ("bob", "psst, direct message") in messages

            # The distributed collector now lists BOTH the hub's space
            # and bob's space in alice's mailbox dirty set.
            index = alice_space.object_table.export(alice_box).index
            dirty = alice_space.dgc_owner.dirty_set(index)
            names = sorted(sid.nickname for sid in dirty)
            print(f"alice's mailbox dirty set: {names}")
            assert len(dirty) == 2
        finally:
            bob_space.shutdown()
            alice_space.shutdown()

    print("done.")


if __name__ == "__main__":
    main()
