"""A remote file service with stream-like reader/writer objects.

Run:  python examples/fileserver.py

The original paper's marquee example is a network file service whose
open files are network objects (subtypes of the I/O stream types).
This example reproduces that shape: ``FileServer.open_write`` /
``open_read`` return per-session Writer/Reader network objects whose
lifetime is managed *entirely by the distributed collector* — when a
client drops its handle (or crashes), the collector's clean call (or
the pinger) retires the session object at the server.
"""

import gc

from repro import NetObj, Space


class Writer(NetObj):
    """A write handle on one file (a per-session network object)."""

    def __init__(self, store: dict, path: str):
        self._store = store
        self._path = path
        self._chunks = []
        self._open = True

    def write(self, chunk: bytes) -> int:
        if not self._open:
            raise IOError("writer is closed")
        self._chunks.append(bytes(chunk))
        return sum(map(len, self._chunks))

    def close(self) -> None:
        if self._open:
            self._store[self._path] = b"".join(self._chunks)
            self._open = False


class Reader(NetObj):
    """A read handle with a cursor, chunked transfer."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def read(self, size: int = 4096) -> bytes:
        chunk = self._data[self._pos:self._pos + size]
        self._pos += len(chunk)
        return chunk

    def seek(self, pos: int) -> None:
        if not 0 <= pos <= len(self._data):
            raise ValueError(f"seek out of range: {pos}")
        self._pos = pos

    def size(self) -> int:
        return len(self._data)


class FileServer(NetObj):
    def __init__(self):
        self._store: dict = {}

    def open_write(self, path: str) -> Writer:
        return Writer(self._store, path)

    def open_read(self, path: str) -> Reader:
        if path not in self._store:
            raise FileNotFoundError(path)
        return Reader(self._store[path])

    def listing(self) -> list:
        return sorted(self._store)


def main() -> None:
    with Space("fileserver", listen=["tcp://127.0.0.1:0"]) as server_space:
        server_space.serve("files", FileServer())
        endpoint = server_space.endpoints[0]
        print(f"file server on {endpoint}")

        payload = bytes(range(256)) * 512  # 128 KiB

        with Space("writer-client") as writer_space:
            files = writer_space.import_object(endpoint, "files")
            writer = files.open_write("/data/blob.bin")
            total = 0
            for offset in range(0, len(payload), 16384):
                total = writer.write(payload[offset:offset + 16384])
            writer.close()
            print(f"wrote {total} bytes in chunks")
            assert total == len(payload)

        with Space("reader-client") as reader_space:
            files = reader_space.import_object(endpoint, "files")
            print("listing:", files.listing())
            reader = files.open_read("/data/blob.bin")
            assert reader.size() == len(payload)
            received = bytearray()
            while True:
                chunk = reader.read(20000)
                if not chunk:
                    break
                received += chunk
            assert bytes(received) == payload
            print(f"read back {len(received)} bytes intact")

            # Random access through the same handle.
            reader.seek(100)
            assert reader.read(5) == payload[100:105]

            # Session-object GC: the Reader exists at the server only
            # because our surrogate pins it via the dirty set.
            exported_before = server_space.gc_stats()["exported"]
            del reader
            gc.collect()
            reader_space.cleanup_daemon.wait_idle()
            import time

            deadline = time.time() + 5
            while time.time() < deadline:
                if server_space.gc_stats()["exported"] < exported_before:
                    break
                time.sleep(0.02)
            exported_after = server_space.gc_stats()["exported"]
            print(f"server exported entries: {exported_before} -> "
                  f"{exported_after} (reader session collected)")
            assert exported_after < exported_before

    print("done.")


if __name__ == "__main__":
    main()
