"""Quickstart: a counter served over real TCP.

Run:  python examples/quickstart.py

Two address spaces in one process (they could as well be two machines):
a server exports a Counter under a name; a client bootstraps from the
server's endpoint, imports the counter and invokes it through the
automatically generated surrogate.
"""

from repro import NetObj, Space


class Counter(NetObj):
    """A network object: every public method is remotely invocable."""

    def __init__(self):
        self.n = 0

    def increment(self, by: int = 1) -> int:
        self.n += by
        return self.n

    def value(self) -> int:
        return self.n


def main() -> None:
    # The server space listens on an ephemeral TCP port and publishes
    # a Counter instance in its agent (name server).
    with Space("server", listen=["tcp://127.0.0.1:0"]) as server:
        server.serve("counter", Counter())
        endpoint = server.endpoints[0]
        print(f"server listening on {endpoint}")

        # The client space imports by name and calls methods; the
        # surrogate marshals arguments, performs the remote call and
        # unmarshals results.
        with Space("client") as client:
            counter = client.import_object(endpoint, "counter")
            print(f"imported: {counter!r}")

            print("increment()      ->", counter.increment())
            print("increment(41)    ->", counter.increment(41))
            print("value()          ->", counter.value())
            assert counter.value() == 42

            # The distributed collector at work: the server lists this
            # client in the counter's dirty set.
            stats = client.gc_stats()
            print(f"client GC stats: surrogates={stats['surrogates']}, "
                  f"dirty_calls_sent={stats['dirty_calls_sent']}")

    print("done.")


if __name__ == "__main__":
    main()
