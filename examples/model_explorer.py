"""Driving the formal model: verify the collector, break the strawmen.

Run:  python examples/model_explorer.py

The distributed collector in this repository is anchored to an
executable formal model.  This example uses the model's public API to:

1. exhaustively verify every invariant of the algorithm over all
   reachable configurations of a bounded instance;
2. ask the same explorer to *break* naive reference counting — and
   print the mechanical counterexample it finds (paper Figure 1);
3. check the fault-tolerant extension with and without sequence
   numbers, deriving the duplicated-clean race in the latter case.
"""

from repro.model import Machine, explore, initial_configuration
from repro.model.scenario import run_events, third_party
from repro.model.variants import (
    FaultyMachine,
    NaiveMachine,
    faulty_safety_violations,
    initial_faulty,
    initial_naive,
    naive_violations,
)


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    banner("1. exhaustive verification of Birrell's algorithm")
    config = initial_configuration(nprocs=3, nrefs=1, copies_left=2)
    result = explore(config, keep_traces=False)
    print(f"explored: {result.summary()}")
    assert result.ok

    banner("2. message accounting for a third-party handoff")
    run = run_events(3, third_party())
    print(f"GC messages: {dict(run.messages)}")
    print(f"object reclaimed: {not run.owner_entry_exists()}")

    banner("3. breaking naive reference counting")
    naive = explore(
        initial_naive(nprocs=3, copies_left=2),
        machine=NaiveMachine(),
        checker=naive_violations,
        keep_traces=True,
    )
    assert not naive.ok
    violation = naive.violations[0]
    print(f"race found after {naive.states} states:")
    for step in violation.trace:
        print(f"   {step}")
    print(f"-> {violation.messages[0]}")

    banner("4. fault tolerance needs the sequence numbers")
    with_seqnos = explore(
        initial_faulty(nprocs=2, copies_left=2, losses_left=1,
                       timeouts_left=1, use_seqnos=True),
        machine=FaultyMachine(),
        checker=faulty_safety_violations,
        keep_traces=False,
    )
    print(f"with seqnos:    {with_seqnos.summary()}")
    assert with_seqnos.ok

    without = explore(
        initial_faulty(nprocs=2, copies_left=2, losses_left=0,
                       timeouts_left=1, use_seqnos=False),
        machine=FaultyMachine(),
        checker=faulty_safety_violations,
        keep_traces=True,
    )
    print(f"without seqnos: {without.summary()}")
    assert not without.ok
    print("the duplicated-clean race, mechanically derived:")
    for step in without.violations[0].trace:
        print(f"   {step}")

    print("\ndone.")


if __name__ == "__main__":
    main()
