"""Tests for surrogate streams (reader/writer marshaling)."""

import io

import pytest

from repro import NetObj, Space, Surrogate
from repro.streams import (
    ReaderStream,
    WriterStream,
    as_file,
    export_reader,
    export_writer,
)


class StreamServer(NetObj):
    """Hands out reader/writer stream objects for named buffers."""

    def __init__(self):
        self.buffers = {}

    def open_read(self, name: str) -> ReaderStream:
        return export_reader(io.BytesIO(self.buffers[name]))

    def open_write(self, name: str) -> WriterStream:
        sink = io.BytesIO()
        original_close = sink.close

        def close_and_store():
            self.buffers[name] = sink.getvalue()
            original_close()

        sink.close = close_and_store
        return export_writer(sink)


@pytest.fixture()
def stream_spaces(request):
    endpoint = f"inproc://streams-{request.node.name}"
    server = Space("server", listen=[endpoint])
    client = Space("client")
    server.serve("streams", StreamServer())
    yield server, client, endpoint
    client.shutdown()
    server.shutdown()


class TestLocalAdapters:
    def test_reader_round_trip(self):
        stream = export_reader(io.BytesIO(b"hello stream"))
        fileobj = as_file(stream)
        assert fileobj.read() == b"hello stream"

    def test_writer_round_trip(self):
        sink = io.BytesIO()
        fileobj = as_file(export_writer(sink))
        fileobj.write(b"payload")
        fileobj.flush()
        assert sink.getvalue() == b"payload"

    def test_buffered_small_reads(self):
        stream = export_reader(io.BytesIO(bytes(range(256)) * 100))
        fileobj = as_file(stream, buffer_size=1024)
        assert fileobj.read(3) == b"\x00\x01\x02"
        assert fileobj.read(2) == b"\x03\x04"

    def test_seek(self):
        fileobj = as_file(export_reader(io.BytesIO(b"0123456789")))
        fileobj.seek(5)
        assert fileobj.read(2) == b"56"

    def test_not_a_stream(self):
        with pytest.raises(TypeError):
            as_file(42)


class TestRemoteStreams:
    def test_remote_write_then_read(self, stream_spaces):
        server, client, endpoint = stream_spaces
        remote = client.import_object(endpoint, "streams")

        writer = remote.open_write("doc")
        assert isinstance(writer, Surrogate)
        out = as_file(writer)
        payload = bytes(range(256)) * 300  # ~77 KiB, crosses buffers
        out.write(payload)
        out.close()

        reader = remote.open_read("doc")
        assert isinstance(reader, Surrogate)
        inp = as_file(reader)
        assert inp.read() == payload

    def test_small_reads_are_batched(self, stream_spaces):
        """The buffer turns many small reads into few remote calls."""
        server, client, endpoint = stream_spaces
        remote = client.import_object(endpoint, "streams")
        writer = as_file(remote.open_write("blob"))
        writer.write(b"x" * 10000)
        writer.close()

        reader_surrogate = remote.open_read("blob")
        calls = {"n": 0}
        original = reader_surrogate.read

        def counting_read(size):
            calls["n"] += 1
            return original(size)

        # Count remote refills through a wrapper object.
        class CountingStream:
            read = staticmethod(counting_read)
            seekable = staticmethod(reader_surrogate.seekable)
            seek = staticmethod(reader_surrogate.seek)
            close = staticmethod(reader_surrogate.close)

        fileobj = as_file(CountingStream(), buffer_size=4096)
        total = 0
        while True:
            chunk = fileobj.read(100)  # 100 tiny application reads
            if not chunk:
                break
            total += len(chunk)
        assert total == 10000
        assert calls["n"] <= 5, "buffering failed to batch remote reads"

    def test_remote_seek(self, stream_spaces):
        server, client, endpoint = stream_spaces
        remote = client.import_object(endpoint, "streams")
        writer = as_file(remote.open_write("s"))
        writer.write(b"abcdefghij")
        writer.close()
        reader = as_file(remote.open_read("s"), buffer_size=4)
        reader.seek(6)
        assert reader.read(3) == b"ghi"

    def test_stream_lifetime_is_gc_managed(self, stream_spaces):
        """Dropping the client's stream surrogate lets the collector
        retire the concrete stream object at the server."""
        import gc
        import time

        server, client, endpoint = stream_spaces
        remote = client.import_object(endpoint, "streams")
        writer = as_file(remote.open_write("temp"))
        writer.write(b"data")
        writer.close()

        reader = remote.open_read("temp")
        exported_before = server.stats()["gc"]["exported"]
        del reader
        gc.collect()
        client.cleanup_daemon.wait_idle()
        deadline = time.time() + 5
        while (time.time() < deadline
               and server.stats()["gc"]["exported"] >= exported_before):
            time.sleep(0.02)
        assert server.stats()["gc"]["exported"] < exported_before
