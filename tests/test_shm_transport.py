"""The shared-memory ring transport.

Three layers of coverage: the raw channel (rings, doorbell, blocking
mode, big frames vs. small rings), the failure semantics the satellite
demands (peer process dies mid-frame → CommFailure, stale rendezvous
socket → silent TCP fallback), and the Space-level auto-upgrade
(loopback TCP endpoints transparently ride shm; ``shm="off"`` opts
out).
"""

from __future__ import annotations

import os
import socket
import struct
import subprocess
import sys
import tempfile
import threading
import time

import pytest

from repro import Space
from repro.core.netobj import NetObj
from repro.errors import CommFailure
from repro.transport.shm import ShmTransport, rendezvous_path
from repro.wire.framing import pack_frame


class Echo(NetObj):
    def echo(self, value):
        return value


def _unique_endpoint() -> str:
    path = os.path.join(
        tempfile.gettempdir(), f"repro-shm-test-{os.getpid()}-{id(object())}.sock"
    )
    return f"shm://{path}"


class _Collector:
    """on_connect sink that parks accepted channels for the test."""

    def __init__(self):
        self.channels = []
        self.ready = threading.Event()

    def __call__(self, channel):
        self.channels.append(channel)
        self.ready.set()


class TestRawChannel:
    def test_round_trip_both_directions(self):
        transport = ShmTransport()
        accepted = _Collector()
        listener = transport.listen(_unique_endpoint(), accepted)
        dialer = transport.connect(listener.endpoint)
        try:
            assert accepted.ready.wait(5)
            server = accepted.channels[0]
            dialer.send(b"ping")
            assert server.recv(timeout=5) == b"ping"
            server.send(b"pong")
            assert dialer.recv(timeout=5) == b"pong"
        finally:
            dialer.close()
            for channel in accepted.channels:
                channel.close()
            listener.close()

    def test_many_frames_in_order(self):
        transport = ShmTransport()
        accepted = _Collector()
        listener = transport.listen(_unique_endpoint(), accepted)
        dialer = transport.connect(listener.endpoint)
        try:
            assert accepted.ready.wait(5)
            server = accepted.channels[0]
            for i in range(200):
                dialer.send(b"frame-%d" % i)
            for i in range(200):
                assert server.recv(timeout=5) == b"frame-%d" % i
        finally:
            dialer.close()
            for channel in accepted.channels:
                channel.close()
            listener.close()

    def test_frame_larger_than_ring(self):
        """A frame bigger than the ring streams through in chunks:
        the producer spins for space while the consumer drains."""
        transport = ShmTransport(capacity=4096)
        accepted = _Collector()
        listener = transport.listen(_unique_endpoint(), accepted)
        dialer = transport.connect(listener.endpoint)
        payload = bytes(range(256)) * 256  # 64 KiB through a 4 KiB ring
        try:
            assert accepted.ready.wait(5)
            server = accepted.channels[0]
            received = []
            reader = threading.Thread(
                target=lambda: received.append(server.recv(timeout=10))
            )
            reader.start()
            dialer.send(payload)
            reader.join(timeout=10)
            assert not reader.is_alive()
            assert bytes(received[0]) == payload
        finally:
            dialer.close()
            for channel in accepted.channels:
                channel.close()
            listener.close()

    def test_clean_eof_between_frames(self):
        transport = ShmTransport()
        accepted = _Collector()
        listener = transport.listen(_unique_endpoint(), accepted)
        dialer = transport.connect(listener.endpoint)
        try:
            assert accepted.ready.wait(5)
            server = accepted.channels[0]
            dialer.send(b"last words")
            dialer.close()
            # Frames already in shared memory survive the close.
            assert server.recv(timeout=5) == b"last words"
            assert server.recv(timeout=5) is None
        finally:
            for channel in accepted.channels:
                channel.close()
            listener.close()

    def test_listener_unlinks_rendezvous_socket(self):
        transport = ShmTransport()
        endpoint = _unique_endpoint()
        listener = transport.listen(endpoint, _Collector())
        path = endpoint[len("shm://"):]
        assert os.path.exists(path)
        listener.close()
        assert not os.path.exists(path)

    def test_backing_file_is_unlinked_after_setup(self):
        """The dialer unlinks the segment the moment the listener has
        mapped it, so a later crash leaks no files."""
        transport = ShmTransport()
        accepted = _Collector()
        listener = transport.listen(_unique_endpoint(), accepted)
        before = set(os.listdir(tempfile.gettempdir()))
        dialer = transport.connect(listener.endpoint)
        try:
            leftover = {
                name for name in os.listdir(tempfile.gettempdir())
                if name.startswith("repro-shm-seg-") and name not in before
            }
            assert not leftover
        finally:
            dialer.close()
            for channel in accepted.channels:
                channel.close()
            listener.close()


class TestPeerDeath:
    def test_peer_dies_mid_frame_blocking_recv(self):
        """A peer that vanishes after half a frame must surface
        CommFailure, not a clean EOF and not a hang."""
        transport = ShmTransport()
        accepted = _Collector()
        listener = transport.listen(_unique_endpoint(), accepted)
        dialer = transport.connect(listener.endpoint)
        try:
            assert accepted.ready.wait(5)
            server = accepted.channels[0]
            # Half a frame: a header announcing 100 bytes, 10 present.
            partial = struct.pack("!I", 100) + b"x" * 10
            assert dialer._out.produce(partial) == len(partial)
            # Die abruptly: no Bye, no flush — just a dropped doorbell.
            dialer._bell.shutdown(socket.SHUT_RDWR)
            with pytest.raises(CommFailure):
                server.recv(timeout=5)
        finally:
            dialer.close()
            for channel in accepted.channels:
                channel.close()
            listener.close()

    def test_peer_process_dies_mid_frame(self):
        """The real thing: the dialing *process* exits uncleanly with
        a partial frame in the ring."""
        transport = ShmTransport()
        accepted = _Collector()
        listener = transport.listen(_unique_endpoint(), accepted)
        path = listener.endpoint[len("shm://"):]
        script = (
            "import os, struct, sys\n"
            "from repro.transport.shm import ShmTransport\n"
            f"ch = ShmTransport().connect('shm://{path}')\n"
            "ch._out.produce(struct.pack('!I', 100) + b'y' * 10)\n"
            "ch._ring_bell(b'\\x01')\n"
            "os._exit(1)\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        try:
            proc = subprocess.run(
                [sys.executable, "-c", script], env=env, cwd=os.path.dirname(
                    os.path.dirname(os.path.abspath(__file__))
                ), timeout=30,
            )
            assert proc.returncode == 1
            assert accepted.ready.wait(5)
            server = accepted.channels[0]
            with pytest.raises(CommFailure):
                server.recv(timeout=5)
        finally:
            for channel in accepted.channels:
                channel.close()
            listener.close()

    def test_reactor_mode_teardown_on_abrupt_peer_death(self):
        """Space-level: the surviving connection tears down (and is
        evicted) when its shm peer drops mid-frame."""
        with Space("shm-die-srv", listen=["tcp://127.0.0.1:0"]) as server, \
                Space("shm-die-cli") as client:
            server.serve("echo", Echo())
            echo = client.import_object(server.endpoints[0], "echo")
            assert echo.echo("up") == "up"
            assert client.cache.stats()["upgraded_dials"] == 1
            connection = client.cache.peek(server.endpoints[0])
            channel = connection._channel
            # Server-side abrupt death: half a frame, then a dead bell.
            server_conn = next(iter(server._connections))
            server_channel = server_conn._channel
            server_channel._out.produce(struct.pack("!I", 100) + b"z" * 10)
            server_channel._bell.shutdown(socket.SHUT_RDWR)
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline and not connection.closed:
                time.sleep(0.02)
            assert connection.closed
            assert channel.closed


class TestSpaceUpgrade:
    def test_loopback_tcp_upgrades_to_shm(self):
        with Space("up-srv", listen=["tcp://127.0.0.1:0"]) as server, \
                Space("up-cli") as client:
            server.serve("echo", Echo())
            echo = client.import_object(server.endpoints[0], "echo")
            assert echo.echo([1, 2, 3]) == [1, 2, 3]
            stats = client.cache.stats()
            assert stats["upgraded_dials"] == 1
            # The cache stays keyed by the *original* endpoint.
            assert client.cache.peek(server.endpoints[0]) is not None
            # The shm side door never appears in advertised endpoints.
            assert all(e.startswith("tcp://") for e in server.endpoints)
            assert all(
                e.startswith("tcp://") for e in server.public_endpoints
            )

    def test_shm_off_stays_on_tcp(self):
        with Space("off-srv", listen=["tcp://127.0.0.1:0"], shm="off") \
                as server, Space("off-cli", shm="off") as client:
            server.serve("echo", Echo())
            echo = client.import_object(server.endpoints[0], "echo")
            assert echo.echo("tcp") == "tcp"
            assert client.cache.stats()["upgraded_dials"] == 0
            assert server._shm_listeners == []

    def test_stale_rendezvous_falls_back_to_tcp(self):
        """A crashed space's leftover rendezvous socket must not make
        its endpoint undialable: the upgrade attempt fails and the
        cache silently dials the real TCP address."""
        with Space("stale-srv", listen=["tcp://127.0.0.1:0"], shm="off") \
                as server, Space("stale-cli") as client:
            server.serve("echo", Echo())
            port = int(server.endpoints[0].rpartition(":")[2])
            path = rendezvous_path(port)
            stale = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            stale.bind(path)
            stale.close()  # path exists, nobody listens
            try:
                echo = client.import_object(server.endpoints[0], "echo")
                assert echo.echo("fallback") == "fallback"
                assert client.cache.stats()["upgraded_dials"] == 0
            finally:
                try:
                    os.unlink(path)
                except OSError:
                    pass

    def test_upgraded_traffic_counts_on_reactor(self):
        """Frames over the upgraded channel flow through the reactor
        like any selectable channel (no pump bridge)."""
        with Space("cnt-srv", listen=["tcp://127.0.0.1:0"]) as server, \
                Space("cnt-cli") as client:
            server.serve("echo", Echo())
            echo = client.import_object(server.endpoints[0], "echo")
            for i in range(10):
                assert echo.echo(i) == i
            stats = client.stats()["reactor"]
            assert stats["frames_in"] >= 10
            assert stats["active_connections"] == 1
