"""Unit tests for the pickles subsystem."""

import math
from dataclasses import dataclass

import pytest

from repro.errors import MarshalError, UnmarshalError
from repro.marshal import (
    Pickler,
    StructRegistry,
    Unpickler,
    dumps,
    loads,
)


def round_trip(value, registry=None, handler=None):
    data = dumps(value, registry, handler)
    return loads(data, registry, handler)


class TestScalars:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            1,
            -1,
            127,
            -128,
            2**31,
            -(2**31),
            2**62,
            -(2**62),
            2**100,
            -(2**100),
            0.0,
            -0.0,
            3.141592653589793,
            1e308,
            -1e-308,
            "",
            "hello",
            "ünïcödé ✓ 日本語",
            b"",
            b"\x00\xff" * 10,
        ],
    )
    def test_round_trip(self, value):
        result = round_trip(value)
        assert result == value
        assert type(result) is type(value)

    def test_float_specials(self):
        assert round_trip(float("inf")) == float("inf")
        assert round_trip(float("-inf")) == float("-inf")
        assert math.isnan(round_trip(float("nan")))

    def test_negative_zero_sign_preserved(self):
        assert math.copysign(1.0, round_trip(-0.0)) == -1.0

    def test_bool_is_not_int(self):
        assert round_trip(True) is True
        assert round_trip(1) == 1
        assert round_trip(1) is not True

    def test_bytearray(self):
        value = bytearray(b"mutable")
        result = round_trip(value)
        assert result == value
        assert type(result) is bytearray


class TestContainers:
    @pytest.mark.parametrize(
        "value",
        [
            [],
            [1, 2, 3],
            (),
            (1, "two", 3.0),
            {},
            {"a": 1, "b": [2, 3]},
            {1: "one", (2, 3): "pair"},
            set(),
            {1, 2, 3},
            frozenset({"x", "y"}),
            [[1, [2, [3, [4]]]]],
            {"nested": {"deeper": {"deepest": (1, 2)}}},
        ],
    )
    def test_round_trip(self, value):
        result = round_trip(value)
        assert result == value
        assert type(result) is type(value)

    def test_heterogeneous_list(self):
        value = [None, True, 42, -7, 2.5, "s", b"b", [1], (2,), {3: 4}, {5}]
        assert round_trip(value) == value

    def test_large_list(self):
        value = list(range(10000))
        assert round_trip(value) == value

    def test_shared_sublist_stays_shared(self):
        shared = [1, 2]
        result = round_trip([shared, shared])
        assert result[0] is result[1]
        result[0].append(3)
        assert result[1] == [1, 2, 3]

    def test_unshared_equal_lists_stay_unshared(self):
        result = round_trip([[1, 2], [1, 2]])
        assert result[0] is not result[1]

    def test_self_referential_list(self):
        value = [1]
        value.append(value)
        result = round_trip(value)
        assert result[0] == 1
        assert result[1] is result

    def test_self_referential_dict(self):
        value = {}
        value["me"] = value
        result = round_trip(value)
        assert result["me"] is result

    def test_mutual_cycle(self):
        a, b = [], []
        a.append(b)
        b.append(a)
        result = round_trip(a)
        assert result[0][0] is result

    def test_shared_string_decodes_once(self):
        text = "x" * 1000
        data = dumps([text, text, text])
        assert len(data) < 1100
        assert loads(data) == [text, text, text]

    def test_shared_tuple(self):
        pair = (1, 2)
        result = round_trip({"a": pair, "b": pair})
        assert result["a"] is result["b"]

    def test_shared_bytearray_aliased(self):
        buf = bytearray(b"abc")
        result = round_trip([buf, buf])
        assert result[0] is result[1]

    def test_dict_inside_tuple_cycle(self):
        d = {}
        t = (d, 1)
        d["t"] = t
        result = round_trip(d)
        assert result["t"][0] is result


@dataclass
class Point:
    x: int
    y: int


@dataclass
class Segment:
    start: Point
    end: Point
    label: str = ""


class Plain:
    def __init__(self, a, b):
        self.a = a
        self.b = b

    def __eq__(self, other):
        return isinstance(other, Plain) and (self.a, self.b) == (other.a, other.b)


class TestStructs:
    @pytest.fixture()
    def registry(self):
        reg = StructRegistry()
        reg.register(Point)
        reg.register(Segment)
        reg.register(Plain, fields=["a", "b"])
        return reg

    def test_dataclass_round_trip(self, registry):
        assert round_trip(Point(3, 4), registry) == Point(3, 4)

    def test_nested_struct(self, registry):
        seg = Segment(Point(0, 0), Point(1, 1), "diag")
        assert round_trip(seg, registry) == seg

    def test_plain_class(self, registry):
        assert round_trip(Plain(1, "two"), registry) == Plain(1, "two")

    def test_struct_sharing(self, registry):
        p = Point(9, 9)
        result = round_trip(Segment(p, p), registry)
        assert result.start is result.end

    def test_unregistered_type_rejected(self):
        class Unknown:
            pass

        with pytest.raises(MarshalError):
            dumps(Unknown(), StructRegistry())

    def test_unknown_name_on_decode(self, registry):
        data = dumps(Point(1, 2), registry)
        with pytest.raises(UnmarshalError):
            loads(data, StructRegistry())

    def test_duplicate_name_rejected(self, registry):
        class Point2:
            pass

        with pytest.raises(ValueError):
            registry.register(Point2, fields=[], name="Point")

    def test_reregistering_same_class_ok(self, registry):
        registry.register(Point)

    def test_non_dataclass_needs_fields(self):
        class NotDc:
            pass

        with pytest.raises(TypeError):
            StructRegistry().register(NotDc)

    def test_struct_in_containers(self, registry):
        value = {"points": [Point(1, 2), Point(3, 4)], "n": 2}
        assert round_trip(value, registry) == value

    def test_cyclic_struct_graph(self, registry):
        # A plain (mutable) struct participating in a cycle via a list.
        holder = Plain([], None)
        holder.a.append(holder)
        result = round_trip(holder, registry)
        assert result.a[0] is result


class TestCorruption:
    def test_unknown_tag(self):
        with pytest.raises(UnmarshalError):
            loads(b"\xfe")

    def test_truncated(self):
        data = dumps([1, 2, 3])
        for cut in range(len(data)):
            with pytest.raises(UnmarshalError):
                loads(data[:cut])

    def test_trailing_garbage(self):
        with pytest.raises(UnmarshalError):
            loads(dumps(1) + b"\x00")

    def test_dangling_ref(self):
        from repro.marshal import tags
        from repro.wire.varint import write_uvarint

        out = bytearray([tags.REF])
        write_uvarint(out, 5)
        with pytest.raises(UnmarshalError):
            loads(bytes(out))

    def test_bad_utf8(self):
        from repro.marshal import tags
        from repro.wire.varint import write_uvarint

        out = bytearray([tags.STR])
        write_uvarint(out, 2)
        out += b"\xff\xff"
        with pytest.raises(UnmarshalError):
            loads(bytes(out))

    def test_netobj_without_handler(self):
        from repro.marshal import tags
        from repro.wire.varint import write_uvarint

        out = bytearray([tags.NETOBJ])
        write_uvarint(out, 1)
        out += b"z"
        with pytest.raises(UnmarshalError):
            loads(bytes(out))


class FakeRef:
    """Stands in for a network object in handler tests."""

    def __init__(self, name):
        self.name = name


class FakeHandler:
    """Encodes FakeRef by name; counts marshals for bookkeeping tests."""

    def __init__(self):
        self.marshal_count = 0
        self.unmarshal_count = 0

    def recognizes(self, value):
        return isinstance(value, FakeRef)

    def marshal(self, value):
        self.marshal_count += 1
        return value.name.encode("utf-8")

    def unmarshal(self, payload):
        self.unmarshal_count += 1
        return FakeRef(payload.decode("utf-8"))


class TestNetObjHandler:
    def test_delegation(self):
        handler = FakeHandler()
        result = round_trip([FakeRef("bank"), 42], handler=handler)
        assert result[0].name == "bank"
        assert result[1] == 42
        assert handler.marshal_count == 1
        assert handler.unmarshal_count == 1

    def test_same_ref_marshaled_once(self):
        handler = FakeHandler()
        ref = FakeRef("acct")
        result = round_trip([ref, ref], handler=handler)
        assert handler.marshal_count == 1
        assert result[0] is result[1]

    def test_distinct_refs_each_marshaled(self):
        handler = FakeHandler()
        round_trip([FakeRef("a"), FakeRef("b")], handler=handler)
        assert handler.marshal_count == 2

    def test_ref_inside_struct(self):
        registry = StructRegistry()
        registry.register(Plain, fields=["a", "b"])
        handler = FakeHandler()
        result = round_trip(Plain(FakeRef("x"), 1), registry, handler)
        assert result.a.name == "x"


class TestPicklerReuse:
    def test_memo_does_not_leak_across_dumps(self):
        pickler = Pickler()
        first = pickler.dumps(["shared"])
        second = pickler.dumps(["shared"])
        assert first == second
        assert loads(second) == ["shared"]

    def test_unpickler_reusable(self):
        unpickler = Unpickler()
        data = dumps({"k": [1, 2]})
        assert unpickler.loads(data) == {"k": [1, 2]}
        assert unpickler.loads(data) == {"k": [1, 2]}

    def test_dump_into_appends_after_existing_bytes(self):
        pickler = Pickler()
        out = bytearray(b"envelope")
        pickler.dump_into([1, "two", b"three"], out)
        assert out.startswith(b"envelope")
        assert loads(bytes(out[len(b"envelope"):])) == [1, "two", b"three"]

    def test_loads_accepts_memoryview(self):
        # The zero-copy receive path hands the unpickler a memoryview
        # slice of the frame buffer, never a bytes copy.
        value = {"k": ["v", (1, 2.5)], "raw": b"\x00\xff" * 100}
        assert loads(memoryview(dumps(value))) == value

    def test_shared_graph_via_memoryview(self):
        shared = ["aliased"]
        out = loads(memoryview(dumps([shared, shared])))
        assert out[0] is out[1]

    def test_large_values_skip_memo_but_stay_in_lockstep(self):
        from repro.marshal.pickler import MEMO_VALUE_LIMIT

        big = "x" * (MEMO_VALUE_LIMIT + 1)
        small = "y"
        # big burns a memo id without being memoized; small's id and
        # every later back-reference must still line up positionally.
        value = [big, small, small, big]
        out = loads(dumps(value))
        assert out == value
        assert out[1] is out[2]  # small was memoized and back-referenced

    def test_large_bytes_skip_memo_but_stay_in_lockstep(self):
        from repro.marshal.pickler import MEMO_VALUE_LIMIT

        big = b"b" * (MEMO_VALUE_LIMIT + 1)
        value = [big, "tail", "tail", big]
        out = loads(dumps(value))
        assert out == value
        assert out[1] is out[2]


class TestDepthGuard:
    """Deep nesting must fail cleanly, never with RecursionError."""

    def _deep_list(self, depth):
        outer = current = []
        for _ in range(depth):
            inner = []
            current.append(inner)
            current = inner
        return outer

    def test_pickler_depth_limit(self):
        from repro.marshal.pickler import MAX_DEPTH

        with pytest.raises(MarshalError):
            dumps(self._deep_list(MAX_DEPTH + 10))

    def test_unpickler_depth_limit(self):
        from repro.marshal import tags
        from repro.marshal.pickler import MAX_DEPTH

        data = bytes([tags.LIST, 1]) * (MAX_DEPTH + 10) + bytes([tags.NONE])
        with pytest.raises(UnmarshalError):
            loads(data)

    def test_depth_within_limit_round_trips(self):
        value = self._deep_list(200)
        assert loads(dumps(value)) == value

    def test_wide_structures_unaffected(self):
        value = [[i] for i in range(50000)]
        assert loads(dumps(value)) == value

    def test_pickler_usable_after_depth_error(self):
        from repro.marshal.pickler import MAX_DEPTH, Pickler

        pickler = Pickler()
        with pytest.raises(MarshalError):
            pickler.dumps(self._deep_list(MAX_DEPTH + 10))
        pickler.reset()
        assert loads(pickler.dumps([1, 2])) == [1, 2]


class TestCanonicalPickles:
    """The void-call fast path appends/compares these constants instead
    of running the codec; each must stay in lockstep with the format."""

    def test_empty_args_constant_matches_encoder(self):
        from repro.marshal.pickler import EMPTY_ARGS_PICKLE

        assert dumps(((), {})) == EMPTY_ARGS_PICKLE
        assert loads(EMPTY_ARGS_PICKLE) == ((), {})

    def test_none_constant_matches_encoder(self):
        from repro.marshal.pickler import NONE_PICKLE

        assert dumps(None) == NONE_PICKLE
        assert loads(NONE_PICKLE) is None
