"""Concurrency stress tests for the runtime.

Exercises the under-specified cases the formalisation calls out in
Birrell's original description — parallel sends of the same reference
to the same destination, references received while cleanup races —
plus general thread-safety of the object and connection layers.
"""

import gc as pygc
import threading
import weakref

import pytest

from repro import NetObj, Space
from tests.helpers import Counter, wait_until


class Vault(NetObj):
    def __init__(self):
        self.issued = []
        self._lock = threading.Lock()

    def issue(self):
        token = Counter()
        with self._lock:
            self.issued.append(weakref.ref(token))
        return token

    def live(self) -> int:
        pygc.collect()
        with self._lock:
            return sum(1 for ref in self.issued if ref() is not None)


class Shelf(NetObj):
    def __init__(self):
        self.items = []
        self._lock = threading.Lock()

    def put(self, item) -> int:
        with self._lock:
            self.items.append(item)
            return len(self.items)

    def distinct(self) -> int:
        with self._lock:
            return len({id(item) for item in self.items})

    def clear(self) -> None:
        with self._lock:
            self.items.clear()
        pygc.collect()


@pytest.fixture()
def trio(request):
    suffix = request.node.name
    spaces = [
        Space(name, listen=[f"inproc://{name}-{suffix}"])
        for name in ("owner", "b", "c")
    ]
    yield spaces
    for space in spaces:
        space.shutdown()


class TestParallelSends:
    def test_same_ref_to_same_destination_in_parallel(self, trio):
        """Birrell under-specified parallel sends of one reference to
        one destination (weakness 3d of the formalisation); our copy
        ids + blocked table must converge on a single surrogate."""
        owner, courier, keeper = trio
        owner.serve("vault", Vault())
        keeper.serve("shelf", Shelf())
        vault = courier.import_object(owner.endpoints[0], "vault")
        shelf = courier.import_object(keeper.endpoints[0], "shelf")
        token = vault.issue()

        errors = []

        def send():
            try:
                shelf.put(token)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=send) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        # All eight arrivals deserialised to the SAME surrogate.
        assert shelf.distinct() == 1
        # And exactly one dirty call reached the owner for the token
        # from the keeper (the blocked table coalesced the rest).
        keeper_entry = keeper.dgc_client.entry(token._wirerep)
        assert keeper_entry is not None

    def test_parallel_first_imports_one_dirty(self, trio):
        """Many threads importing the same fresh reference: exactly
        one dirty call, everyone shares the surrogate."""
        owner, client, _ = trio
        registry = Vault()
        owner.serve("vault", registry)
        vault = client.import_object(owner.endpoints[0], "vault")
        token = vault.issue()
        rep = token._wirerep
        results = []

        before = client.dgc_client.dirty_calls_sent

        def refetch():
            # Each call returns a fresh copy of the same reference.
            results.append(vault.issue is not None and token)

        threads = [threading.Thread(target=refetch) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert all(r is token for r in results)
        # No further dirty traffic for an already-OK reference.
        assert client.dgc_client.dirty_calls_sent == before
        assert client.dgc_client.state_of(rep).usable()


class TestChurnStress:
    def test_concurrent_issue_and_drop(self, trio):
        owner, client, _ = trio
        vault_impl = Vault()
        owner.serve("vault", vault_impl)
        vault = client.import_object(owner.endpoints[0], "vault")
        errors = []

        def churn():
            try:
                for _ in range(15):
                    token = vault.issue()
                    assert token.increment() == 1
                    del token
                    pygc.collect()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=churn) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert wait_until(lambda: vault_impl.live() == 0, timeout=20)
        stats = client.stats()["gc"]
        assert stats["transient_pins"] == 0

    def test_handoff_storm(self, trio):
        """Several threads weave tokens through a third party while
        dropping aggressively; nothing may be collected early."""
        owner, courier, keeper = trio
        vault_impl = Vault()
        owner.serve("vault", vault_impl)
        keeper.serve("shelf", Shelf())
        vault = courier.import_object(owner.endpoints[0], "vault")
        shelf = courier.import_object(keeper.endpoints[0], "shelf")
        errors = []

        def weave():
            try:
                for _ in range(10):
                    token = vault.issue()
                    shelf.put(token)
                    del token
                    pygc.collect()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=weave) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        # Everything parked on the shelf must still be alive.
        assert vault_impl.live() == 40
        shelf.clear()
        assert wait_until(lambda: vault_impl.live() == 0, timeout=20)
