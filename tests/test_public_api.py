"""Release-hygiene checks on the public API surface.

A downstream user's contract: everything in ``__all__`` resolves, every
public module/class/function is documented, and the exception
hierarchy is rooted correctly.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.dgc",
    "repro.errors",
    "repro.localheap",
    "repro.marshal",
    "repro.model",
    "repro.model.variants",
    "repro.naming",
    "repro.rpc",
    "repro.sim",
    "repro.streams",
    "repro.transport",
    "repro.wire",
]


class TestAllExports:
    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_module_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_root_covers_core_names(self):
        for name in ("Space", "NetObj", "Surrogate", "GcConfig",
                     "register_struct", "Agent", "NameServer"):
            assert name in repro.__all__

    def test_version(self):
        major, minor, patch = repro.__version__.split(".")
        assert int(major) >= 1


class TestDocstrings:
    def all_modules(self):
        yield repro
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            yield importlib.import_module(info.name)

    def test_every_module_documented(self):
        undocumented = [
            module.__name__ for module in self.all_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert not undocumented, undocumented

    def test_public_classes_documented(self):
        undocumented = []
        for module in self.all_modules():
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isclass(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue  # re-export
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, undocumented

    def test_public_functions_documented(self):
        undocumented = []
        for module in self.all_modules():
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isfunction(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, undocumented


class TestExceptionHierarchy:
    def test_all_errors_root_at_netobj_error(self):
        from repro import errors

        for name, obj in vars(errors).items():
            if inspect.isclass(obj) and issubclass(obj, Exception):
                if obj is not errors.NetObjError:
                    assert issubclass(obj, errors.NetObjError), name

    def test_timeout_is_a_comm_failure(self):
        from repro import CallTimeout, CommFailure

        assert issubclass(CallTimeout, CommFailure)

    def test_remote_error_carries_diagnostics(self):
        from repro import RemoteError

        error = RemoteError("ValueError", "bad", "Traceback ...")
        assert error.kind == "ValueError"
        assert "bad" in str(error)
        assert error.remote_traceback.startswith("Traceback")
