"""End-to-end distributed GC tests over real spaces and transports.

These verify the paper's systems claims: surrogate collection drives
clean calls; the owner reclaims objects exactly when the last remote
reference (or in-flight copy) disappears; third-party transfers and
the Figure-1 race are safe; the pinger purges crashed clients.
"""

import gc
import weakref

import pytest

from repro import GcConfig, NetObj, Space
from tests.helpers import Counter, Registry, settle, wait_until


class Factory(NetObj):
    """Creates objects kept alive *only* by the GC's dirty tables."""

    def __init__(self):
        self.spawned = []

    def make(self, start: int):
        counter = Counter(start)
        self.spawned.append(weakref.ref(counter))
        return counter

    def live_count(self) -> int:
        gc.collect()
        return sum(1 for ref in self.spawned if ref() is not None)


@pytest.fixture()
def trio(request):
    """Three spaces on the in-process transport: owner, b, c."""
    suffix = request.node.name
    spaces = [
        Space(name, listen=[f"inproc://{name}-{suffix}"])
        for name in ("owner", "b", "c")
    ]
    yield spaces
    for space in spaces:
        space.shutdown()


class TestLifecycle:
    def test_object_reclaimed_after_surrogate_death(self, trio):
        owner, client, _ = trio
        owner.serve("factory", Factory())
        factory = client.import_object(owner.endpoints[0], "factory")
        counter = factory.make(1)
        assert counter.value() == 1
        assert factory.live_count() == 1
        del counter
        settle(owner, client)
        assert wait_until(lambda: factory.live_count() == 0)

    def test_object_stays_while_any_client_holds(self, trio):
        owner, b, c = trio
        owner.serve("factory", Factory())
        owner.serve("registry", Registry())
        factory_b = b.import_object(owner.endpoints[0], "factory")
        registry_b = b.import_object(owner.endpoints[0], "registry")
        counter_b = factory_b.make(5)
        registry_b.hold(counter_b)

        registry_c = c.import_object(owner.endpoints[0], "registry")
        counter_c = registry_c.fetch(0)
        registry_c.drop_all()  # owner-side registry lets go

        # b drops; c still holds.
        del counter_b
        settle(owner, b, c)
        assert factory_b.live_count() == 1

        del counter_c
        settle(owner, b, c)
        assert wait_until(lambda: factory_b.live_count() == 0)

    def test_dirty_set_tracks_membership(self, trio):
        owner, b, c = trio
        registry = Registry()
        counter = Counter()
        registry.held.append(counter)
        owner.serve("registry", registry)

        ref_b = b.import_object(owner.endpoints[0], "registry").fetch(0)
        ref_c = c.import_object(owner.endpoints[0], "registry").fetch(0)
        index = owner.object_table.export(counter).index
        dirty = owner.dgc_owner.dirty_set(index)
        assert b.space_id in dirty and c.space_id in dirty

        del ref_b
        settle(owner, b, c)
        assert wait_until(
            lambda: b.space_id not in owner.dgc_owner.dirty_set(index)
        )
        assert c.space_id in owner.dgc_owner.dirty_set(index)
        del ref_c
        settle(owner, b, c)
        assert wait_until(lambda: owner.dgc_owner.dirty_set(index) == set())

    def test_reimport_after_full_cycle(self, trio):
        owner, client, _ = trio
        owner.serve("factory", Factory())
        factory = client.import_object(owner.endpoints[0], "factory")
        first = factory.make(1)
        del first
        settle(owner, client)
        second = factory.make(2)  # fresh object, fresh life cycle
        assert second.value() == 2

    def test_transient_pins_drain(self, trio):
        owner, client, _ = trio
        owner.serve("factory", Factory())
        factory = client.import_object(owner.endpoints[0], "factory")
        refs = [factory.make(i) for i in range(10)]
        settle(owner, client)
        assert owner.stats()["gc"]["transient_pins"] == 0
        assert client.stats()["gc"]["transient_pins"] == 0
        assert refs[3].value() == 3


class TestThirdParty:
    def test_handoff_and_direct_use(self, trio):
        """B passes an owner-owned ref to C; C talks to owner directly."""
        owner, b, c = trio
        owner.serve("factory", Factory())
        c.serve("registry", Registry())

        factory_b = b.import_object(owner.endpoints[0], "factory")
        counter_b = factory_b.make(42)
        registry_at_c = b.import_object(c.endpoints[0], "registry")
        registry_at_c.hold(counter_b)
        # C uses the reference without ever importing it from B.
        assert registry_at_c.poke(0) == 42
        # C appears in the owner's dirty set for the counter.
        indices = [
            entry.index for entry in owner.object_table.exported_entries()
            if isinstance(entry.obj, Counter)
        ]
        assert len(indices) == 1
        assert c.space_id in owner.dgc_owner.dirty_set(indices[0])

    def test_figure_one_race(self, trio):
        """Pass a reference then immediately drop it — the scenario
        that breaks naive reference counting (paper Figure 1)."""
        owner, b, c = trio
        owner.serve("factory", Factory())
        c.serve("registry", Registry())
        factory_b = b.import_object(owner.endpoints[0], "factory")
        registry_at_c = b.import_object(c.endpoints[0], "registry")

        counter_b = factory_b.make(7)
        registry_at_c.hold(counter_b)
        del counter_b             # B drops instantly after the send
        gc.collect()
        settle(owner, b, c)
        # The object must survive: C holds it.
        assert factory_b.live_count() == 1
        assert registry_at_c.poke(0) == 7
        # And once C lets go, it dies.
        registry_at_c.drop_all()
        settle(owner, b, c)
        assert wait_until(lambda: factory_b.live_count() == 0)

    def test_chain_of_handoffs(self, trio):
        """owner → b → c → owner: the ref comes home concrete."""
        owner, b, c = trio
        owner.serve("factory", Factory())
        owner.serve("home", Registry())
        c.serve("relay", Registry())

        factory = b.import_object(owner.endpoints[0], "factory")
        counter = factory.make(9)
        relay = b.import_object(c.endpoints[0], "relay")
        relay.hold(counter)
        del counter
        settle(owner, b, c)

        # C forwards what it holds back to the owner's registry.
        home_at_c = c.import_object(owner.endpoints[0], "home")
        fetched = c.agent  # silence lint: agent unused otherwise
        assert fetched is c.agent
        home_at_c.hold(relay_fetch(c, "relay", 0))
        settle(owner, b, c)
        assert factory.live_count() == 1  # alive: owner's registry holds it


def relay_fetch(space, name, index):
    """Fetch an entry from a registry served by ``space`` itself."""
    return space.agent.get(name).held[index]


class TestPinger:
    def test_crashed_client_purged(self, request):
        gc_config = GcConfig(ping_interval=0.05, ping_timeout=0.2,
                             ping_max_failures=2)
        owner = Space("owner", listen=[f"inproc://own-{request.node.name}"],
                      gc=gc_config)
        client = Space("client")
        try:
            factory_impl = Factory()
            owner.serve("factory", factory_impl)
            factory = client.import_object(owner.endpoints[0], "factory")
            counter = factory.make(3)
            assert counter.value() == 3
            assert factory_impl.live_count() == 1
            # Simulate a crash: no clean calls, connections just die.
            client.shutdown()
            assert wait_until(
                lambda: factory_impl.live_count() == 0, timeout=10
            )
            assert owner.pinger.clients_purged >= 1
        finally:
            client.shutdown()
            owner.shutdown()

    def test_live_client_not_purged(self, request):
        gc_config = GcConfig(ping_interval=0.05, ping_timeout=1.0,
                             ping_max_failures=2)
        owner = Space("owner", listen=[f"inproc://own2-{request.node.name}"],
                      gc=gc_config)
        client = Space("client")
        try:
            factory_impl = Factory()
            owner.serve("factory", factory_impl)
            factory = client.import_object(owner.endpoints[0], "factory")
            counter = factory.make(3)
            import time

            time.sleep(0.5)  # many ping rounds
            assert owner.pinger.clients_purged == 0
            assert counter.value() == 3
        finally:
            client.shutdown()
            owner.shutdown()
