"""Unit tests for the client-side reference state machine.

These drive :class:`DgcClient` against a scripted fake owner, with a
manual daemon, so every interleaving the formalisation worries about
(blocked deserialisation, ccitnil, resurrection, failed dirty calls)
is exercised deterministically.
"""

import gc
import threading
import time

import pytest

from repro.core.objtable import ObjectTable
from repro.core.typecodes import global_types, typechain
from repro.dgc.client import DgcClient
from repro.dgc.config import GcConfig
from repro.dgc.daemon import CleanupDaemon
from repro.dgc.states import RefState
from repro.errors import CommFailure, NarrowingError, NoSuchObjectError
from repro.wire.ids import fresh_space_id
from repro.wire.wirerep import WireRep
from tests.helpers import Counter, wait_until

CHAIN = tuple(typechain(Counter))
ENDPOINTS = ("fake://owner",)


class FakeOwner:
    """Scripted owner: records GC calls, can block or fail them."""

    def __init__(self):
        self.log = []
        self.lock = threading.Lock()
        self.dirty_gate = threading.Event()
        self.dirty_gate.set()
        self.clean_gate = threading.Event()
        self.clean_gate.set()
        self.fail_dirty_with = None
        self.fail_clean_times = 0

    def gc_request(self, endpoints, kind, *, target, seqno, strong=False):
        if kind == "dirty":
            self.dirty_gate.wait(5)
            with self.lock:
                self.log.append(("dirty", target, seqno))
                if self.fail_dirty_with is not None:
                    failure = self.fail_dirty_with
                    self.fail_dirty_with = None
                    raise failure
        else:
            self.clean_gate.wait(5)
            with self.lock:
                self.log.append(("clean", target, seqno, strong))
                if self.fail_clean_times > 0:
                    self.fail_clean_times -= 1
                    raise CommFailure("clean lost")

    def calls(self, kind):
        with self.lock:
            return [entry for entry in self.log if entry[0] == kind]


class ManualDaemon:
    """Records enqueues; the test pumps the clean cycle by hand."""

    def __init__(self, client):
        self.client = client
        self.items = []

    def enqueue(self, wirerep):
        self.items.append(wirerep)

    def pump(self, delivered=True):
        """Process all queued cleans, as the real daemon would."""
        processed = 0
        while self.items:
            wirerep = self.items.pop(0)
            claim = self.client.begin_clean(wirerep)
            if claim is None:
                continue
            entry, seqno, strong = claim
            try:
                self.client.send_clean(entry, seqno, strong)
                ok = True
            except CommFailure:
                ok = delivered  # emulate retries succeeding or not
            self.client.finish_clean(entry, ok)
            processed += 1
        return processed


@pytest.fixture()
def harness():
    owner_space = fresh_space_id("owner")
    table = ObjectTable(fresh_space_id("client"))
    fake = FakeOwner()
    config = GcConfig(gc_call_timeout=2.0, clean_retry_interval=0.01)
    client = DgcClient(table, global_types, fake.gc_request,
                       lambda *a, **k: None, config)
    daemon = ManualDaemon(client)
    client.attach_daemon(daemon)
    rep = WireRep(owner_space, 5)
    return fake, client, daemon, rep, table


class TestAcquire:
    def test_first_acquire_dirties_then_ok(self, harness):
        fake, client, daemon, rep, table = harness
        surrogate = client.acquire_ref(rep, ENDPOINTS, CHAIN)
        assert surrogate is not None
        assert fake.calls("dirty") == [("dirty", rep, 1)]
        assert client.state_of(rep) is RefState.OK
        assert table.lookup_surrogate(rep) is surrogate

    def test_second_acquire_reuses_surrogate(self, harness):
        fake, client, daemon, rep, table = harness
        first = client.acquire_ref(rep, ENDPOINTS, CHAIN)
        second = client.acquire_ref(rep, ENDPOINTS, CHAIN)
        assert first is second
        assert len(fake.calls("dirty")) == 1

    def test_unknown_typechain_fails_before_dirty(self, harness):
        fake, client, daemon, rep, table = harness
        with pytest.raises(NarrowingError):
            client.acquire_ref(rep, ENDPOINTS, ("ghost.Type",))
        assert not fake.calls("dirty")

    def test_concurrent_acquire_single_dirty(self, harness):
        fake, client, daemon, rep, table = harness
        fake.dirty_gate.clear()
        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(
                    client.acquire_ref(rep, ENDPOINTS, CHAIN)
                )
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.1)
        assert client.state_of(rep) is RefState.NIL  # blocked deserialisation
        fake.dirty_gate.set()
        for thread in threads:
            thread.join(timeout=5)
        assert len(results) == 4
        assert all(r is results[0] for r in results)
        assert len(fake.calls("dirty")) == 1


class TestCleanCycle:
    def test_dead_surrogate_triggers_clean_and_removal(self, harness):
        fake, client, daemon, rep, table = harness
        surrogate = client.acquire_ref(rep, ENDPOINTS, CHAIN)
        del surrogate
        gc.collect()
        assert daemon.items == [rep]
        assert daemon.pump() == 1
        assert fake.calls("clean") == [("clean", rep, 2, False)]
        assert client.state_of(rep) is RefState.NONEXISTENT
        assert client.entry(rep) is None
        assert table.lookup_surrogate(rep) is None

    def test_clean_uses_next_seqno(self, harness):
        fake, client, daemon, rep, table = harness
        surrogate = client.acquire_ref(rep, ENDPOINTS, CHAIN)
        del surrogate
        gc.collect()
        daemon.pump()
        (_, _, dirty_seq) = fake.calls("dirty")[0]
        (_, _, clean_seq, _) = fake.calls("clean")[0]
        assert clean_seq > dirty_seq

    def test_full_relife_cycle(self, harness):
        """⊥ → nil → OK → ccit → ⊥ → nil → OK, seqnos reset per entry."""
        fake, client, daemon, rep, table = harness
        first = client.acquire_ref(rep, ENDPOINTS, CHAIN)
        del first
        gc.collect()
        daemon.pump()
        second = client.acquire_ref(rep, ENDPOINTS, CHAIN)
        assert second is not None
        # Fresh entry, so its dirty seqno restarts at 1 — correct
        # because the owner forgot us (clean emptied the dirty set).
        assert fake.calls("dirty") == [("dirty", rep, 1), ("dirty", rep, 1)]


class TestResurrection:
    def test_copy_after_death_before_clean_cancels_clean(self, harness):
        """Note 4: the scheduled clean is cancelled, no new dirty call."""
        fake, client, daemon, rep, table = harness
        surrogate = client.acquire_ref(rep, ENDPOINTS, CHAIN)
        del surrogate
        gc.collect()
        assert daemon.items == [rep]  # clean scheduled, not yet sent
        fresh = client.acquire_ref(rep, ENDPOINTS, CHAIN)
        assert fresh is not None
        assert client.resurrections == 1
        assert len(fake.calls("dirty")) == 1  # no second dirty call
        assert daemon.pump() == 0  # the clean was cancelled
        assert not fake.calls("clean")
        assert client.state_of(rep) is RefState.OK

    def test_stale_finalizer_ignored_after_resurrection(self, harness):
        fake, client, daemon, rep, table = harness
        surrogate = client.acquire_ref(rep, ENDPOINTS, CHAIN)
        del surrogate
        gc.collect()
        fresh = client.acquire_ref(rep, ENDPOINTS, CHAIN)
        # The old surrogate's finalizer already ran; nothing further
        # may schedule a clean while the new surrogate lives.
        gc.collect()
        daemon.items.clear()
        gc.collect()
        assert daemon.items == []
        assert fresh is not None


class TestCcitnil:
    def test_copy_during_clean_in_transit(self, harness):
        """The load-bearing state: a copy arrives while clean is in
        transit.  The dirty call must wait for the clean ack."""
        fake, client, daemon, rep, table = harness
        surrogate = client.acquire_ref(rep, ENDPOINTS, CHAIN)
        del surrogate
        gc.collect()

        fake.clean_gate.clear()  # hold the clean call "in transit"
        pump_done = threading.Event()
        thread = threading.Thread(
            target=lambda: (daemon.pump(), pump_done.set()), daemon=True
        )
        thread.start()
        assert wait_until(lambda: client.state_of(rep) is RefState.CCIT)

        acquired = []
        acquirer = threading.Thread(
            target=lambda: acquired.append(
                client.acquire_ref(rep, ENDPOINTS, CHAIN)
            ),
            daemon=True,
        )
        acquirer.start()
        assert wait_until(lambda: client.state_of(rep) is RefState.CCITNIL)
        assert not fake.calls("clean")  # still parked at the gate
        assert len(fake.calls("dirty")) == 1  # dirty postponed!

        fake.clean_gate.set()
        assert pump_done.wait(5)
        acquirer.join(timeout=5)
        assert acquired and acquired[0] is not None
        assert client.state_of(rep) is RefState.OK
        # Protocol order on the wire: dirty(1), clean(2), dirty(3).
        assert fake.log == [
            ("dirty", rep, 1),
            ("clean", rep, 2, False),
            ("dirty", rep, 3),
        ]


class TestDirtyFailure:
    def test_failed_dirty_schedules_strong_clean(self, harness):
        fake, client, daemon, rep, table = harness
        fake.fail_dirty_with = CommFailure("owner unreachable")
        with pytest.raises(CommFailure):
            client.acquire_ref(rep, ENDPOINTS, CHAIN)
        assert client.state_of(rep) is RefState.CCIT
        assert daemon.items == [rep]
        daemon.pump()
        cleans = fake.calls("clean")
        assert len(cleans) == 1
        _, _, seqno, strong = cleans[0]
        assert strong is True
        assert seqno == 2  # outranks the failed dirty's seqno 1
        assert client.entry(rep) is None

    def test_failed_dirty_fails_waiters_too(self, harness):
        fake, client, daemon, rep, table = harness
        fake.dirty_gate.clear()
        failures = []

        def try_acquire():
            try:
                client.acquire_ref(rep, ENDPOINTS, CHAIN)
            except CommFailure as exc:
                failures.append(exc)

        threads = [threading.Thread(target=try_acquire) for _ in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(0.1)
        fake.fail_dirty_with = CommFailure("owner unreachable")
        fake.dirty_gate.set()
        for thread in threads:
            thread.join(timeout=5)
        assert len(failures) == 3

    def test_no_such_object_propagates(self, harness):
        fake, client, daemon, rep, table = harness
        fake.fail_dirty_with = NoSuchObjectError("object reclaimed")
        with pytest.raises(NoSuchObjectError):
            client.acquire_ref(rep, ENDPOINTS, CHAIN)

    def test_recovery_after_failed_dirty(self, harness):
        """After the strong clean completes, the reference can be
        imported again from scratch."""
        fake, client, daemon, rep, table = harness
        fake.fail_dirty_with = CommFailure("glitch")
        with pytest.raises(CommFailure):
            client.acquire_ref(rep, ENDPOINTS, CHAIN)
        daemon.pump()
        surrogate = client.acquire_ref(rep, ENDPOINTS, CHAIN)
        assert surrogate is not None
        assert client.state_of(rep) is RefState.OK


class TestRealDaemon:
    """The actual CleanupDaemon thread against the fake owner."""

    def make(self, fake, retries=5):
        table = ObjectTable(fresh_space_id("client"))
        config = GcConfig(gc_call_timeout=2.0, clean_retry_interval=0.01,
                          clean_max_retries=retries)
        client = DgcClient(table, global_types, fake.gc_request,
                           lambda *a, **k: None, config)
        daemon = CleanupDaemon(client, config)
        return client, daemon

    def test_end_to_end_clean(self):
        fake = FakeOwner()
        client, daemon = self.make(fake)
        rep = WireRep(fresh_space_id("owner"), 1)
        surrogate = client.acquire_ref(rep, ENDPOINTS, CHAIN)
        del surrogate
        gc.collect()
        assert wait_until(lambda: client.entry(rep) is None)
        assert len(fake.calls("clean")) == 1
        daemon.stop()

    def test_clean_retries_same_seqno(self):
        fake = FakeOwner()
        fake.fail_clean_times = 3
        client, daemon = self.make(fake)
        rep = WireRep(fresh_space_id("owner"), 1)
        surrogate = client.acquire_ref(rep, ENDPOINTS, CHAIN)
        del surrogate
        gc.collect()
        assert wait_until(lambda: len(fake.calls("clean")) == 4)
        seqnos = {entry[2] for entry in fake.calls("clean")}
        assert seqnos == {2}, "retries must keep the same sequence number"
        assert wait_until(lambda: client.entry(rep) is None)
        assert daemon.retries == 3
        daemon.stop()

    def test_clean_gives_up_after_max_retries(self):
        fake = FakeOwner()
        fake.fail_clean_times = 1000
        client, daemon = self.make(fake, retries=3)
        rep = WireRep(fresh_space_id("owner"), 1)
        surrogate = client.acquire_ref(rep, ENDPOINTS, CHAIN)
        del surrogate
        gc.collect()
        assert wait_until(lambda: daemon.cleans_abandoned == 1)
        assert client.entry(rep) is None  # dropped despite no ack
        daemon.stop()
