"""The full runtime over the simulated network: latency, jitter,
reordering and GC-under-churn.

The simulated transport delivers frames through the event scheduler,
so these tests exercise the threaded runtime under conditions loopback
TCP never produces: multi-millisecond delays, jittered (reordered)
delivery, and deterministic loss.
"""

import gc as pygc
import threading
import weakref

import pytest

from repro import GcConfig, NetObj, Space
from repro.sim.network import NetworkModel
from repro.transport.simulated import SimTransport
from tests.helpers import wait_until


class Vault(NetObj):
    def __init__(self):
        self.issued = []

    def issue(self):
        token = Token()
        self.issued.append(weakref.ref(token))
        return token

    def live(self) -> int:
        pygc.collect()
        return sum(1 for ref in self.issued if ref() is not None)


class Token(NetObj):
    def poke(self) -> bool:
        return True


def sim_spaces(model: NetworkModel, names=("owner", "client")):
    transport = SimTransport(model)
    spaces = [
        Space(name, listen=[f"sim://{name}"], transports=[transport],
              gc=GcConfig(gc_call_timeout=5.0, clean_retry_interval=0.02))
        for name in names
    ]
    return transport, spaces


class TestBasicOverSim:
    def test_calls_work_with_latency(self):
        transport, (server, client) = sim_spaces(NetworkModel(latency=0.002))
        try:
            server.serve("vault", Vault())
            vault = client.import_object("sim://owner", "vault")
            token = vault.issue()
            assert token.poke()
        finally:
            client.shutdown()
            server.shutdown()
            transport.shutdown()

    def test_virtual_time_advances_per_call(self):
        transport, (server, client) = sim_spaces(NetworkModel(latency=0.01))
        try:
            server.serve("vault", Vault())
            vault = client.import_object("sim://owner", "vault")
            before = transport.clock.now()
            vault.live()
            after = transport.clock.now()
            # One request + one reply = at least 2 one-way latencies
            # (tolerance for float accumulation in the virtual clock).
            assert after - before >= 0.02 - 1e-9
        finally:
            client.shutdown()
            server.shutdown()
            transport.shutdown()


class TestGcUnderJitter:
    """Jitter + non-FIFO delivery: the conditions under which message
    reordering happens and the ccitnil machinery earns its keep."""

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_churn_with_reordering(self, seed):
        model = NetworkModel(latency=0.001, jitter=0.005, seed=seed)
        transport, (server, client) = sim_spaces(model)
        try:
            vault_impl = Vault()
            server.serve("vault", vault_impl)
            vault = client.import_object("sim://owner", "vault")
            for _ in range(10):
                token = vault.issue()
                assert token.poke()
                del token
                pygc.collect()
            assert wait_until(lambda: vault_impl.live() == 0, timeout=15)
            stats = server.stats()["gc"]
            assert stats["objects_dropped"] >= 10
        finally:
            client.shutdown()
            server.shutdown()
            transport.shutdown()

    def test_concurrent_churn_two_clients(self):
        model = NetworkModel(latency=0.001, jitter=0.003, seed=3)
        transport, (server, c1, c2) = sim_spaces(
            model, names=("owner", "c1", "c2")
        )
        try:
            vault_impl = Vault()
            server.serve("vault", vault_impl)
            errors = []

            def churn(space):
                try:
                    vault = space.import_object("sim://owner", "vault")
                    for _ in range(8):
                        token = vault.issue()
                        assert token.poke()
                        del token
                        pygc.collect()
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=churn, args=(space,))
                for space in (c1, c2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors
            assert wait_until(lambda: vault_impl.live() == 0, timeout=20)
        finally:
            c2.shutdown()
            c1.shutdown()
            server.shutdown()
            transport.shutdown()


class TestWireAccounting:
    def test_gc_traffic_observable(self):
        from repro.wire import protocol

        transport, (server, client) = sim_spaces(
            NetworkModel(latency=0.0005)
        )
        try:
            vault_impl = Vault()
            server.serve("vault", vault_impl)
            vault = client.import_object("sim://owner", "vault")
            token = vault.issue()
            assert token.poke()
            del token
            pygc.collect()
            assert wait_until(lambda: vault_impl.live() == 0)
            tags = transport.stats.by_tag
            assert tags.get(protocol.DIRTY, 0) >= 2       # agent + token
            assert tags.get(protocol.CLEAN, 0) >= 1
            assert tags.get(protocol.COPY_ACK, 0) >= 1
            # v5 moved steady-state invocations onto the bound-call
            # frames; the call family together is still observable.
            calls = sum(tags.get(tag, 0) for tag in (
                protocol.CALL, protocol.CALL_BIND,
                protocol.CALL_BOUND, protocol.CALL_FAST,
            ))
            assert calls >= 2                             # issue + poke
            # The bootstrap ``get`` itself rides the lease layer now.
            assert tags.get(protocol.LEASE_REQ, 0) >= 1
        finally:
            client.shutdown()
            server.shutdown()
            transport.shutdown()
