"""Unit tests exercising all three transports through the common API."""

import threading

import pytest

from repro.errors import CommFailure
from repro.sim.network import NetworkModel
from repro.transport import (
    InProcessTransport,
    SimTransport,
    TcpTransport,
    TransportRegistry,
)
from repro.transport.base import split_endpoint
from repro.transport.inprocess import channel_pair


@pytest.fixture(params=["inproc", "tcp", "sim"])
def transport_and_endpoint(request):
    """Yields (transport, listen_endpoint) per scheme; cleans up after."""
    if request.param == "inproc":
        transport = InProcessTransport()
        yield transport, f"inproc://t-{id(transport)}"
    elif request.param == "tcp":
        transport = TcpTransport()
        yield transport, "tcp://127.0.0.1:0"
    else:
        transport = SimTransport(NetworkModel(latency=0.0001))
        yield transport, "sim://srv"
        transport.shutdown()


class EchoAcceptor:
    """Accepts connections and echoes frames back, reversed."""

    def __init__(self):
        self.channels = []

    def __call__(self, channel):
        self.channels.append(channel)
        while True:
            payload = channel.recv()
            if payload is None:
                return
            channel.send(payload[::-1])


class TestTransports:
    def test_round_trip(self, transport_and_endpoint):
        transport, endpoint = transport_and_endpoint
        listener = transport.listen(endpoint, EchoAcceptor())
        channel = transport.connect(listener.endpoint)
        channel.send(b"hello")
        assert channel.recv(timeout=5) == b"olleh"
        channel.close()
        listener.close()

    def test_many_frames_in_order(self, transport_and_endpoint):
        transport, endpoint = transport_and_endpoint
        listener = transport.listen(endpoint, EchoAcceptor())
        channel = transport.connect(listener.endpoint)
        for i in range(100):
            channel.send(f"msg-{i}".encode())
        for i in range(100):
            assert channel.recv(timeout=5) == f"msg-{i}".encode()[::-1]
        channel.close()
        listener.close()

    def test_large_frame(self, transport_and_endpoint):
        transport, endpoint = transport_and_endpoint
        listener = transport.listen(endpoint, EchoAcceptor())
        channel = transport.connect(listener.endpoint)
        blob = bytes(range(256)) * 4096  # 1 MiB
        channel.send(blob)
        assert channel.recv(timeout=10) == blob[::-1]
        channel.close()
        listener.close()

    def test_connect_refused(self, transport_and_endpoint):
        transport, endpoint = transport_and_endpoint
        scheme = split_endpoint(endpoint)[0]
        bogus = {
            "inproc": "inproc://nobody-home",
            "tcp": "tcp://127.0.0.1:1",
            "sim": "sim://nobody-home",
        }[scheme]
        with pytest.raises(CommFailure):
            transport.connect(bogus)

    def test_close_wakes_peer_reader(self, transport_and_endpoint):
        transport, endpoint = transport_and_endpoint
        acceptor = EchoAcceptor()
        listener = transport.listen(endpoint, acceptor)
        channel = transport.connect(listener.endpoint)
        channel.send(b"warmup")
        assert channel.recv(timeout=5) == b"pumraw"

        got_eof = threading.Event()
        original = channel.recv

        def reader():
            if original(timeout=5) is None:
                got_eof.set()

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        acceptor.channels[0].close()
        assert got_eof.wait(5)
        listener.close()

    def test_send_after_close_fails(self, transport_and_endpoint):
        transport, endpoint = transport_and_endpoint
        listener = transport.listen(endpoint, EchoAcceptor())
        channel = transport.connect(listener.endpoint)
        channel.close()
        with pytest.raises(CommFailure):
            channel.send(b"too late")
        listener.close()

    def test_concurrent_clients(self, transport_and_endpoint):
        transport, endpoint = transport_and_endpoint
        listener = transport.listen(endpoint, EchoAcceptor())
        errors = []

        def client(i):
            try:
                chan = transport.connect(listener.endpoint)
                for j in range(20):
                    msg = f"{i}:{j}".encode()
                    chan.send(msg)
                    if chan.recv(timeout=5) != msg[::-1]:
                        errors.append((i, j))
                chan.close()
            except Exception as exc:  # noqa: BLE001
                errors.append((i, exc))

        threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=20)
        assert not errors
        listener.close()

    def test_duplicate_listen_rejected(self, transport_and_endpoint):
        transport, endpoint = transport_and_endpoint
        listener = transport.listen(endpoint, EchoAcceptor())
        with pytest.raises(CommFailure):
            transport.listen(listener.endpoint, EchoAcceptor())
        listener.close()


class TestEndpoints:
    def test_split(self):
        assert split_endpoint("tcp://h:1") == ("tcp", "h:1")

    def test_malformed(self):
        with pytest.raises(CommFailure):
            split_endpoint("no-scheme")

    def test_registry_routes_by_scheme(self):
        registry = TransportRegistry()
        inproc = InProcessTransport()
        registry.add(inproc)
        assert registry.for_endpoint("inproc://x") is inproc
        with pytest.raises(CommFailure):
            registry.for_endpoint("tcp://h:1")

    def test_tcp_endpoint_parsing(self):
        assert TcpTransport._parse("tcp://10.0.0.1:8080") == ("10.0.0.1", 8080)
        assert TcpTransport._parse("tcp://:0") == ("127.0.0.1", 0)
        with pytest.raises(CommFailure):
            TcpTransport._parse("tcp://noport")
        with pytest.raises(CommFailure):
            TcpTransport._parse("tcp://h:notaport")


class TestChannelPair:
    def test_direct_pair(self):
        a, b = channel_pair()
        a.send(b"ping")
        assert b.recv(timeout=1) == b"ping"
        b.send(b"pong")
        assert a.recv(timeout=1) == b"pong"

    def test_recv_timeout(self):
        a, _b = channel_pair()
        with pytest.raises(CommFailure):
            a.recv(timeout=0.01)


class TestSimTransportExtras:
    def test_virtual_latency_observed(self):
        transport = SimTransport(NetworkModel(latency=0.25))
        listener = transport.listen("sim://echo", EchoAcceptor())
        channel = transport.connect(listener.endpoint)
        start = transport.clock.now()
        channel.send(b"x")
        assert channel.recv(timeout=5) == b"x"
        elapsed = transport.clock.now() - start
        assert elapsed == pytest.approx(0.5, abs=1e-6)
        transport.shutdown()

    def test_stats_counted(self):
        transport = SimTransport(NetworkModel())
        listener = transport.listen("sim://echo", EchoAcceptor())
        channel = transport.connect(listener.endpoint)
        channel.send(b"\x10abc")
        assert channel.recv(timeout=5) is not None
        assert transport.stats.sent == 2  # request + echo
        transport.shutdown()


def tcp_channel_pair():
    """Two connected SocketChannels over a real loopback socket."""
    accepted = {}
    ready = threading.Event()

    def on_connect(channel):
        accepted["chan"] = channel
        ready.set()

    transport = TcpTransport()
    listener = transport.listen("tcp://127.0.0.1:0", on_connect)
    client = transport.connect(listener.endpoint)
    assert ready.wait(5)
    listener.close()
    return client, accepted["chan"]


class TestTcpFrameEdges:
    """Boundary frames through the recv_into receive path."""

    def test_zero_length_frame(self):
        a, b = tcp_channel_pair()
        try:
            a.send(b"")
            got = b.recv(timeout=5)
            assert got is not None
            assert bytes(got) == b""
        finally:
            a.close()
            b.close()

    def test_frame_exactly_at_limit(self, monkeypatch):
        # tcp.py imports MAX_FRAME_SIZE by name, so both bindings must
        # shrink for the limit to bite on send *and* recv.
        monkeypatch.setattr("repro.wire.framing.MAX_FRAME_SIZE", 4096)
        monkeypatch.setattr("repro.transport.tcp.MAX_FRAME_SIZE", 4096)
        a, b = tcp_channel_pair()
        try:
            payload = b"m" * 4096
            a.send(payload)
            assert bytes(b.recv(timeout=5)) == payload
        finally:
            a.close()
            b.close()

    def test_oversize_rejected_on_send(self, monkeypatch):
        from repro.errors import ProtocolError

        monkeypatch.setattr("repro.wire.framing.MAX_FRAME_SIZE", 4096)
        a, b = tcp_channel_pair()
        try:
            with pytest.raises(ProtocolError):
                a.send(b"m" * 4097)
        finally:
            a.close()
            b.close()

    def test_oversize_rejected_on_recv(self, monkeypatch):
        import struct

        monkeypatch.setattr("repro.transport.tcp.MAX_FRAME_SIZE", 4096)
        a, b = tcp_channel_pair()
        try:
            # Bypass the sender-side check: write a raw oversize header.
            a._sock.sendall(struct.pack("!I", 4097))
            with pytest.raises(CommFailure):
                b.recv(timeout=5)
        finally:
            a.close()
            b.close()

    def test_memoryview_payload_accepted(self):
        a, b = tcp_channel_pair()
        try:
            a.send(memoryview(b"view-payload"))
            assert bytes(b.recv(timeout=5)) == b"view-payload"
        finally:
            a.close()
            b.close()


class _ScriptedSock:
    """Enough of the socket interface for SocketChannel, with sendall
    recorded by identity and recv_into fed from a script of chunk
    sizes — proving the receive loop fills one preallocated buffer
    instead of joining chunk lists."""

    def __init__(self, inbound=b"", chunk_limit=None):
        self.sent = []
        self.inbound = bytearray(inbound)
        self.chunk_limit = chunk_limit
        self.recv_into_calls = 0

    def setsockopt(self, *args):
        pass

    def settimeout(self, timeout):
        pass

    def sendall(self, data):
        self.sent.append(data)

    def recv_into(self, view):
        self.recv_into_calls += 1
        count = min(len(view), len(self.inbound))
        if self.chunk_limit is not None:
            count = min(count, self.chunk_limit)
        view[:count] = self.inbound[:count]
        del self.inbound[:count]
        return count

    def shutdown(self, how):
        pass

    def close(self):
        pass


class TestSocketChannelCopyDiscipline:
    """The acceptance criteria of the zero-copy rework, checked against
    an instrumented socket."""

    def test_send_framed_passes_buffer_through_untouched(self):
        from repro.transport.tcp import SocketChannel
        from repro.wire import finish_frame, new_frame

        sock = _ScriptedSock()
        channel = SocketChannel(sock)
        frame = new_frame()
        frame += b"payload"
        channel.send_framed(finish_frame(frame))
        # Exactly one write, and it is the *same object* the caller
        # built — no intermediate bytes, no concatenation.
        assert len(sock.sent) == 1
        assert sock.sent[0] is frame

    def test_recv_fills_single_preallocated_buffer(self):
        from repro.transport.tcp import SocketChannel
        from repro.wire import pack_frame

        payload = bytes(range(256)) * 8  # 2 KiB
        # Dribble 7 bytes per recv_into: a chunk-list implementation
        # would allocate ~300 fragments; recv_into fills one buffer.
        sock = _ScriptedSock(inbound=pack_frame(payload), chunk_limit=7)
        channel = SocketChannel(sock)
        got = channel.recv(timeout=5)
        assert bytes(got) == payload
        assert isinstance(got, bytearray)  # the one payload allocation
        assert sock.recv_into_calls > 100  # the dribble really happened

    def test_recv_exact_is_gone(self):
        from repro.transport.tcp import SocketChannel

        assert not hasattr(SocketChannel, "_recv_exact")
