"""Unit tests for typecodes, narrowing and surrogate generation."""

import pytest

from repro import NetObj, Surrogate
from repro.core.netobj import remote_methods_of
from repro.core.typecodes import (
    TypeRegistry,
    global_types,
    typechain,
    typecode_of,
)
from repro.errors import NarrowingError
from repro.core.surrogate import build_surrogate_class
from repro.wire.ids import fresh_space_id
from repro.wire.wirerep import WireRep


class Animal(NetObj):
    def speak(self) -> str:
        raise NotImplementedError

    def name(self) -> str:
        raise NotImplementedError


class Dog(Animal):
    def speak(self) -> str:
        return "woof"

    def name(self) -> str:
        return "dog"

    def fetch(self) -> str:
        return "ball"


class Puppy(Dog):
    _typecode_ = "zoo.Puppy"

    def speak(self) -> str:
        return "yip"


class TestTypecodes:
    def test_default_typecode_includes_module(self):
        assert typecode_of(Dog) == f"{Dog.__module__}.Dog"

    def test_explicit_typecode(self):
        assert typecode_of(Puppy) == "zoo.Puppy"

    def test_explicit_typecode_not_inherited(self):
        class Stray(Puppy):
            pass

        assert typecode_of(Stray) == f"{Stray.__module__}.{Stray.__qualname__}"
        assert typecode_of(Puppy) == "zoo.Puppy"

    def test_typechain_most_derived_first(self):
        chain = typechain(Puppy)
        assert chain == [
            "zoo.Puppy",
            typecode_of(Dog),
            typecode_of(Animal),
        ]

    def test_netobj_excluded_from_chain(self):
        assert all("NetObj" not in code for code in typechain(Puppy))

    def test_subclasses_autoregister(self):
        assert global_types.knows("zoo.Puppy")
        assert global_types.knows(typecode_of(Animal))


class TestRemoteMethods:
    def test_public_methods_collected(self):
        assert remote_methods_of(Dog) == ("fetch", "name", "speak")

    def test_inherited_and_new(self):
        assert "fetch" in remote_methods_of(Puppy)
        assert "speak" in remote_methods_of(Puppy)

    def test_underscore_excluded(self):
        class Shy(NetObj):
            def visible(self):
                return 1

            def _hidden(self):
                return 2

        assert remote_methods_of(Shy) == ("visible",)

    def test_metaclass_attributes_excluded(self):
        assert "register" not in remote_methods_of(Dog)

    def test_data_attributes_excluded(self):
        class WithData(NetObj):
            constant = 42

            def method(self):
                return self.constant

        assert remote_methods_of(WithData) == ("method",)

    def test_result_is_cached_per_class(self):
        # remote_methods_of sits on the per-call dispatch path; the
        # expensive MRO walk must run once per class, not per call.
        class Cached(NetObj):
            def ping(self):
                return 1

        first = remote_methods_of(Cached)
        assert remote_methods_of(Cached) is first

    def test_method_set_matches_tuple(self):
        from repro.core.netobj import remote_method_set

        assert remote_method_set(Dog) == frozenset(remote_methods_of(Dog))
        assert remote_method_set(Dog) is remote_method_set(Dog)


class TestNarrowing:
    def test_narrow_prefers_most_derived(self):
        registry = TypeRegistry()
        registry.register("zoo.Puppy", Puppy, remote_methods_of(Puppy))
        registry.register(typecode_of(Dog), Dog, remote_methods_of(Dog))
        assert registry.narrow(typechain(Puppy)) == "zoo.Puppy"

    def test_narrow_falls_back_to_base(self):
        registry = TypeRegistry()
        # A client deployment that only ships the Animal interface.
        registry.register(typecode_of(Animal), Animal,
                          remote_methods_of(Animal))
        narrowed = registry.narrow(typechain(Puppy))
        assert narrowed == typecode_of(Animal)

    def test_narrow_unknown_chain(self):
        registry = TypeRegistry()
        with pytest.raises(NarrowingError):
            registry.narrow(["ghost.A", "ghost.B"])

    def test_conflicting_registration_rejected(self):
        registry = TypeRegistry()
        registry.register("x", Dog, ())
        with pytest.raises(ValueError):
            registry.register("x", Puppy, ())

    def test_reregistration_same_class_ok(self):
        registry = TypeRegistry()
        registry.register("x", Dog, ("speak",))
        registry.register("x", Dog, ("speak", "fetch"))
        assert registry.methods_for("x") == ("speak", "fetch")


class TestSurrogateGeneration:
    def make_surrogate(self, cls, recorded):
        def invoker(wirerep, endpoints, method, args, kwargs,
                    fastlane=False):
            recorded.append((method, args, kwargs))
            return f"invoked-{method}"

        surrogate_cls = build_surrogate_class(
            typecode_of(cls), cls, remote_methods_of(cls)
        )
        wirerep = WireRep(fresh_space_id("owner"), 9)
        return surrogate_cls(invoker, wirerep, ("ep",), (typecode_of(cls),))

    def test_methods_forward_to_invoker(self):
        recorded = []
        dog = self.make_surrogate(Dog, recorded)
        assert dog.speak() == "invoked-speak"
        assert dog.fetch() == "invoked-fetch"
        assert recorded == [("speak", (), {}), ("fetch", (), {})]

    def test_args_and_kwargs_forwarded(self):
        recorded = []

        class Calc(NetObj):
            def add(self, a, b=0):
                return a + b

        calc = self.make_surrogate(Calc, recorded)
        calc.add(1, b=2)
        assert recorded == [("add", (1,), {"b": 2})]

    def test_virtual_subclass_isinstance(self):
        dog = self.make_surrogate(Dog, [])
        assert isinstance(dog, Dog)
        assert isinstance(dog, Animal)
        assert isinstance(dog, Surrogate)

    def test_surrogate_does_not_inherit_implementation(self):
        """A surrogate never runs the concrete class's code locally."""
        recorded = []
        dog = self.make_surrogate(Dog, recorded)
        assert dog.speak() != "woof"

    def test_repr_mentions_typecode_and_wirerep(self):
        dog = self.make_surrogate(Dog, [])
        text = repr(dog)
        assert "Dog" in text
        assert "#9" in text

    def test_surrogate_class_cached(self):
        first = global_types.surrogate_class("zoo.Puppy")
        second = global_types.surrogate_class("zoo.Puppy")
        assert first is second


class TestEndToEndNarrowing:
    def test_client_with_interface_only_stubs(self, request):
        """A space whose type registry only knows the base interface
        narrows an incoming derived reference to that interface."""
        from repro import Space

        client_types = TypeRegistry()
        client_types.register(
            typecode_of(Animal), Animal, remote_methods_of(Animal)
        )

        endpoint = f"inproc://narrow-{request.node.name}"
        with Space("zoo", listen=[endpoint]) as zoo, \
                Space("visitor", types=client_types) as visitor:
            zoo.serve("pet", Puppy())
            # The agent's typecodes must be known too.
            from repro.naming.agent import Agent, NameServer

            client_types.register(
                typecode_of(Agent), Agent, remote_methods_of(Agent)
            )
            client_types.register(
                typecode_of(NameServer), NameServer,
                remote_methods_of(NameServer),
            )
            pet = visitor.import_object(endpoint, "pet")
            # Narrowed to Animal: speak works (remotely: "yip"),
            # fetch is not part of the narrowed surface.
            assert pet.speak() == "yip"
            assert isinstance(pet, Animal)
            assert not hasattr(pet, "fetch")

    def test_client_with_no_stubs_fails_cleanly(self, request):
        from repro import Space
        from repro.naming.agent import Agent, NameServer

        client_types = TypeRegistry()
        client_types.register(
            typecode_of(Agent), Agent, remote_methods_of(Agent)
        )
        client_types.register(
            typecode_of(NameServer), NameServer,
            remote_methods_of(NameServer),
        )
        endpoint = f"inproc://nostub-{request.node.name}"
        with Space("zoo", listen=[endpoint]) as zoo, \
                Space("stranger", types=client_types) as stranger:
            zoo.serve("pet", Puppy())
            with pytest.raises(NarrowingError):
                stranger.import_object(endpoint, "pet")
