"""Shared test configuration.

The autouse guard below is the reactor refactor's safety net: no test
may leak resident I/O threads.  Under reader-per-connection a test
that forgot to close a connection parked a daemon thread forever and
nobody noticed; under the reactor the same mistake would pin a
selector registration or a pump.  Each test therefore asserts that
every reactor/pump/reader/accept thread it started is gone again —
transient helpers (per-accept callbacks, dispatcher workers that idle
out on their own clock) are deliberately not counted.
"""

from __future__ import annotations

import threading
import time

import pytest

#: Name fragments of threads that must not outlive the Space (or
#: standalone Connection) that started them.
IO_THREAD_PATTERNS = (
    "reactor-", "-pump", "conn-reader", "tcp-accept", "shm-accept",
)

#: How long a test's I/O threads get to wind down before the guard
#: calls them leaked.  Orderly teardown is asynchronous (peer EOFs,
#: selector unregistration) but takes milliseconds, not seconds.
_GRACE = 5.0


def io_threads() -> "set[threading.Thread]":
    return {
        thread for thread in threading.enumerate()
        if any(pattern in thread.name for pattern in IO_THREAD_PATTERNS)
    }


@pytest.fixture(autouse=True)
def no_io_thread_leaks():
    before = io_threads()
    yield
    deadline = time.monotonic() + _GRACE
    while time.monotonic() < deadline:
        leaked = {t for t in io_threads() - before if t.is_alive()}
        if not leaked:
            return
        time.sleep(0.05)
    leaked = sorted(t.name for t in io_threads() - before if t.is_alive())
    assert not leaked, f"I/O threads leaked by test: {leaked}"
