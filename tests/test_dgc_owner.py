"""Unit tests for owner-side collector state (dirty sets, seqnos)."""

import pytest

from repro.core.objtable import ObjectTable
from repro.dgc.owner import DgcOwner
from repro.wire.ids import fresh_space_id
from repro.wire.wirerep import WireRep


class Obj:
    pass


@pytest.fixture()
def setup():
    space_id = fresh_space_id("owner")
    table = ObjectTable(space_id)
    owner = DgcOwner(table)
    obj = Obj()
    entry = table.export(obj)
    rep = table.wirerep_for(entry)
    return table, owner, entry, rep


client_a = fresh_space_id("a")
client_b = fresh_space_id("b")


class TestDirtyClean:
    def test_dirty_adds_to_set(self, setup):
        table, owner, entry, rep = setup
        ok, error = owner.handle_dirty(client_a, rep, 1)
        assert ok and not error
        assert owner.dirty_set(rep.index) == {client_a}

    def test_clean_removes_and_drops(self, setup):
        table, owner, entry, rep = setup
        owner.handle_dirty(client_a, rep, 1)
        owner.handle_clean(client_a, rep, 2, strong=False)
        assert table.exported_entry(rep.index) is None
        assert owner.objects_dropped == 1

    def test_two_clients_drop_only_when_both_clean(self, setup):
        table, owner, entry, rep = setup
        owner.handle_dirty(client_a, rep, 1)
        owner.handle_dirty(client_b, rep, 1)
        owner.handle_clean(client_a, rep, 2, strong=False)
        assert table.exported_entry(rep.index) is entry
        owner.handle_clean(client_b, rep, 2, strong=False)
        assert table.exported_entry(rep.index) is None

    def test_dirty_on_unknown_object_fails(self, setup):
        table, owner, entry, rep = setup
        bogus = WireRep(rep.owner, 999)
        ok, error = owner.handle_dirty(client_a, bogus, 1)
        assert not ok
        assert "no such object" in error

    def test_clean_on_unknown_object_is_noop(self, setup):
        table, owner, entry, rep = setup
        owner.handle_clean(client_a, WireRep(rep.owner, 999), 1, strong=False)

    def test_duplicate_dirty_idempotent(self, setup):
        table, owner, entry, rep = setup
        owner.handle_dirty(client_a, rep, 1)
        owner.handle_dirty(client_a, rep, 1)  # duplicate delivery
        assert owner.stale_calls_ignored == 1
        assert owner.dirty_set(rep.index) == {client_a}


class TestSequenceNumbers:
    def test_reordered_clean_then_dirty(self, setup):
        """Clean(seq 2) arriving before dirty(seq 1): the late dirty
        must not resurrect the entry (the §2 reordering guard)."""
        table, owner, entry, rep = setup
        owner.handle_dirty(client_b, rep, 1)   # keeps entry alive
        owner.handle_clean(client_a, rep, 2, strong=False)
        ok, _ = owner.handle_dirty(client_a, rep, 1)  # late, stale
        assert ok  # acknowledged...
        assert client_a not in owner.dirty_set(rep.index)  # ...but ignored

    def test_stale_clean_ignored(self, setup):
        table, owner, entry, rep = setup
        owner.handle_dirty(client_a, rep, 5)
        owner.handle_clean(client_a, rep, 3, strong=False)  # stale
        assert client_a in owner.dirty_set(rep.index)

    def test_strong_clean_outranks_everything_prior(self, setup):
        table, owner, entry, rep = setup
        owner.handle_dirty(client_b, rep, 1)
        owner.handle_clean(client_a, rep, 7, strong=True)
        ok, _ = owner.handle_dirty(client_a, rep, 6)  # the failed dirty, late
        assert ok
        assert client_a not in owner.dirty_set(rep.index)

    def test_seqnos_are_per_client(self, setup):
        table, owner, entry, rep = setup
        owner.handle_dirty(client_a, rep, 10)
        ok, _ = owner.handle_dirty(client_b, rep, 1)
        assert ok
        assert owner.dirty_set(rep.index) == {client_a, client_b}


class TestTransientEntries:
    def test_copy_in_flight_blocks_drop(self, setup):
        """The transmission race fix: owner-sent copies pin the entry."""
        table, owner, entry, rep = setup
        owner.handle_dirty(client_a, rep, 1)
        owner.record_copy_sent(entry, copy_id=42)
        owner.handle_clean(client_a, rep, 2, strong=False)
        assert table.exported_entry(rep.index) is entry  # pinned by tdirty
        owner.handle_copy_ack(rep, 42)
        assert table.exported_entry(rep.index) is None

    def test_copy_ack_for_unknown_entry_ignored(self, setup):
        table, owner, entry, rep = setup
        owner.handle_copy_ack(WireRep(rep.owner, 999), 1)

    def test_release_copy_equivalent_to_ack(self, setup):
        table, owner, entry, rep = setup
        owner.record_copy_sent(entry, copy_id=7)
        owner.release_copy(rep, 7)
        assert not entry.tdirty


class TestPurge:
    def test_purge_client_everywhere(self, setup):
        table, owner, entry, rep = setup
        second = table.export(Obj())
        rep2 = table.wirerep_for(second)
        owner.handle_dirty(client_a, rep, 1)
        owner.handle_dirty(client_a, rep2, 1)
        owner.handle_dirty(client_b, rep2, 1)
        purged = owner.purge_client(client_a)
        assert purged == 2
        assert table.exported_entry(rep.index) is None       # a was alone
        assert table.exported_entry(rep2.index) is second    # b remains
        assert owner.clients() == {client_b}

    def test_purge_unknown_client(self, setup):
        table, owner, entry, rep = setup
        assert owner.purge_client(fresh_space_id("ghost")) == 0


class TestPinnedEntries:
    def test_pinned_entry_never_dropped(self):
        table = ObjectTable(fresh_space_id("owner"))
        owner = DgcOwner(table)
        special = table.export(Obj(), pinned=True)
        rep = table.wirerep_for(special)
        assert rep.index == 0
        owner.handle_dirty(client_a, rep, 1)
        owner.handle_clean(client_a, rep, 2, strong=False)
        assert table.exported_entry(0) is special


class TestExportIdentity:
    def test_export_idempotent(self):
        table = ObjectTable(fresh_space_id())
        obj = Obj()
        assert table.export(obj) is table.export(obj)

    def test_reexport_after_drop_gets_new_index(self):
        table = ObjectTable(fresh_space_id())
        obj = Obj()
        first = table.export(obj)
        table.drop_exported(first.index)
        second = table.export(obj)
        assert second.index != first.index
