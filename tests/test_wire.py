"""Unit tests for the wire layer: varints, ids, wireReps, framing."""

import struct

import pytest

from repro.errors import CommFailure, ProtocolError, UnmarshalError
from repro.wire import (
    FrameReader,
    SpaceID,
    WireRep,
    fresh_space_id,
    pack_frame,
    read_frame,
    read_uvarint,
    write_uvarint,
)
from repro.wire.wirerep import SPECIAL_OBJECT_INDEX


class TestVarint:
    @pytest.mark.parametrize(
        "value", [0, 1, 127, 128, 255, 300, 16384, 2**32, 2**63 - 1]
    )
    def test_round_trip(self, value):
        out = bytearray()
        write_uvarint(out, value)
        decoded, offset = read_uvarint(bytes(out), 0)
        assert decoded == value
        assert offset == len(out)

    def test_small_values_are_one_byte(self):
        out = bytearray()
        write_uvarint(out, 100)
        assert len(out) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            write_uvarint(bytearray(), -1)

    def test_truncated_input(self):
        out = bytearray()
        write_uvarint(out, 2**40)
        with pytest.raises(UnmarshalError):
            read_uvarint(bytes(out[:-1]), 0)

    def test_overlong_encoding_rejected(self):
        with pytest.raises(UnmarshalError):
            read_uvarint(b"\xff" * 11, 0)

    def test_offset_respected(self):
        out = bytearray(b"xy")
        write_uvarint(out, 777)
        decoded, offset = read_uvarint(bytes(out), 2)
        assert decoded == 777
        assert offset == len(out)


class TestSpaceID:
    def test_fresh_ids_are_unique(self):
        ids = {fresh_space_id() for _ in range(1000)}
        assert len(ids) == 1000

    def test_round_trip(self):
        sid = fresh_space_id("server")
        again = SpaceID.from_bytes(sid.to_bytes())
        assert again == sid

    def test_nickname_not_part_of_identity(self):
        sid = SpaceID(1, 2, "alpha")
        assert sid == SpaceID(1, 2, "beta")
        assert hash(sid) == hash(SpaceID(1, 2))

    def test_ordering_is_total(self):
        a, b = SpaceID(1, 5), SpaceID(2, 0)
        assert a < b
        assert sorted([b, a]) == [a, b]

    def test_bad_length_rejected(self):
        with pytest.raises(UnmarshalError):
            SpaceID.from_bytes(b"short")

    def test_str_contains_nickname(self):
        assert "server" in str(fresh_space_id("server"))


class TestWireRep:
    def test_round_trip(self):
        rep = WireRep(fresh_space_id("o"), 42)
        out = bytearray(b"pad")
        rep.to_wire(out)
        decoded, offset = WireRep.from_wire(bytes(out), 3)
        assert decoded == rep
        assert offset == len(out)

    def test_special_index(self):
        assert WireRep(fresh_space_id(), SPECIAL_OBJECT_INDEX).is_special()
        assert not WireRep(fresh_space_id(), 3).is_special()

    def test_truncated(self):
        with pytest.raises(UnmarshalError):
            WireRep.from_wire(b"\x00" * 10, 0)

    def test_usable_as_dict_key(self):
        sid = fresh_space_id()
        table = {WireRep(sid, 1): "a", WireRep(sid, 2): "b"}
        assert table[WireRep(SpaceID(sid.hi, sid.lo), 1)] == "a"


class TestFraming:
    def test_pack_and_read(self):
        data = pack_frame(b"hello")
        chunks = [data]

        def recv_exact(n):
            buf = chunks[0][:n]
            chunks[0] = chunks[0][n:]
            return buf if len(buf) == n else None

        assert read_frame(recv_exact) == b"hello"

    def test_read_eof(self):
        assert read_frame(lambda n: None) is None

    def test_mid_frame_eof_is_error(self):
        state = {"first": True}

        def recv_exact(n):
            if state["first"]:
                state["first"] = False
                return struct.pack("!I", 100)
            return None

        with pytest.raises(CommFailure):
            read_frame(recv_exact)

    def test_oversized_frame_rejected(self):
        with pytest.raises(ProtocolError):
            pack_frame(b"x" * (64 * 1024 * 1024 + 1))

    def test_oversized_announcement_rejected(self):
        def recv_exact(n):
            return struct.pack("!I", 2**31)

        with pytest.raises(ProtocolError):
            read_frame(recv_exact)

    def test_empty_frame(self):
        data = pack_frame(b"")
        reader = FrameReader()
        reader.feed(data)
        assert list(reader.frames()) == [b""]

    def test_frame_reader_partial_feeds(self):
        data = pack_frame(b"abc") + pack_frame(b"defg")
        reader = FrameReader()
        collected = []
        for i in range(len(data)):
            reader.feed(data[i : i + 1])
            collected.extend(reader.frames())
        assert collected == [b"abc", b"defg"]

    def test_frame_reader_bulk_feed(self):
        reader = FrameReader()
        reader.feed(pack_frame(b"one") + pack_frame(b"two") + pack_frame(b"three"))
        assert list(reader.frames()) == [b"one", b"two", b"three"]

    def test_frame_reader_oversized(self):
        reader = FrameReader()
        reader.feed(struct.pack("!I", 2**31))
        with pytest.raises(ProtocolError):
            list(reader.frames())
