"""Unit tests for the wire layer: varints, ids, wireReps, framing."""

import struct

import pytest

from repro.errors import CommFailure, ProtocolError, UnmarshalError
from repro.wire import (
    FRAME_HEADER_SIZE,
    BufferPool,
    FrameReader,
    SpaceID,
    WireRep,
    finish_frame,
    fresh_space_id,
    new_frame,
    pack_frame,
    read_frame,
    read_uvarint,
    write_uvarint,
)
from repro.wire.wirerep import SPECIAL_OBJECT_INDEX


class TestVarint:
    @pytest.mark.parametrize(
        "value", [0, 1, 127, 128, 255, 300, 16384, 2**32, 2**63 - 1]
    )
    def test_round_trip(self, value):
        out = bytearray()
        write_uvarint(out, value)
        decoded, offset = read_uvarint(bytes(out), 0)
        assert decoded == value
        assert offset == len(out)

    def test_small_values_are_one_byte(self):
        out = bytearray()
        write_uvarint(out, 100)
        assert len(out) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            write_uvarint(bytearray(), -1)

    def test_truncated_input(self):
        out = bytearray()
        write_uvarint(out, 2**40)
        with pytest.raises(UnmarshalError):
            read_uvarint(bytes(out[:-1]), 0)

    def test_overlong_encoding_rejected(self):
        with pytest.raises(UnmarshalError):
            read_uvarint(b"\xff" * 11, 0)

    def test_offset_respected(self):
        out = bytearray(b"xy")
        write_uvarint(out, 777)
        decoded, offset = read_uvarint(bytes(out), 2)
        assert decoded == 777
        assert offset == len(out)


class TestSpaceID:
    def test_fresh_ids_are_unique(self):
        ids = {fresh_space_id() for _ in range(1000)}
        assert len(ids) == 1000

    def test_round_trip(self):
        sid = fresh_space_id("server")
        again = SpaceID.from_bytes(sid.to_bytes())
        assert again == sid

    def test_nickname_not_part_of_identity(self):
        sid = SpaceID(1, 2, "alpha")
        assert sid == SpaceID(1, 2, "beta")
        assert hash(sid) == hash(SpaceID(1, 2))

    def test_ordering_is_total(self):
        a, b = SpaceID(1, 5), SpaceID(2, 0)
        assert a < b
        assert sorted([b, a]) == [a, b]

    def test_bad_length_rejected(self):
        with pytest.raises(UnmarshalError):
            SpaceID.from_bytes(b"short")

    def test_str_contains_nickname(self):
        assert "server" in str(fresh_space_id("server"))


class TestWireRep:
    def test_round_trip(self):
        rep = WireRep(fresh_space_id("o"), 42)
        out = bytearray(b"pad")
        rep.to_wire(out)
        decoded, offset = WireRep.from_wire(bytes(out), 3)
        assert decoded == rep
        assert offset == len(out)

    def test_special_index(self):
        assert WireRep(fresh_space_id(), SPECIAL_OBJECT_INDEX).is_special()
        assert not WireRep(fresh_space_id(), 3).is_special()

    def test_truncated(self):
        with pytest.raises(UnmarshalError):
            WireRep.from_wire(b"\x00" * 10, 0)

    def test_usable_as_dict_key(self):
        sid = fresh_space_id()
        table = {WireRep(sid, 1): "a", WireRep(sid, 2): "b"}
        assert table[WireRep(SpaceID(sid.hi, sid.lo), 1)] == "a"

    def test_decoded_owners_are_interned(self):
        # Wire decode returns one shared SpaceID per identity, so the
        # serve path's owner comparison short-circuits on identity.
        rep = WireRep(fresh_space_id("o"), 1)
        out = bytearray()
        rep.to_wire(out)
        first, _ = WireRep.from_wire(bytes(out), 0)
        second, _ = WireRep.from_wire(memoryview(bytes(out)), 0)
        assert first.owner is second.owner
        assert first.owner == rep.owner

    def test_intern_existing_preseeds_instance(self):
        from repro.wire.ids import intern_existing, intern_space_id

        sid = fresh_space_id("seeded")
        intern_existing(sid)
        assert intern_space_id(sid.to_bytes()) is sid


class TestFraming:
    def test_pack_and_read(self):
        data = pack_frame(b"hello")
        chunks = [data]

        def recv_exact(n):
            buf = chunks[0][:n]
            chunks[0] = chunks[0][n:]
            return buf if len(buf) == n else None

        assert read_frame(recv_exact) == b"hello"

    def test_read_eof(self):
        assert read_frame(lambda n: None) is None

    def test_mid_frame_eof_is_error(self):
        state = {"first": True}

        def recv_exact(n):
            if state["first"]:
                state["first"] = False
                return struct.pack("!I", 100)
            return None

        with pytest.raises(CommFailure):
            read_frame(recv_exact)

    def test_oversized_frame_rejected(self):
        with pytest.raises(ProtocolError):
            pack_frame(b"x" * (64 * 1024 * 1024 + 1))

    def test_oversized_announcement_rejected(self):
        def recv_exact(n):
            return struct.pack("!I", 2**31)

        with pytest.raises(ProtocolError):
            read_frame(recv_exact)

    def test_empty_frame(self):
        data = pack_frame(b"")
        reader = FrameReader()
        reader.feed(data)
        assert list(reader.frames()) == [b""]

    def test_frame_reader_partial_feeds(self):
        data = pack_frame(b"abc") + pack_frame(b"defg")
        reader = FrameReader()
        collected = []
        for i in range(len(data)):
            reader.feed(data[i : i + 1])
            collected.extend(reader.frames())
        assert collected == [b"abc", b"defg"]

    def test_frame_reader_bulk_feed(self):
        reader = FrameReader()
        reader.feed(pack_frame(b"one") + pack_frame(b"two") + pack_frame(b"three"))
        assert list(reader.frames()) == [b"one", b"two", b"three"]

    def test_frame_reader_oversized(self):
        reader = FrameReader()
        reader.feed(struct.pack("!I", 2**31))
        with pytest.raises(ProtocolError):
            list(reader.frames())


class TestFrameBuild:
    """The in-place frame-building API behind the zero-copy send path."""

    def test_new_frame_reserves_header(self):
        frame = new_frame()
        assert len(frame) == FRAME_HEADER_SIZE

    def test_finish_patches_length_in_place(self):
        frame = new_frame()
        frame += b"payload"
        finished = finish_frame(frame)
        assert finished is frame  # same buffer, no copy
        assert bytes(finished) == pack_frame(b"payload")

    def test_finish_zero_length_frame(self):
        frame = finish_frame(new_frame())
        assert bytes(frame) == struct.pack("!I", 0)
        reader = FrameReader()
        reader.feed(bytes(frame))
        assert list(reader.frames()) == [b""]

    def test_finish_exactly_at_limit(self, monkeypatch):
        monkeypatch.setattr("repro.wire.framing.MAX_FRAME_SIZE", 1024)
        frame = new_frame()
        frame += b"x" * 1024
        assert len(finish_frame(frame)) == FRAME_HEADER_SIZE + 1024

    def test_finish_oversize_rejected(self, monkeypatch):
        monkeypatch.setattr("repro.wire.framing.MAX_FRAME_SIZE", 1024)
        frame = new_frame()
        frame += b"x" * 1025
        with pytest.raises(ProtocolError):
            finish_frame(frame)

    def test_finish_missing_header_rejected(self):
        with pytest.raises(ProtocolError):
            finish_frame(bytearray(b"abc"[:2]))  # shorter than the header

    def test_pack_frame_accepts_memoryview(self):
        assert pack_frame(memoryview(b"hello")) == pack_frame(b"hello")


class TestBufferPool:
    def test_round_trip_reuses_buffer(self):
        pool = BufferPool()
        first = pool.acquire()
        first += b"some payload"
        pool.release(first)
        second = pool.acquire()
        assert second is first
        assert len(second) == FRAME_HEADER_SIZE  # truncated back

    def test_oversized_buffer_not_retained(self):
        pool = BufferPool(max_retained=64)
        buffer = pool.acquire()
        buffer += b"x" * 100
        pool.release(buffer)
        assert pool.acquire() is not buffer

    def test_pool_size_bounded(self):
        pool = BufferPool(max_buffers=2)
        buffers = [pool.acquire() for _ in range(4)]
        for buffer in buffers:
            pool.release(buffer)
        assert len(pool._buffers) == 2


class TestMemoryviewInputs:
    """The zero-copy receive path hands decoders memoryview slices;
    every wire-level reader must accept them interchangeably with
    bytes."""

    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**40])
    def test_varint_from_memoryview(self, value):
        out = bytearray()
        write_uvarint(out, value)
        decoded, offset = read_uvarint(memoryview(bytes(out)), 0)
        assert decoded == value
        assert offset == len(out)

    def test_truncated_varint_from_memoryview(self):
        out = bytearray()
        write_uvarint(out, 2**40)
        with pytest.raises(UnmarshalError):
            read_uvarint(memoryview(bytes(out[:-1])), 0)

    def test_empty_memoryview_truncated(self):
        with pytest.raises(UnmarshalError):
            read_uvarint(memoryview(b""), 0)

    def test_wirerep_from_memoryview(self):
        rep = WireRep(fresh_space_id("o"), 42)
        out = bytearray()
        rep.to_wire(out)
        decoded, offset = WireRep.from_wire(memoryview(bytes(out)), 0)
        assert decoded == rep
        assert offset == len(out)
