"""Read leases (protocol v4): grants, cached hits, write invalidation,
expiry racing CLEAN, holder crash, version interop and the codec."""

import gc
import threading
import time

import pytest

import repro
from repro import NetObj, reads
from repro.core.leases import LeaseCache, LeaseTable
from repro.core.netobj import reads_method_set
from repro.dgc.config import GcConfig
from repro.marshal.snapshot import build_replica, snapshot_state
from repro.rpc import messages
from repro.wire.ids import fresh_space_id
from repro.wire.wirerep import WireRep

from tests.helpers import settle, wait_until


class Gauge(NetObj):
    """Read-mostly network object: one leased read, one write."""

    def __init__(self, start: int = 0):
        self.n = start
        self.reads_served = 0  # bumped only when *this* copy runs get()

    @reads
    def get(self) -> int:
        self.reads_served += 1
        return self.n

    @reads
    def parity(self) -> int:
        return self.n % 2

    def incr(self, by: int = 1) -> int:
        self.n += by
        return self.n


class GaugeFactory(NetObj):
    """Mints gauges so client crashes can reclaim them (crash test)."""

    def __init__(self):
        self.minted = []

    def make(self, start: int = 0) -> Gauge:
        gauge = Gauge(start)
        self.minted.append(gauge)
        return gauge

    def live_count(self) -> int:
        import weakref

        refs = [weakref.ref(g) for g in self.minted]
        self.minted = []
        gc.collect()
        self.minted = [r() for r in refs if r() is not None]
        return len(self.minted)


def _pair(name, server_kwargs=None, client_kwargs=None):
    server = repro.Space(f"srv-{name}", **(server_kwargs or {}))
    endpoint = server.add_listener(f"inproc://lease-{name}")
    client = repro.Space(f"cli-{name}", **(client_kwargs or {}))
    return server, client, endpoint


class TestLeaseBasics:
    def test_reads_are_served_from_the_replica(self, request):
        server, client, endpoint = _pair(request.node.name)
        with server, client:
            impl = Gauge(7)
            server.serve("gauge", impl)
            gauge = client.import_object(endpoint, "gauge")
            assert gauge.get() == 7          # miss -> grant -> replica
            for _ in range(100):
                assert gauge.get() == 7      # all from the cached replica
            # The owner's copy never executed a single read: even the
            # miss ran against the freshly built replica.
            assert impl.reads_served == 0
            owner = server.lease_stats()
            holder = client.lease_stats()
            # Two leases: the agent (import_object's get() is a leased
            # read since the naming mesh PR) and the gauge itself.
            assert owner["leases_granted"] == 2
            assert holder["lease_requests"] == 2
            assert holder["lease_hits"] >= 100
            # The agent lease dies with the bootstrap surrogate (its
            # clean releases it); only the gauge lease is still held.
            assert holder["held_leases"] >= 1

    def test_stats_exposes_the_lease_counters(self, request):
        server, client, endpoint = _pair(request.node.name)
        with server, client:
            for space in (server, client):
                leases = space.stats()["leases"]
                for key in ("leases_granted", "lease_hits",
                            "invalidations_sent", "expired_leases"):
                    assert key in leases, key

    def test_write_refreshes_every_reader(self, request):
        server, client, endpoint = _pair(request.node.name)
        with server, client:
            server.serve("gauge", Gauge(0))
            gauge = client.import_object(endpoint, "gauge")
            assert gauge.get() == 0
            assert gauge.incr(5) == 5
            # The write invalidated the lease before returning; the
            # next read re-leases and must see the new state.
            assert gauge.get() == 5
            owner = server.lease_stats()
            assert owner["invalidations_sent"] >= 1
            # agent + gauge + the gauge re-grant after the write
            assert owner["leases_granted"] == 3
            assert client.lease_stats()["invalidations_received"] >= 1

    def test_expired_lease_is_renewed(self, request):
        gc_config = GcConfig(lease_ttl=0.15)
        server, client, endpoint = _pair(
            request.node.name,
            server_kwargs={"gc": gc_config},
            client_kwargs={"gc": gc_config},
        )
        with server, client:
            server.serve("gauge", Gauge(3))
            gauge = client.import_object(endpoint, "gauge")
            assert gauge.get() == 3
            time.sleep(0.3)                  # both clocks ran out
            assert gauge.get() == 3          # renewed, not stale-served
            holder = client.lease_stats()
            assert holder["replica_expiries"] >= 1
            # agent + gauge + the gauge renewal after expiry
            assert server.lease_stats()["leases_granted"] == 3

    def test_leases_off_knob_client_side(self, request):
        server, client, endpoint = _pair(
            request.node.name, client_kwargs={"leases": "off"}
        )
        with server, client:
            server.serve("gauge", Gauge(9))
            gauge = client.import_object(endpoint, "gauge")
            assert all(gauge.get() == 9 for _ in range(5))
            assert client.lease_stats()["lease_requests"] == 0
            assert server.lease_stats()["leases_granted"] == 0

    def test_leases_off_knob_owner_side(self, request):
        server, client, endpoint = _pair(
            request.node.name, server_kwargs={"leases": "off"}
        )
        with server, client:
            server.serve("gauge", Gauge(4))
            gauge = client.import_object(endpoint, "gauge")
            # The owner denies; reads still work over plain RPC.
            assert all(gauge.get() == 4 for _ in range(5))
            assert server.lease_stats()["leases_granted"] == 0
            assert server.lease_stats()["leases_denied"] >= 1
            assert client.lease_stats()["lease_hits"] == 0


class TestInvalidationRaces:
    def test_read_after_write_is_never_stale(self, request):
        """The bound the protocol sells: once a writer's call returns,
        no reader anywhere may observe pre-write cached state."""
        server, writer, endpoint = _pair(request.node.name)
        reader = repro.Space(f"rdr-{request.node.name}")
        with server, writer, reader:
            server.serve("gauge", Gauge(0))
            w = writer.import_object(endpoint, "gauge")
            r = reader.import_object(endpoint, "gauge")
            for expected in range(1, 25):
                assert r.get() >= expected - 1   # keeps a lease warm
                assert w.incr() == expected
                # incr() returned, so the invalidation was acked (or
                # the lease provably expired): the read cannot lag.
                assert r.get() >= expected

    def test_concurrent_readers_and_writer(self, request):
        server, writer, endpoint = _pair(request.node.name)
        readers = [repro.Space(f"rdr{i}-{request.node.name}")
                   for i in range(3)]
        try:
            with server, writer:
                server.serve("gauge", Gauge(0))
                w = writer.import_object(endpoint, "gauge")
                surrogates = [s.import_object(endpoint, "gauge")
                              for s in readers]
                stop = threading.Event()
                failures = []
                completed = [0]   # writes that have *returned*

                def read_loop(surrogate):
                    while not stop.is_set():
                        # The protocol's exact bound: a read started
                        # after write k returned must see >= k (reads
                        # racing an in-flight write may see either
                        # side of it).
                        epoch = completed[0]
                        value = surrogate.get()
                        if value < epoch:
                            failures.append((epoch, value))
                            return

                threads = [threading.Thread(target=read_loop, args=(s,),
                                            daemon=True)
                           for s in surrogates]
                for thread in threads:
                    thread.start()
                for n in range(1, 31):
                    w.incr()
                    completed[0] = n
                stop.set()
                for thread in threads:
                    thread.join(timeout=10)
                assert not failures
                assert w.get() == 30
        finally:
            for space in readers:
                space.shutdown()

    def test_write_during_grant_is_atomic(self):
        """Unit-level check of the grant critical section: the snapshot
        and the registration are one atomic step with respect to
        ``begin_write``'s collect, so a write either invalidates the
        registered lease or the snapshot already has the new state."""
        from repro.core.objtable import ObjectTable

        owner_id = fresh_space_id("owner")
        holder = fresh_space_id("holder")
        table = ObjectTable(owner_id)
        entry = table.export(Gauge(1))
        entry.pdirty.add(holder)
        leases = LeaseTable(max_ttl=5.0)
        seen_versions = []
        with leases.lock:
            lease = leases.grant(entry, holder, 1.0,
                                 lambda l: seen_versions.append(l.version))
        live = leases.begin_write(entry)
        assert live == [lease]               # the write saw the lease
        assert entry.lease_version == seen_versions[0] + 1
        leases.retire(entry, holder, lease)
        assert entry.leases == {}
        # A second grant after the write carries the bumped version.
        with leases.lock:
            regrant = leases.grant(entry, holder, 1.0, lambda l: None)
        assert regrant.version == entry.lease_version

    def test_stale_retire_cannot_kill_a_regrant(self):
        from repro.core.objtable import ObjectTable

        owner_id = fresh_space_id("owner")
        holder = fresh_space_id("holder")
        entry = ObjectTable(owner_id).export(Gauge(0))
        entry.pdirty.add(holder)
        leases = LeaseTable(max_ttl=5.0)
        with leases.lock:
            first = leases.grant(entry, holder, 1.0, lambda l: None)
        with leases.lock:
            second = leases.grant(entry, holder, 1.0, lambda l: None)
        # A writer still holding the *first* lease's handle retires it
        # late; the fresh lease must survive.
        assert leases.retire(entry, holder, first) is None
        assert entry.leases[holder] is second


class TestExpiryAndClean:
    def test_clean_retires_the_lease_early(self, request):
        server, client, endpoint = _pair(request.node.name)
        with server, client:
            impl = Gauge(2)
            server.serve("gauge", impl)
            gauge = client.import_object(endpoint, "gauge")
            assert gauge.get() == 2
            entry = server.object_table.exported_entry_for(impl)
            assert len(entry.leases) == 1
            del gauge
            gc.collect()
            assert client.cleanup_daemon.wait_idle(10)
            settle(server, client)
            # LEASE_RELEASE rode ahead of the CLEAN; no deadline wait.
            assert entry.leases == {}
            assert client.space_id not in entry.pdirty
            assert server.lease_stats()["leases_released"] >= 1
            assert client.lease_stats()["held_leases"] == 0

    def test_expiry_concurrent_with_clean(self, request):
        """An already-expired lease and an arriving CLEAN must both
        retire cleanly — no double-free, no leaked entry."""
        gc_config = GcConfig(lease_ttl=0.05)
        server, client, endpoint = _pair(
            request.node.name,
            server_kwargs={"gc": gc_config},
            client_kwargs={"gc": gc_config},
        )
        with server, client:
            impl = Gauge(1)
            server.serve("gauge", impl)
            gauge = client.import_object(endpoint, "gauge")
            assert gauge.get() == 1
            entry = server.object_table.exported_entry_for(impl)
            time.sleep(0.2)                  # lease dead on both clocks
            del gauge
            gc.collect()
            assert client.cleanup_daemon.wait_idle(10)
            settle(server, client)
            assert entry.leases == {}
            assert client.space_id not in entry.pdirty
            owner = server.lease_stats()
            assert owner["expired_leases"] + owner["leases_released"] >= 1

    def test_holder_crash_purges_the_lease(self, request):
        gc_config = GcConfig(ping_interval=0.05, ping_timeout=0.2,
                             ping_max_failures=2)
        owner = repro.Space(
            f"own-{request.node.name}",
            listen=[f"inproc://leasecrash-{request.node.name}"],
            gc=gc_config,
        )
        client = repro.Space(f"cli-{request.node.name}", gc=gc_config)
        try:
            factory_impl = GaugeFactory()
            owner.serve("factory", factory_impl)
            factory = client.import_object(owner.endpoints[0], "factory")
            gauge = factory.make(6)
            assert gauge.get() == 6          # lease held at the crash
            # agent bootstrap lease + the gauge lease
            assert owner.lease_stats()["leases_granted"] == 2
            client.shutdown()                # crash: no cleans, no release
            assert wait_until(lambda: factory_impl.live_count() == 0,
                              timeout=10)
            assert owner.pinger.clients_purged >= 1
            stats = owner.lease_stats()
            assert stats["leases_released"] + stats["expired_leases"] >= 1
        finally:
            client.shutdown()
            owner.shutdown()


class TestVersionInterop:
    def test_v3_peer_never_sees_lease_frames(self, request):
        server, client, endpoint = _pair(
            request.node.name, client_kwargs={"protocol_version": 3}
        )
        with server, client:
            server.serve("gauge", Gauge(8))
            gauge = client.import_object(endpoint, "gauge")
            connection = client.cache.get(endpoint)
            assert connection.version == 3
            assert all(gauge.get() == 8 for _ in range(5))
            assert gauge.incr() == 9
            assert gauge.get() == 9
            assert client.lease_stats()["lease_requests"] == 0
            assert server.lease_stats()["leases_granted"] == 0
            assert server.lease_stats()["leases_denied"] == 0

    def test_v4_client_of_v3_owner_falls_back(self, request):
        server, client, endpoint = _pair(
            request.node.name, server_kwargs={"protocol_version": 3}
        )
        with server, client:
            server.serve("gauge", Gauge(5))
            gauge = client.import_object(endpoint, "gauge")
            assert all(gauge.get() == 5 for _ in range(5))
            # The connection agreed on v3, so no request ever went out.
            assert client.lease_stats()["lease_requests"] == 0
            assert server.lease_stats()["leases_granted"] == 0


class TestLeaseCacheUnit:
    def test_invalidation_overtaking_the_grant_kills_it(self):
        cache = LeaseCache()
        rep = WireRep(fresh_space_id("owner"), 3)
        cache.invalidate(rep, 17)            # arrives before registration
        assert cache.register(rep, 17, object(), time.monotonic() + 5, 1) \
            is False
        assert cache.replica_for(rep) is None
        # A later, different grant is unaffected.
        assert cache.register(rep, 18, "replica", time.monotonic() + 5, 2)
        assert cache.replica_for(rep) == "replica"

    def test_invalidation_of_a_held_lease_drops_it(self):
        cache = LeaseCache()
        rep = WireRep(fresh_space_id("owner"), 1)
        assert cache.register(rep, 1, "replica", time.monotonic() + 5, 1)
        cache.invalidate(rep, 1)
        assert cache.replica_for(rep) is None
        assert cache.stats()["invalidations_received"] == 1

    def test_expired_replica_is_not_served(self):
        cache = LeaseCache()
        rep = WireRep(fresh_space_id("owner"), 2)
        assert cache.register(rep, 1, "replica", time.monotonic() - 0.01, 1)
        assert cache.replica_for(rep) is None
        assert cache.stats()["replica_expiries"] == 1
        assert cache.held_count() == 0

    def test_out_of_order_grant_is_refused(self):
        """Two concurrent acquisitions can register out of order; the
        owner only remembers the newest lease, so installing the older
        one would leave a replica no invalidation can ever name."""
        cache = LeaseCache()
        rep = WireRep(fresh_space_id("owner"), 4)
        assert cache.register(rep, 9, "newest", time.monotonic() + 5, 2)
        assert cache.register(rep, 5, "stale", time.monotonic() + 5, 1) \
            is False
        assert cache.replica_for(rep) == "newest"
        assert cache.last_lease_id(rep) == 9

    def test_single_flight_acquire_guard(self):
        cache = LeaseCache()
        rep = WireRep(fresh_space_id("owner"), 5)
        assert cache.begin_acquire(rep)
        assert cache.begin_acquire(rep) is False
        cache.end_acquire(rep)
        assert cache.begin_acquire(rep)
        cache.end_acquire(rep)

    def test_unleasable_marking(self):
        cache = LeaseCache()
        assert cache.leasable("tc-x")
        cache.mark_unleasable("tc-x")
        assert not cache.leasable("tc-x")
        assert cache.leasable("tc-y")


class TestReadsDeclaration:
    def test_decorator_and_registry_name_sets(self):
        assert reads_method_set(Gauge) == frozenset({"get", "parity"})

    def test_lease_reads_class_attribute(self):
        class Legacy(NetObj):
            _lease_reads_ = ("peek",)

            def peek(self):
                return 1

            def poke(self):
                return 2

        assert reads_method_set(Legacy) == frozenset({"peek"})

    def test_non_remote_names_are_ignored(self):
        class Odd(NetObj):
            _lease_reads_ = ("missing", "_private")

            def visible(self):
                return 0

        assert reads_method_set(Odd) == frozenset()

    def test_plain_class_has_no_reads(self):
        class Plain(NetObj):
            def method(self):
                return 0

        assert reads_method_set(Plain) == frozenset()


class TestSnapshotUnit:
    def test_default_snapshot_round_trips_state(self):
        gauge = Gauge(41)
        state = snapshot_state(gauge)
        assert state == {"n": 41, "reads_served": 0}
        replica = build_replica(Gauge, state)
        assert isinstance(replica, Gauge)
        assert replica.get() == 41

    def test_lease_state_hooks(self):
        class Hooked(NetObj):
            def __init__(self):
                self.public = 1
                self.secret = "do not ship"

            def __lease_state__(self):
                return {"public": self.public}

            def __set_lease_state__(self, state):
                self.public = state["public"]
                self.secret = None

        state = snapshot_state(Hooked())
        assert state == {"public": 1}
        replica = build_replica(Hooked, state)
        assert replica.public == 1
        assert replica.secret is None


class TestLeaseCodecs:
    def examples(self):
        rep = WireRep(fresh_space_id("owner"), 7)
        return [
            messages.LeaseReq(3, rep, 5000),
            messages.LeaseRenew(4, rep, 17, 5000),
            messages.LeaseGrant(3, True, 17, 4500, 2, "", b"\x01\x02"),
            messages.LeaseGrant(5, False, 0, 0, 0, "unleasable", b""),
            messages.LeaseRelease(rep, 17),
            messages.LeaseInvalidate(6, rep, 17, 3),
            messages.LeaseInvalidateAck(6),
        ]

    def test_round_trip_all(self):
        for message in self.examples():
            decoded = messages.decode(message.encode())
            assert decoded == message, message

    def test_round_trip_via_memoryview(self):
        for message in self.examples():
            decoded = messages.decode(memoryview(message.encode()))
            assert decoded == message, message

    def test_grant_prefix_matches_the_class_codec(self):
        out = bytearray()
        messages.encode_lease_grant_prefix(out, 9, 21, 4500, 3)
        out += b"\xaa\xbb"
        decoded = messages.decode(bytes(out))
        assert decoded == messages.LeaseGrant(9, True, 21, 4500, 3, "",
                                              b"\xaa\xbb")

    def test_replies_route_by_tag(self):
        from repro.wire import protocol

        assert protocol.LEASE_GRANT in messages.REPLY_TAGS
        assert protocol.LEASE_INVALIDATE_ACK in messages.REPLY_TAGS
        assert protocol.LEASE_REQ not in messages.REPLY_TAGS
        assert protocol.LEASE_RELEASE not in messages.REPLY_TAGS
