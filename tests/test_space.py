"""Integration tests: the full object system over real transports."""

import pytest

from repro import (
    NameServiceError,
    NoSuchMethodError,
    RemoteError,
    Space,
    Surrogate,
)
from tests.helpers import Bank, BankImpl, Counter, Echo, Registry


@pytest.fixture(params=["inproc", "tcp"])
def spaces(request):
    """A (server, client) pair connected via the requested transport."""
    if request.param == "inproc":
        endpoint = f"inproc://srv-{request.node.name}"
    else:
        endpoint = "tcp://127.0.0.1:0"
    server = Space("server", listen=[endpoint])
    client = Space("client", listen=[
        endpoint + "-c" if request.param == "inproc" else "tcp://127.0.0.1:0"
    ])
    yield server, client
    client.shutdown()
    server.shutdown()


class TestBasicInvocation:
    def test_serve_import_invoke(self, spaces):
        server, client = spaces
        server.serve("counter", Counter())
        counter = client.import_object(server.endpoints[0], "counter")
        assert counter.increment() == 1
        assert counter.increment(5) == 6
        assert counter.value() == 6

    def test_surrogate_type(self, spaces):
        server, client = spaces
        server.serve("counter", Counter())
        counter = client.import_object(server.endpoints[0], "counter")
        assert isinstance(counter, Surrogate)
        assert isinstance(counter, Counter)  # virtual subclass

    def test_kwargs(self, spaces):
        server, client = spaces
        server.serve("counter", Counter())
        counter = client.import_object(server.endpoints[0], "counter")
        assert counter.increment(by=10) == 10

    def test_rich_data_round_trip(self, spaces):
        server, client = spaces
        server.serve("echo", Echo())
        echo = client.import_object(server.endpoints[0], "echo")
        value = {"names": ["a", "b"], "pairs": [(1, 2.5), (None, True)],
                 "blob": b"\x00\x01", "sets": {1, 2, 3}}
        assert echo.echo(value) == value

    def test_shared_structure_preserved_across_wire(self, spaces):
        server, client = spaces
        server.serve("echo", Echo())
        echo = client.import_object(server.endpoints[0], "echo")
        shared = [1, 2]
        result = echo.echo([shared, shared])
        assert result[0] is result[1]

    def test_remote_exception(self, spaces):
        server, client = spaces
        server.serve("echo", Echo())
        echo = client.import_object(server.endpoints[0], "echo")
        with pytest.raises(RemoteError) as info:
            echo.fail("boom")
        assert info.value.kind == "ValueError"
        assert "boom" in info.value.message
        assert "fail" in info.value.remote_traceback

    def test_unknown_name(self, spaces):
        server, client = spaces
        with pytest.raises(NameServiceError):
            client.import_object(server.endpoints[0], "missing")

    def test_unknown_method(self, spaces):
        server, client = spaces
        server.serve("counter", Counter())
        counter = client.import_object(server.endpoints[0], "counter")
        with pytest.raises(AttributeError):
            counter.no_such_method()

    def test_private_method_not_remotely_callable(self, spaces):
        server, client = spaces
        server.serve("echo", Echo())
        # Forge a call to a private name through the surrogate internals.
        echo = client.import_object(server.endpoints[0], "echo")
        with pytest.raises(NoSuchMethodError):
            echo._invoke("__init__", (), {})

    def test_agent_listing(self, spaces):
        server, client = spaces
        server.serve("a", Counter())
        server.serve("b", Echo())
        agent = client.import_object(server.endpoints[0])
        assert agent.list() == ["a", "b"]

    def test_unserve(self, spaces):
        server, client = spaces
        server.serve("temp", Counter())
        server.unserve("temp")
        with pytest.raises(NameServiceError):
            client.import_object(server.endpoints[0], "temp")

    def test_sequential_calls_many(self, spaces):
        server, client = spaces
        server.serve("counter", Counter())
        counter = client.import_object(server.endpoints[0], "counter")
        for expected in range(1, 101):
            assert counter.increment() == expected


class TestReferencePassing:
    def test_reference_as_result(self, spaces):
        """The agent.get path already passes refs; do it via app code."""
        server, client = spaces
        registry = Registry()
        registry.held.append(Counter(100))
        server.serve("registry", registry)
        remote_registry = client.import_object(server.endpoints[0], "registry")
        counter = remote_registry.fetch(0)
        assert isinstance(counter, Surrogate)
        assert counter.value() == 100

    def test_reference_as_argument(self, spaces):
        server, client = spaces
        server.serve("registry", Registry())
        remote_registry = client.import_object(server.endpoints[0], "registry")
        local_counter = Counter(7)
        assert remote_registry.hold(local_counter) == 1
        # The server can now call back into the client-owned object.
        assert remote_registry.poke(0) == 7

    def test_reference_returning_home_is_concrete(self, spaces):
        """A ref sent back to its owner resolves to the concrete object."""
        server, client = spaces
        registry = Registry()
        server.serve("registry", registry)
        remote_registry = client.import_object(server.endpoints[0], "registry")
        counter = Counter(1)
        remote_registry.hold(counter)
        echoed = remote_registry.fetch(0)
        # Round trip: client -> server -> client; identity preserved.
        assert echoed is counter

    def test_single_surrogate_per_object(self, spaces):
        server, client = spaces
        counter = Counter()
        registry = Registry()
        registry.held.append(counter)
        registry.held.append(counter)
        server.serve("registry", registry)
        remote_registry = client.import_object(server.endpoints[0], "registry")
        first = remote_registry.fetch(0)
        second = remote_registry.fetch(1)
        assert first is second

    def test_narrowing_to_interface(self, spaces):
        server, client = spaces
        server.serve("bank", BankImpl())
        bank = client.import_object(server.endpoints[0], "bank")
        assert bank.deposit("alice", 10) == 10
        assert bank.balance("alice") == 10
        assert isinstance(bank, Bank)
        # The surrogate narrows to the most derived *registered* type,
        # which in-process is BankImpl itself, audit() included.
        assert bank.audit() == {"alice": 10}

    def test_same_space_import_returns_local_object(self, spaces):
        server, _client = spaces
        counter = Counter()
        server.serve("counter", counter)
        assert server.import_object(server.endpoints[0], "counter") is counter


class TestSurrogateHygiene:
    def test_surrogate_refuses_stdlib_pickle(self, spaces):
        import pickle

        server, client = spaces
        server.serve("counter", Counter())
        counter = client.import_object(server.endpoints[0], "counter")
        with pytest.raises(TypeError):
            pickle.dumps(counter)

    def test_gc_stats_shape(self, spaces):
        server, client = spaces
        server.serve("counter", Counter())
        counter = client.import_object(server.endpoints[0], "counter")
        assert counter is not None
        stats = client.stats()["gc"]
        assert stats["surrogates"] >= 1
        assert stats["dirty_calls_sent"] >= 1
        server_stats = server.stats()["gc"]
        assert server_stats["dirty_calls_seen"] >= 1
