"""Edge cases of the Space runtime: shutdown, timeouts, bad targets,
connection loss, marshal-context plumbing."""

import threading
import time

import pytest

from repro import (
    CallTimeout,
    CommFailure,
    MarshalError,
    NetObj,
    NoSuchObjectError,
    Space,
    SpaceShutdownError,
    UnmarshalError,
)
from repro.core.marshalctx import MarshalContext, decode_ref, encode_ref
from repro.wire.ids import fresh_space_id
from repro.wire.wirerep import WireRep
from tests.helpers import Counter


class Sleeper(NetObj):
    def nap(self, seconds: float) -> float:
        time.sleep(seconds)
        return seconds


class TestTrackShutdownRace:
    def test_track_after_shutdown_closes_connection(self):
        """A dial (or accept) that completes its handshake after
        shutdown snapshotted ``_connections`` must not leave a live
        untracked connection behind — ``_track`` closes it itself."""
        from repro.rpc.connection import Connection
        from repro.rpc.dispatcher import Dispatcher
        from repro.transport.inprocess import channel_pair

        space = Space("track-race")
        space.shutdown()
        chan_a, chan_b = channel_pair()
        dispatcher = Dispatcher()
        holder = {}

        def accept():
            holder["peer"] = Connection(
                chan_b, fresh_space_id("peer"), dispatcher,
                lambda c, m: None, outbound=False,
            )

        thread = threading.Thread(target=accept, daemon=True)
        thread.start()
        connection = Connection(
            chan_a, space.space_id, space.dispatcher,
            space._handle_request, on_close=space._on_conn_close,
            outbound=True,
        )
        thread.join(timeout=5)
        space._track(connection)
        assert connection.closed
        assert connection not in space._connections
        assert space.connection_to(holder["peer"].peer_id) is None


class TestRefPayloadCodec:
    def test_round_trip(self):
        rep = WireRep(fresh_space_id("o"), 12)
        payload = encode_ref(rep, 7, ("tcp://a:1", "tcp://b:2"), ("T1", "T2"))
        decoded = decode_ref(payload)
        assert decoded == (rep, 7, ("tcp://a:1", "tcp://b:2"), ("T1", "T2"))

    def test_trailing_bytes_rejected(self):
        rep = WireRep(fresh_space_id(), 1)
        payload = encode_ref(rep, 1, (), ())
        with pytest.raises(UnmarshalError):
            decode_ref(payload + b"x")

    def test_truncated_rejected(self):
        rep = WireRep(fresh_space_id(), 1)
        payload = encode_ref(rep, 1, ("ep",), ("T",))
        for cut in range(1, len(payload)):
            with pytest.raises(UnmarshalError):
                decode_ref(payload[:cut])


class TestMarshalContextEdges:
    def test_unmarshal_without_connection_rejected(self, request):
        with Space("lonely") as space:
            context = MarshalContext(space, connection=None)
            rep = WireRep(fresh_space_id("o"), 1)
            with pytest.raises(UnmarshalError):
                context.unmarshal(encode_ref(rep, 1, ("ep",), ("T",)))

    def test_marshal_without_endpoint_rejected(self):
        """A space with no listener cannot export concrete objects —
        nobody could reach it for the dirty call."""
        with Space("hermit") as space:
            context = MarshalContext(space, connection=None)
            with pytest.raises(MarshalError):
                context.marshal(Counter())

    def test_marshal_surrogate_does_not_need_local_endpoint(self, request):
        endpoint = f"inproc://mc-{request.node.name}"
        with Space("server", listen=[endpoint]) as server, \
                Space("client") as client:  # no listener!
            server.serve("c", Counter())
            counter = client.import_object(endpoint, "c")
            context = MarshalContext(client, connection=None)
            payload = context.marshal(counter)
            rep, copy_id, endpoints, chain = decode_ref(payload)
            assert rep.owner == server.space_id
            assert endpoints == (endpoint,)
            assert copy_id >= 1
            client.transient.release(copy_id)  # undo the pin


class TestBadTargets:
    def test_call_on_reclaimed_object(self, request):
        """Invoking through a forged/stale wireRep yields
        NoSuchObjectError from the owner."""
        endpoint = f"inproc://bad-{request.node.name}"
        with Space("server", listen=[endpoint]) as server, \
                Space("client") as client:
            server.serve("c", Counter())
            counter = client.import_object(endpoint, "c")
            # Forge a call to an index that does not exist.
            bogus = WireRep(server.space_id, 424242)
            with pytest.raises(NoSuchObjectError):
                client._invoke_remote(
                    bogus, (endpoint,), "value", (), {}
                )
            assert counter.value() == 0  # the real one still works

    def test_call_to_non_owner(self, request):
        """A call routed to a space that does not own the target."""
        endpoint_a = f"inproc://noa-{request.node.name}"
        endpoint_b = f"inproc://nob-{request.node.name}"
        with Space("a", listen=[endpoint_a]) as space_a, \
                Space("b", listen=[endpoint_b]) as space_b, \
                Space("client") as client:
            space_a.serve("c", Counter())
            counter = client.import_object(endpoint_a, "c")
            with pytest.raises(NoSuchObjectError):
                client._invoke_remote(
                    counter._wirerep, (endpoint_b,), "value", (), {}
                )


class TestTimeoutsAndShutdown:
    def test_call_timeout(self, request):
        endpoint = f"inproc://to-{request.node.name}"
        server = Space("server", listen=[endpoint])
        client = Space("client", call_timeout=0.2)
        try:
            server.serve("sleeper", Sleeper())
            sleeper = client.import_object(endpoint, "sleeper")
            with pytest.raises(CallTimeout):
                sleeper.nap(2.0)
        finally:
            client.shutdown()
            server.shutdown()

    def test_shutdown_is_idempotent(self, request):
        space = Space("s", listen=[f"inproc://sd-{request.node.name}"])
        space.shutdown()
        space.shutdown()

    def test_calls_after_shutdown_fail(self, request):
        endpoint = f"inproc://sd2-{request.node.name}"
        with Space("server", listen=[endpoint]) as server:
            server.serve("c", Counter())
            client = Space("client")
            counter = client.import_object(endpoint, "c")
            client.shutdown()
            with pytest.raises(SpaceShutdownError):
                counter.value()
            with pytest.raises(SpaceShutdownError):
                client.import_object(endpoint, "c")

    def test_server_death_fails_inflight_call(self, request):
        endpoint = f"inproc://sd3-{request.node.name}"
        server = Space("server", listen=[endpoint])
        client = Space("client")
        try:
            server.serve("sleeper", Sleeper())
            sleeper = client.import_object(endpoint, "sleeper")
            failures = []

            def call():
                try:
                    sleeper.nap(5.0)
                except (CommFailure, SpaceShutdownError) as exc:
                    failures.append(exc)

            thread = threading.Thread(target=call, daemon=True)
            thread.start()
            time.sleep(0.2)
            server.shutdown()
            thread.join(timeout=5)
            assert len(failures) == 1
        finally:
            client.shutdown()
            server.shutdown()

    def test_reconnect_after_connection_drop(self, request):
        """Breaking the cached connection only costs a redial."""
        endpoint = f"inproc://rc-{request.node.name}"
        with Space("server", listen=[endpoint]) as server, \
                Space("client") as client:
            server.serve("c", Counter())
            counter = client.import_object(endpoint, "c")
            assert counter.increment() == 1
            # Kill the cached connection behind the client's back.
            connection = client.cache.peek(endpoint)
            assert connection is not None
            connection.close()
            time.sleep(0.1)
            assert counter.increment() == 2  # transparently redialed
            second = client.cache.peek(endpoint)
            assert second is not None and second is not connection


class TestListenerManagement:
    def test_add_listener_later(self, request):
        with Space("grower") as space:
            assert space.endpoints == []
            actual = space.add_listener("tcp://127.0.0.1:0")
            assert actual.startswith("tcp://127.0.0.1:")
            assert space.endpoints == [actual]

    def test_multiple_listeners_both_reachable(self, request):
        ep1 = f"inproc://m1-{request.node.name}"
        with Space("multi", listen=[ep1, "tcp://127.0.0.1:0"]) as server, \
                Space("client") as client:
            server.serve("c", Counter())
            via_inproc = client.import_object(server.endpoints[0], "c")
            via_tcp = client.import_object(server.endpoints[1], "c")
            via_inproc.increment()
            assert via_tcp.value() == 1
            # Same object table entry: one surrogate, whichever route.
            assert via_inproc is via_tcp
