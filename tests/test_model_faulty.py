"""Tests for the fault-tolerant model (Section-6 extension).

The headline results, mechanised:

* with sequence numbers, the algorithm is safe and leak-free across
  *every* reachable configuration under message loss, spurious
  timeouts and clean-call retries;
* without sequence numbers, the explorer finds (a) a leak — a clean
  overtaking a delayed dirty strands a permanent entry forever — and
  (b) a safety violation — a *retried* clean call arriving after a
  newer dirty removes a live client from the dirty set.
"""

import pytest

from repro.dgc.states import RefState
from repro.model.explorer import explore
from repro.model.variants import (
    FaultyMachine,
    faulty_leak_violations,
    faulty_safety_violations,
    initial_faulty,
)


def all_checks(config):
    return faulty_safety_violations(config) + faulty_leak_violations(config)


class TestWithSequenceNumbers:
    @pytest.mark.parametrize(
        "nprocs,copies,losses,timeouts",
        [(2, 2, 1, 2), (2, 2, 2, 1), (3, 2, 1, 1), (2, 3, 0, 2)],
    )
    def test_safe_and_leak_free(self, nprocs, copies, losses, timeouts):
        config = initial_faulty(
            nprocs=nprocs, copies_left=copies, losses_left=losses,
            timeouts_left=timeouts, use_seqnos=True,
        )
        result = explore(
            config, machine=FaultyMachine(), checker=all_checks,
            keep_traces=False, max_states=3_000_000,
        )
        assert result.ok, result.violations[0].messages
        assert result.quiescent_states > 0

    def test_every_fault_rule_fires(self):
        config = initial_faulty(
            nprocs=2, copies_left=2, losses_left=1, timeouts_left=2,
        )
        result = explore(
            config, machine=FaultyMachine(), checker=all_checks,
            keep_traces=False, max_states=3_000_000,
        )
        for rule in ("lose", "timeout_dirty", "timeout_clean",
                     "receive_clean", "receive_dirty"):
            assert rule in result.rule_counts, rule


class TestWithoutSequenceNumbers:
    def test_leak_found(self):
        """A clean overtaking a delayed dirty leaves a permanent entry
        for a departed client — forever."""
        config = initial_faulty(
            nprocs=2, copies_left=1, losses_left=1, timeouts_left=1,
            use_seqnos=False,
        )
        result = explore(
            config, machine=FaultyMachine(),
            checker=faulty_leak_violations, keep_traces=True,
        )
        assert not result.ok
        assert "LEAK" in result.violations[0].messages[0]
        names = [step.split("(")[0] for step in result.violations[0].trace]
        assert "timeout_dirty" in names

    def test_safety_violation_found(self):
        """The duplicated-clean race: a retried clean (same seqno)
        arrives after a fresh dirty and removes a live client."""
        config = initial_faulty(
            nprocs=2, copies_left=2, losses_left=0, timeouts_left=1,
            use_seqnos=False,
        )
        result = explore(
            config, machine=FaultyMachine(),
            checker=faulty_safety_violations, keep_traces=True,
        )
        assert not result.ok
        assert "FAULTY-UNSAFE" in result.violations[0].messages[0]
        names = [step.split("(")[0] for step in result.violations[0].trace]
        assert "timeout_clean" in names  # the retry is essential

    def test_no_faults_no_problem(self):
        """Without loss or timeouts, even the seqno-less protocol is
        fine — the guards only matter under retries/reordering."""
        config = initial_faulty(
            nprocs=2, copies_left=2, losses_left=0, timeouts_left=0,
            use_seqnos=False,
        )
        result = explore(
            config, machine=FaultyMachine(), checker=all_checks,
            keep_traces=False,
        )
        assert result.ok


class TestScriptedFaultScenarios:
    def walk(self, config, steps):
        machine = FaultyMachine()
        for kind, params in steps:
            matches = [
                t for t in machine.enabled(config)
                if t.kind == kind and t.params == params
            ]
            assert matches, f"{kind}{params} not enabled:\n{config.describe()}"
            config = matches[0].fire(config)
            assert not faulty_safety_violations(config), config.describe()
        return config

    def test_lost_dirty_then_strong_clean(self):
        config = initial_faulty(nprocs=2, copies_left=1, losses_left=1,
                                timeouts_left=1)
        config = self.walk(config, [
            ("make_copy", (0, 1)),
            ("receive_copy", (("copy", 0, 1, 1),)),
            ("lose", (("dirty", 1, 1),)),          # dirty vanishes
            ("timeout_dirty", (1,)),               # client gives up
            ("receive_clean", (("clean", 1, 2, True, 1),)),
            ("receive_clean_ack", (("clean_ack", 1, 2, 1),)),
        ])
        assert config.client(1).state is RefState.NONEXISTENT
        assert not config.pdirty

    def test_clean_retry_until_delivered(self):
        config = initial_faulty(nprocs=2, copies_left=1, losses_left=1,
                                timeouts_left=1)
        config = self.walk(config, [
            ("make_copy", (0, 1)),
            ("receive_copy", (("copy", 0, 1, 1),)),
            ("receive_dirty", (("dirty", 1, 1),)),
            ("receive_dirty_ack", (("dirty_ack", 1, 1),)),
            ("receive_copy_ack", (("copy_ack", 1, 0, 1),)),
            ("drop", (1,)),
            ("finalize", (1,)),
            ("lose", (("clean", 1, 2, False, 1),)),   # clean lost
            ("timeout_clean", (1,)),                  # retried, same seq
            ("receive_clean", (("clean", 1, 2, False, 2),)),
            ("receive_clean_ack", (("clean_ack", 1, 2, 2),)),
        ])
        assert config.client(1).state is RefState.NONEXISTENT
        assert not config.pdirty
        assert not config.msgs

    def test_late_dirty_cannot_resurrect(self):
        """The §2 guard end-to-end: dirty delayed past its own strong
        clean has no effect."""
        config = initial_faulty(nprocs=2, copies_left=1, losses_left=1,
                                timeouts_left=1)
        config = self.walk(config, [
            ("make_copy", (0, 1)),
            ("receive_copy", (("copy", 0, 1, 1),)),
            ("timeout_dirty", (1,)),                  # spurious timeout
            ("receive_clean", (("clean", 1, 2, True, 1),)),
            ("receive_dirty", (("dirty", 1, 1),)),    # the late dirty
        ])
        assert not config.pdirty, "late dirty resurrected the entry"
