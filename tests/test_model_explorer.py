"""Exhaustive exploration tests: safety over all reachable states."""

import pytest

from repro.model import explore, initial_configuration
from repro.model.variants import (
    FifoMachine,
    NaiveMachine,
    fifo_violations,
    initial_fifo,
    initial_naive,
    naive_violations,
)


class TestBirrellExhaustive:
    @pytest.mark.parametrize(
        "nprocs,copies", [(2, 2), (2, 3), (3, 2)]
    )
    def test_all_invariants_hold_everywhere(self, nprocs, copies):
        config = initial_configuration(
            nprocs=nprocs, nrefs=1, copies_left=copies
        )
        result = explore(config, keep_traces=False)
        assert result.ok, result.violations[0].messages
        assert result.states > 100
        assert result.quiescent_states >= 1

    def test_exploration_reaches_quiescence(self):
        config = initial_configuration(nprocs=2, nrefs=1, copies_left=2)
        result = explore(config, keep_traces=False)
        # Exactly one quiescent state: everything dropped and cleaned.
        assert result.quiescent_states == 1

    def test_every_rule_fires_somewhere(self):
        config = initial_configuration(nprocs=2, nrefs=1, copies_left=3)
        result = explore(config, keep_traces=False)
        expected = {
            "make_copy", "receive_copy", "do_copy_ack", "receive_copy_ack",
            "do_dirty_call", "receive_dirty", "do_dirty_ack",
            "receive_dirty_ack", "finalize", "do_clean_call",
            "receive_clean", "do_clean_ack", "receive_clean_ack",
            "mutator_drop",
        }
        assert expected <= set(result.rule_counts)

    def test_two_refs(self):
        config = initial_configuration(
            nprocs=2, nrefs=2, owner=(0, 1), copies_left=2
        )
        result = explore(config, keep_traces=False)
        assert result.ok, result.violations[0].messages


class TestNaiveCounterexample:
    def test_explorer_finds_the_race(self):
        result = explore(
            initial_naive(nprocs=3, copies_left=2),
            machine=NaiveMachine(),
            checker=naive_violations,
            keep_traces=True,
        )
        assert not result.ok
        violation = result.violations[0]
        assert "NAIVE-UNSAFE" in violation.messages[0]
        # The counterexample must involve a dec overtaking an inc.
        names = [step.split("(")[0] for step in violation.trace]
        assert "receive_dec" in names
        assert names.index("receive_dec") < len(names)

    def test_race_needs_overtaking(self):
        """With only one copy ever made, naive counting cannot break
        (no second reference to protect)."""
        result = explore(
            initial_naive(nprocs=2, copies_left=1),
            machine=NaiveMachine(),
            checker=naive_violations,
            keep_traces=False,
            stop_at_first_violation=False,
        )
        real = [
            violation for violation in result.violations
            if "holders=[1]" in violation.messages[0]
            or "in_transit=True" in violation.messages[0]
        ]
        assert not real


class TestFifoExhaustive:
    @pytest.mark.parametrize("nprocs,copies", [(2, 2), (2, 3), (3, 2)])
    def test_fifo_variant_safe(self, nprocs, copies):
        result = explore(
            initial_fifo(nprocs=nprocs, copies_left=copies),
            machine=FifoMachine(),
            checker=fifo_violations,
            keep_traces=False,
        )
        assert result.ok, result.violations[0].messages
        assert result.states > 50

    def test_fifo_reaches_full_cleanup(self):
        result = explore(
            initial_fifo(nprocs=2, copies_left=2),
            machine=FifoMachine(),
            checker=fifo_violations,
            keep_traces=False,
        )
        assert result.quiescent_states >= 1
