"""Heap-driven distributed mutation: localheap × the formal model.

Each process gets a real :class:`repro.localheap.Heap`; whether the
remote reference is *locally reachable* at a process is decided by
actual mark-sweep over that process's object graph — not by a scripted
flag.  Random heap mutations (allocations, links, root removals) and
random collector transitions interleave; every configuration is
checked against the full invariant suite, and after the mutators
drop everything, the collector must drain to empty dirty tables.

This is the closest the test suite comes to "a real program ran on
top": the mutator abstraction of the model is replaced by an actual
reachability computation.
"""

import random

import pytest

from repro.dgc.states import RefState
from repro.localheap import Heap, RemoteRef
from repro.model import Machine, initial_configuration
from repro.model.invariants import check_all
from repro.model.rules import RULES_BY_NAME

REF = 0  # the single remote reference, owned by process 0


class HeapDrivenRun:
    def __init__(self, nprocs: int, seed: int, copies: int):
        self.nprocs = nprocs
        self.rng = random.Random(seed)
        self.machine = Machine()
        self.config = initial_configuration(
            nprocs=nprocs, nrefs=1, copies_left=copies
        )
        self.heaps = [Heap() for _ in range(nprocs)]
        # The owner's own handle on the object.
        owner_holder = self.heaps[0].allocate(root=True)
        self.heaps[0].set_field(owner_holder, 0, RemoteRef(REF))

    # -- reachability bridge ------------------------------------------------------

    def heap_holds_ref(self, proc: int) -> bool:
        return REF in self.heaps[proc].reachable_remote_refs()

    def plant_ref(self, proc: int) -> None:
        """The application stored a just-received reference somewhere
        (possibly deep in a structure)."""
        heap = self.heaps[proc]
        holder = heap.allocate(nfields=2, root=True)
        heap.set_field(holder, 0, RemoteRef(REF))
        # Sometimes bury it one level deeper.
        if self.rng.random() < 0.5:
            outer = heap.allocate(nfields=1, root=True)
            heap.set_field(outer, 0, holder)
            heap.remove_root(holder)

    def sync_drops(self) -> None:
        """Fire mutator_drop wherever the heap no longer reaches the
        reference but the model still thinks it is reachable."""
        rule = RULES_BY_NAME["mutator_drop"]
        changed = True
        while changed:
            changed = False
            for proc, _ref in list(rule.candidates(self.config)):
                if not self.heap_holds_ref(proc):
                    self.config = rule.fire(self.config, (proc, REF))
                    changed = True

    # -- step kinds -----------------------------------------------------------------

    def mutate_heap(self) -> None:
        proc = self.rng.randrange(self.nprocs)
        heap = self.heaps[proc]
        action = self.rng.choice(["alloc", "unroot", "collect", "link"])
        if action == "alloc":
            heap.allocate(root=self.rng.random() < 0.5)
        elif action == "unroot" and heap.roots():
            victim = self.rng.choice(sorted(heap.roots()))
            if not (proc == 0 and len(heap.roots()) == 1):
                heap.remove_root(victim)
        elif action == "collect":
            heap.collect()
        elif action == "link" and heap.roots() and self.heap_holds_ref(proc):
            # A mutator may duplicate a reference it already reaches
            # into another slot — never conjure one from thin air.
            src = self.rng.choice(sorted(heap.roots()))
            slot = self.rng.randrange(len(heap.fields(src)))
            heap.set_field(src, slot, RemoteRef(REF))
        self.sync_drops()

    def fire_model(self) -> bool:
        transitions = self.machine.enabled(self.config)
        # The heap, not the model, decides drops and (implicitly)
        # finalize timing; keep only the collector's own moves plus
        # make_copy where the heap really holds the reference.
        eligible = []
        for transition in transitions:
            name = transition.rule.name
            if name == "mutator_drop":
                continue
            if name == "make_copy" and not self.heap_holds_ref(
                transition.params[0]
            ):
                continue
            if name == "finalize" and self.heap_holds_ref(
                transition.params[0]
            ):
                continue
            eligible.append(transition)
        if not eligible:
            return False
        transition = self.rng.choice(eligible)
        before = self.config
        self.config = transition.fire(before)
        name = transition.rule.name
        if name == "receive_dirty_ack":
            dst = transition.params[2]
            self.plant_ref(dst)
        elif name == "receive_copy":
            _tag, _src, dst, _ref, _id = transition.params
            if before.rec_of(dst, REF) is RefState.OK:
                self.plant_ref(dst)
        return True

    # -- driver -----------------------------------------------------------------------

    def run(self, steps: int = 120) -> None:
        for _ in range(steps):
            if self.rng.random() < 0.35:
                self.mutate_heap()
            else:
                self.fire_model()
            check_all(self.config)
            self.check_heap_model_agreement()

    def check_heap_model_agreement(self) -> None:
        """A process whose heap reaches the ref must have it in a
        potentially-usable model state (the converse is not required:
        the model may lag until sync_drops)."""
        for proc in range(1, self.nprocs):
            if self.config.is_reachable(proc, REF):
                state = self.config.rec_of(proc, REF)
                assert state is not RefState.NONEXISTENT

    def teardown(self) -> None:
        """All applications exit: clear roots, drain, expect emptiness."""
        for proc in range(1, self.nprocs):
            heap = self.heaps[proc]
            for root in list(heap.roots()):
                heap.remove_root(root)
            heap.collect()
        self.sync_drops()
        # Drain collector + finalize to full quiescence.
        for _ in range(10_000):
            transitions = [
                t for t in self.machine.enabled(self.config)
                if t.rule.name not in ("make_copy", "mutator_drop")
            ]
            if not transitions:
                break
            self.config = transitions[0].fire(self.config)
            check_all(self.config)
        owner = self.config.owner[REF]
        assert not self.config.pdirty_of(owner, REF)
        assert not self.config.tdirty
        assert not self.config.msgs


class TestHeapDrivenMutator:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_interleavings(self, seed):
        run = HeapDrivenRun(nprocs=3, seed=seed, copies=4)
        run.run(steps=120)
        run.teardown()

    @pytest.mark.parametrize("seed", [100, 200])
    def test_two_process_long_runs(self, seed):
        run = HeapDrivenRun(nprocs=2, seed=seed, copies=6)
        run.run(steps=250)
        run.teardown()

    def test_owner_never_loses_its_object_while_heap_holds(self):
        """Directed variant: while any client heap reaches the ref,
        the owner's dirty tables are non-empty."""
        run = HeapDrivenRun(nprocs=3, seed=7, copies=4)
        for _ in range(150):
            if run.rng.random() < 0.35:
                run.mutate_heap()
            else:
                run.fire_model()
            check_all(run.config)
            holders = [
                proc for proc in range(1, run.nprocs)
                if run.heap_holds_ref(proc)
                and run.config.rec_of(proc, REF) is not RefState.NONEXISTENT
            ]
            if holders:
                owner = run.config.owner[REF]
                protected = bool(
                    run.config.pdirty_of(owner, REF)
                    or run.config.tdirty_of(owner, REF)
                )
                assert protected, run.config.describe()
