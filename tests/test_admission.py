"""The bounded ingress pipeline: BUSY shedding, credit gauges, read
throttling, bounded write backlogs and draining shutdown.

Covers the v6 wire story (BUSY frame, FAULT fallback toward pre-v6
peers, in both dial directions), the admission gauges at unit level
(inflight budget pause/resume, token-bucket rate policing, bulkhead
quotas), the bounded dispatcher (queue-full refusal, discard-drain
shutdown with on_shed hooks), the capped TCP write backlog against a
never-reading peer, the bounded in-process pipes, and the endpoint
health demotion in the ConnectionCache.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro import NetObj, Space
from repro.errors import CommFailure, ServerBusy
from repro.rpc import messages
from repro.rpc.admission import (
    AdmissionConfig, AdmissionController, busy_backoff, retry_busy,
)
from repro.rpc.cache import ConnectionCache
from repro.rpc.dispatcher import Dispatcher
from repro.transport.inprocess import channel_pair
from repro.wire import protocol
from tests.helpers import wait_until


class Echo(NetObj):
    def echo(self, value):
        return value


class Sleeper(NetObj):
    def nap(self, seconds: float) -> str:
        time.sleep(seconds)
        return "woke"


class Blocker(NetObj):
    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Event()

    def wait(self) -> str:
        self.entered.set()
        self.release.wait(10)
        return "done"


def _pair(tag: str, server_kwargs=None, client_kwargs=None):
    server = Space(f"adm-srv-{tag}", listen=["tcp://127.0.0.1:0"],
                   shm="off", **(server_kwargs or {}))
    client = Space(f"adm-cli-{tag}", shm="off", **(client_kwargs or {}))
    return server, client, server.endpoints[0]


class TestBusyWire:
    def test_busy_frame_round_trips(self):
        frame = messages.Busy(7, "queue full", 50)
        decoded = messages.decode(memoryview(frame.encode()))
        assert decoded == frame
        assert decoded.reason == "queue full"
        assert decoded.retry_after_ms == 50

    def test_busy_is_a_reply_and_gated_at_v6(self):
        # BUSY completes pending futures (a reply tag) and must never
        # be emitted below the version that introduced it: an unknown
        # tag tears down a pre-v6 peer's connection.
        assert protocol.BUSY in messages.REPLY_TAGS
        assert protocol.BUSY_VERSION == 6
        assert protocol.PROTOCOL_VERSION >= protocol.BUSY_VERSION

    def test_server_busy_exception_carries_hints(self):
        exc = ServerBusy("rate limit", 0.25)
        assert exc.reason == "rate limit"
        assert exc.retry_after == 0.25
        assert not isinstance(exc, CommFailure)  # connection is healthy


class TestGaugeUnit:
    def make(self, **kwargs):
        controller = AdmissionController(AdmissionConfig(**kwargs))
        events = []
        gauge = controller.attach(
            lambda: events.append("pause"), lambda: events.append("resume")
        )
        return controller, gauge, events

    def test_inflight_budget_pauses_then_low_water_resumes(self):
        controller, gauge, events = self.make(
            max_inflight_frames=4, max_inflight_bytes=None, resume_ratio=0.5
        )
        for _ in range(4):
            assert gauge.admit(100) is None
        assert events == ["pause"]  # at budget: reads stop, nothing sheds
        gauge.release(100)          # 3 left: still above 0.5 * 4
        assert events == ["pause"]
        gauge.release(100)          # 2 left: at the low-water mark
        assert events == ["pause", "resume"]
        stats = controller.stats()
        assert stats["read_pauses"] == 1
        assert stats["read_resumes"] == 1
        assert stats["admitted"] == 4
        assert stats["shed"] == 0

    def test_byte_budget_pauses_like_the_frame_budget(self):
        _, gauge, events = self.make(
            max_inflight_frames=None, max_inflight_bytes=1000
        )
        assert gauge.admit(600) is None
        assert events == []
        assert gauge.admit(600) is None
        assert events == ["pause"]
        gauge.release(600)
        gauge.release(600)
        assert events == ["pause", "resume"]

    def test_rate_policing_sheds_and_refills(self):
        _, gauge, _ = self.make(rate=1000.0, burst=2)
        assert gauge.admit(1) is None
        assert gauge.admit(1) is None
        assert gauge.admit(1) == "rate limit"   # burst spent
        time.sleep(0.01)                        # ~10 tokens refill
        assert gauge.admit(1) is None

    def test_closed_gauge_never_resumes(self):
        _, gauge, events = self.make(max_inflight_frames=1)
        gauge.admit(1)
        assert events == ["pause"]
        gauge.close()
        gauge.release(1)
        assert events == ["pause"]  # teardown won the race; stay silent

    def test_bulkhead_quota_is_per_key(self):
        controller = AdmissionController(AdmissionConfig(bulkhead_quota=2))
        assert controller.bulkhead_enter("a")
        assert controller.bulkhead_enter("a")
        assert not controller.bulkhead_enter("a")   # quota spent
        assert controller.bulkhead_enter("b")       # other targets fine
        controller.bulkhead_leave("a")
        assert controller.bulkhead_enter("a")

    def test_backoff_is_jittered_and_capped(self):
        for attempt in range(8):
            delay = busy_backoff(0.05, attempt)
            assert 0.0 < delay < 1.5
        assert busy_backoff(100.0, 0) <= 1.5  # stale hints cannot stall

    def test_retry_busy_retries_then_raises(self):
        calls = []

        def flaky():
            calls.append(1)
            raise ServerBusy("queue full", 0.001)

        with pytest.raises(ServerBusy):
            retry_busy(flaky, attempts=3)
        assert len(calls) == 3

        attempts = []

        def recovers():
            attempts.append(1)
            if len(attempts) < 2:
                raise ServerBusy("queue full", 0.001)
            return "ok"

        assert retry_busy(recovers, attempts=3) == "ok"


class TestDispatcherBounds:
    def test_max_queued_refuses_and_discard_fires_on_shed(self):
        pool = Dispatcher("bounded", max_workers=1, max_queued=2)
        started, release = threading.Event(), threading.Event()

        def occupy():
            started.set()
            release.wait(10)

        try:
            assert pool.submit(occupy)
            assert started.wait(5)      # the only worker is now pinned
            shed = []

            def make_task(i):
                def task():
                    pass
                task.on_shed = lambda: shed.append(i)
                return task

            assert pool.submit(make_task(1))
            assert pool.submit(make_task(2))
            assert not pool.submit(make_task(3))   # cap reached: refused
            assert pool.stats()["shed_submits"] == 1
            discarded = pool.shutdown(discard_pending=True)
            assert discarded == 2
            assert sorted(shed) == [1, 2]
            assert pool.stats()["discarded_tasks"] == 2
        finally:
            release.set()

    def test_shard_overflow_spills_to_shared_queue(self):
        pool = Dispatcher("spill", max_workers=1, shards=2,
                          shard_queue_max=1)
        started, release = threading.Event(), threading.Event()
        try:
            assert pool.submit(lambda: (started.set(), release.wait(10)))
            assert started.wait(5)
            assert pool.submit(lambda: None, shard=0)
            assert pool.submit(lambda: None, shard=0)  # deque full: spills
            assert pool.stats()["shard_spills"] == 1
        finally:
            release.set()
            pool.shutdown(discard_pending=True)


class TestBoundedInprocPipes:
    def test_sender_fails_when_peer_stops_reading(self):
        a, b = channel_pair(capacity=4, send_timeout=0.05)
        try:
            for i in range(4):
                a.send(b"frame")
            with pytest.raises(CommFailure, match="backlog exceeded"):
                a.send(b"one too many")
        finally:
            a.close()
            b.close()

    def test_draining_peer_unblocks_the_sender(self):
        a, b = channel_pair(capacity=2, send_timeout=5.0)
        try:
            a.send(b"one")
            a.send(b"two")
            drained = threading.Event()

            def drain():
                assert b.recv(timeout=5) == b"one"
                drained.set()

            thread = threading.Thread(target=drain, daemon=True)
            thread.start()
            a.send(b"three")    # parks briefly, then the drain frees it
            assert drained.wait(5)
            thread.join(5)
        finally:
            a.close()
            b.close()

    def test_close_bypasses_the_bound(self):
        a, b = channel_pair(capacity=1, send_timeout=0.05)
        a.send(b"fill")
        a.close()   # must not block behind the full pipe
        b.close()


class TestWriteBacklogCap:
    def test_never_reading_peer_is_disconnected_at_the_cap(self):
        """A capped reactor-mode cork: once the kernel buffer and the
        cap are both full, the sender gets CommFailure, the overflow
        hook fires, and the channel is closed (slow-consumer
        disconnect) instead of buffering without bound."""
        from repro.transport.reactor import Reactor
        from repro.transport.tcp import SocketChannel

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        left = socket.create_connection(listener.getsockname(), timeout=10)
        left.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 8192)
        right, _ = listener.accept()
        listener.close()
        sender = SocketChannel(left)
        sender.write_backlog_limit = 64 * 1024
        overflows = []
        sender.on_backlog_overflow = lambda: overflows.append(1)

        class Sink:
            def on_frame(self, payload):
                pass

            def on_closed(self, failure):
                pass

        reactor = Reactor("backlog-cap")
        reactor.start()
        try:
            reactor.register(sender, Sink(), name="sender")
            payload = b"x" * 8192
            with pytest.raises(CommFailure, match="write backlog"):
                # Never more than (SNDBUF + cap) / 8 KiB sends needed.
                for _ in range(64):
                    sender.send(payload)
            assert overflows == [1]
            assert sender.closed
        finally:
            sender.close()
            right.close()
            reactor.stop()


class TestEndToEndShedding:
    def test_queue_full_server_answers_busy(self):
        # max_queued=0: every dispatched request is refused at the
        # global cap, so the client's import sheds deterministically.
        server, client, endpoint = _pair(
            "qfull",
            server_kwargs={"admission": AdmissionConfig(max_queued=0)},
        )
        with server, client:
            with pytest.raises(ServerBusy) as excinfo:
                client.import_object(endpoint, "anything")
            assert excinfo.value.retry_after == pytest.approx(0.05)
            stats = server.stats()["admission"]
            assert stats["shed_queue"] >= 1
            assert stats["shed"] >= 1
            assert server.dispatcher.stats()["shed_submits"] >= 1
            # The client observed the sheds on its admission account.
            assert client.stats()["admission"]["busy_received"] >= 1

    def test_pre_v6_client_gets_the_fault_fallback(self):
        # A pinned-v5 client must never see a BUSY tag (it would tear
        # the connection down); the shed arrives as FAULT kind
        # "ServerBusy" and surfaces as the same exception.
        server, client, endpoint = _pair(
            "v5cli",
            server_kwargs={"admission": AdmissionConfig(max_queued=0)},
            client_kwargs={"protocol_version": 5},
        )
        with server, client:
            with pytest.raises(ServerBusy):
                client.import_object(endpoint, "anything")
            connection = client.cache.peek(endpoint)
            assert connection is not None and connection.version == 5
            assert server.stats()["admission"]["shed_queue"] >= 1

    def test_pre_v6_server_still_serves_v6_client(self):
        # Other dial direction: a v6 client against a pinned-v5 server
        # negotiates 5 and stays fully functional (no BUSY in either
        # direction; nothing sheds at defaults).
        server, client, endpoint = _pair(
            "v5srv", server_kwargs={"protocol_version": 5},
        )
        with server, client:
            server.serve("echo", Echo())
            echo = client.import_object(endpoint, "echo")
            assert echo.echo("x") == "x"
            assert client.cache.get(endpoint).version == 5
            assert client.stats()["admission"]["busy_received"] == 0

    def test_inflight_budget_throttles_reads_not_calls(self):
        # A tiny inflight budget against a pipelined burst: every call
        # still completes (backpressure, not shedding) and the server
        # records pause/resume transitions.
        from repro import async_call

        server, client, endpoint = _pair(
            "throttle",
            server_kwargs={
                "admission": AdmissionConfig(
                    max_inflight_frames=2, max_queued=None,
                    shard_queue_max=None,
                ),
            },
        )
        with server, client:
            server.serve("sleepy", Sleeper())
            sleepy = client.import_object(endpoint, "sleepy")
            futures = [async_call(sleepy.nap, 0.02) for _ in range(12)]
            assert all(f.result(30) == "woke" for f in futures)
            stats = server.stats()["admission"]
            assert stats["read_pauses"] >= 1
            assert stats["read_resumes"] >= 1
            assert stats["shed"] == 0
            # Quiesced: no connection still has its reads paused.
            assert wait_until(
                lambda: server.reactor.stats()["paused_reads"] == 0
            )

    def test_shutdown_discards_queued_tasks_with_busy(self):
        # One worker, one running call, more queued: shutdown must not
        # run the backlog — queued callers get BUSY (ServerBusy), the
        # running call's worker is left to finish.
        from repro import async_call

        blocker = Blocker()
        server, client, endpoint = _pair(
            "drain", server_kwargs={"dispatcher_max_workers": 1},
        )
        with client:
            try:
                server.serve("blocker", blocker)
                surrogate = client.import_object(endpoint, "blocker")
                first = async_call(surrogate.wait)
                assert blocker.entered.wait(10)   # worker pinned
                queued = [async_call(surrogate.wait) for _ in range(3)]
                assert wait_until(
                    lambda: server.dispatcher.stats()["queued"] >= 3
                )
                server.shutdown()
                outcomes = []
                for future in queued:
                    try:
                        future.result(10)
                        outcomes.append("done")
                    except ServerBusy as busy:
                        # A straggler that reaches the closed dispatcher
                        # sheds as "queue full"; everything drained from
                        # the backlog sheds as "shutting down".
                        assert busy.reason in (
                            "shutting down", "queue full",
                        )
                        outcomes.append("busy")
                    except CommFailure:
                        outcomes.append("comm")
                # The discard drain answered before teardown: at least
                # one queued caller saw an explicit BUSY, none hung.
                assert outcomes.count("busy") >= 1
                assert server.dispatcher.stats()["discarded_tasks"] >= 1
                assert (
                    server.stats()["admission"]["shed_shutdown"] >= 1
                )
            finally:
                blocker.release.set()
                server.shutdown()
                first.cancel()


class TestUngaugedRefusal:
    def test_refused_submit_sheds_even_without_a_gauge(self):
        """Regression: a frame that reaches the dispatcher before the
        gauge is attached (or with admission off) must still get a
        BUSY when the pool refuses it — dropping it silently strands
        the caller until its call timeout."""
        from repro.rpc.connection import Connection
        from repro.wire.ids import fresh_space_id
        from repro.wire.wirerep import WireRep

        chan_a, chan_b = channel_pair()
        refusing = Dispatcher("refuse-all", max_queued=0)
        accepting = Dispatcher("client-side")
        result = {}

        def make_b():
            result["b"] = Connection(
                chan_b, fresh_space_id("b"), refusing,
                lambda conn, msg: None, outbound=False,
            )

        thread = threading.Thread(target=make_b, daemon=True)
        thread.start()
        conn_a = Connection(
            chan_a, fresh_space_id("a"), accepting,
            lambda conn, msg: None, outbound=True,
        )
        thread.join(5)
        try:
            assert result["b"]._gauge is None
            call = messages.Call(
                conn_a.next_call_id(),
                WireRep(fresh_space_id(), 1), "m", b"",
            )
            with pytest.raises(ServerBusy, match="queue full"):
                conn_a.call(call, timeout=5)
        finally:
            conn_a.close()
            result["b"].close()
            refusing.shutdown()
            accepting.shutdown()


class TestGCPlaneExemption:
    """The collector's control plane (DIRTY/CLEAN/CLEAN_BATCH/PING) is
    bounded by the inflight gauge but never *refused*: a shed dirty
    breaks reference-listing safety, and a shed ping makes a live peer
    look dead.  Pre-v6 peers get silence (not FAULT) on those planes —
    their reply handlers assert on the exact ack type."""

    def test_dispatcher_force_bypasses_queue_cap_not_shutdown(self):
        pool = Dispatcher("force-test", max_queued=0)
        try:
            ran = threading.Event()
            assert not pool.submit(lambda: None)       # cap refuses
            assert pool.submit(ran.set, force=True)    # force admits
            assert ran.wait(5)
        finally:
            pool.shutdown()
        assert not pool.submit(lambda: None, force=True)  # never past shutdown

    def test_unpoliced_admit_skips_the_token_bucket(self):
        controller = AdmissionController(AdmissionConfig(rate=1000.0, burst=1))
        gauge = controller.attach(lambda: None, lambda: None)
        assert gauge.admit(1) is None
        assert gauge.admit(1) == "rate limit"           # burst spent
        assert gauge.admit(1, police=False) is None     # GC plane: charged,
        gauge.release(1)                                # never refused
        assert gauge.admit(1) == "rate limit"           # and no token burned

    def test_ping_is_forced_past_a_full_queue(self):
        """End to end over a real channel pair: with ``max_queued=0``
        every call-plane request sheds, but a PING still answers —
        the pinger must never mistake a busy space for a dead one."""
        from repro.rpc.connection import Connection
        from repro.wire.ids import fresh_space_id
        from repro.wire.wirerep import WireRep

        chan_a, chan_b = channel_pair()
        refusing = Dispatcher("refuse-calls", max_queued=0)
        accepting = Dispatcher("client-side")
        result = {}

        def handler(conn, msg):
            if isinstance(msg, messages.Ping):
                conn.send(messages.PingAck(msg.call_id))

        def make_b():
            result["b"] = Connection(
                chan_b, fresh_space_id("b"), refusing, handler,
                outbound=False,
            )

        thread = threading.Thread(target=make_b, daemon=True)
        thread.start()
        conn_a = Connection(
            chan_a, fresh_space_id("a"), accepting,
            lambda conn, msg: None, outbound=True,
        )
        thread.join(5)
        try:
            reply = conn_a.call(
                messages.Ping(conn_a.next_call_id()), timeout=5)
            assert isinstance(reply, messages.PingAck)
            call = messages.Call(
                conn_a.next_call_id(),
                WireRep(fresh_space_id(), 1), "m", b"",
            )
            with pytest.raises(ServerBusy, match="queue full"):
                conn_a.call(call, timeout=5)
        finally:
            conn_a.close()
            result["b"].close()
            refusing.shutdown()
            accepting.shutdown()

    def test_pre_v6_shed_replies_are_tag_aware(self):
        """Below v6 a shed DIRTY/CLEAN_BATCH must be answered by
        silence: the old client asserts the reply is its exact ack
        type, so a FAULT fallback would crash it (only the call plane
        and LEASE_REQ digest FAULT gracefully)."""
        from repro.rpc.connection import Connection
        from repro.wire import protocol
        from repro.wire.ids import fresh_space_id

        chan_a, chan_b = channel_pair()
        pool_a = Dispatcher("a")
        pool_b = Dispatcher("b")
        result = {}

        def make_b():
            result["b"] = Connection(
                chan_b, fresh_space_id("b"), pool_b,
                lambda conn, msg: None, outbound=False,
            )

        thread = threading.Thread(target=make_b, daemon=True)
        thread.start()
        conn_a = Connection(
            chan_a, fresh_space_id("a"), pool_a,
            lambda conn, msg: None, outbound=True,
        )
        thread.join(5)
        b = result["b"]
        sent = []
        try:
            b.send = sent.append     # capture instead of hitting the wire
            b.version = 5
            b._send_shed_reply(7, "queue full", protocol.DIRTY)
            b._send_shed_reply(8, "queue full", protocol.CLEAN_BATCH)
            assert sent == []        # silence: the peer's retry recovers
            b._send_shed_reply(9, "queue full", protocol.CALL)
            b._send_shed_reply(10, "queue full", protocol.LEASE_REQ)
            assert [type(m) for m in sent] == [
                messages.Fault, messages.Fault,
            ]
            assert sent[0].kind == "ServerBusy"
            b.version = 6
            b._send_shed_reply(11, "queue full", protocol.DIRTY)
            assert type(sent[-1]) is messages.Busy   # v6: BUSY everywhere
        finally:
            del b.send
            conn_a.close()
            b.close()
            pool_a.shutdown()
            pool_b.shutdown()


class TestEndpointHealth:
    def test_strikes_demote_and_success_heals(self):
        cache = ConnectionCache(connect=lambda ep: None)
        cache.busy_strike_limit = 2
        endpoints = ["tcp://a:1", "tcp://b:1"]
        assert cache.healthy_order(endpoints) == endpoints
        cache.note_busy("tcp://a:1")
        assert cache.healthy_order(endpoints) == endpoints  # below limit
        cache.note_busy("tcp://a:1")
        assert cache.healthy_order(endpoints) == [
            "tcp://b:1", "tcp://a:1",
        ]
        assert cache.stats()["busy_endpoints"] == 1
        assert cache.stats()["busy_demotions"] == 1
        cache.note_ok("tcp://a:1")
        assert cache.healthy_order(endpoints) == endpoints
        assert cache.stats()["busy_endpoints"] == 0

    def test_none_endpoint_is_ignored(self):
        cache = ConnectionCache(connect=lambda ep: None)
        cache.note_busy(None)   # accepted connections have no endpoint
        cache.note_ok(None)
        assert cache.stats()["busy_endpoints"] == 0

    def test_strike_limit_follows_admission_config(self):
        space = Space("adm-knob", admission=AdmissionConfig(busy_strikes=7))
        try:
            assert space.cache.busy_strike_limit == 7
        finally:
            space.shutdown()

    def test_admission_off_disables_the_pipeline(self):
        space = Space("adm-off", admission="off")
        try:
            assert space.admission is None
            assert space.stats()["admission"] == {"enabled": False}
            assert space.dispatcher.max_queued is None
        finally:
            space.shutdown()
