"""Unit tests for the discrete-event simulation substrate."""

import threading

import pytest

from repro.sim import EventScheduler, NetworkModel, SimNetwork, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance_to(5.0)
        assert clock.now() == 5.0

    def test_no_backwards_travel(self):
        clock = VirtualClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.0)


class TestEventScheduler:
    @pytest.fixture()
    def scheduler(self):
        sched = EventScheduler()
        sched.start()
        yield sched
        sched.stop()

    def test_events_run_in_time_order(self, scheduler):
        order = []
        done = threading.Event()
        scheduler.schedule_at(3.0, lambda: (order.append("c"), done.set()))
        scheduler.schedule_at(1.0, lambda: order.append("a"))
        scheduler.schedule_at(2.0, lambda: order.append("b"))
        assert done.wait(5)
        assert order == ["a", "b", "c"]

    def test_clock_advances_with_events(self, scheduler):
        done = threading.Event()
        scheduler.schedule_at(42.0, done.set)
        assert done.wait(5)
        assert scheduler.clock.now() == 42.0

    def test_simultaneous_events_fifo(self, scheduler):
        order = []
        done = threading.Event()
        for i in range(10):
            scheduler.schedule_at(1.0, lambda i=i: order.append(i))
        scheduler.schedule_at(1.0, done.set)
        assert done.wait(5)
        assert order == list(range(10))

    def test_schedule_after_uses_current_time(self, scheduler):
        done = threading.Event()
        scheduler.schedule_at(10.0, lambda: scheduler.schedule_after(5.0, done.set))
        assert done.wait(5)
        assert scheduler.clock.now() == 15.0

    def test_wait_idle(self, scheduler):
        scheduler.schedule_at(1.0, lambda: None)
        assert scheduler.wait_idle(timeout=5)
        assert scheduler.pending() == 0

    def test_failing_action_does_not_kill_loop(self, scheduler, capsys):
        done = threading.Event()

        def boom():
            raise RuntimeError("intentional")

        scheduler.schedule_at(1.0, boom)
        scheduler.schedule_at(2.0, done.set)
        assert done.wait(5)

    def test_stop_is_idempotent(self):
        sched = EventScheduler()
        sched.start()
        sched.stop()
        sched.stop()

    def test_start_is_idempotent(self, scheduler):
        scheduler.start()
        done = threading.Event()
        scheduler.schedule_at(1.0, done.set)
        assert done.wait(5)


class TestNetworkModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(latency=-1)
        with pytest.raises(ValueError):
            NetworkModel(drop_probability=1.5)

    def test_defaults(self):
        model = NetworkModel()
        assert model.fifo is False
        assert model.drop_probability == 0.0


class TestSimNetwork:
    def make(self, **kwargs):
        sched = EventScheduler()
        sched.start()
        return sched, SimNetwork(sched, NetworkModel(**kwargs))

    def test_delivery(self):
        sched, net = self.make(latency=0.5)
        got = []
        done = threading.Event()
        net.send("a", "b", b"\x10hello", lambda p: (got.append(p), done.set()))
        assert done.wait(5)
        assert got == [b"\x10hello"]
        assert sched.clock.now() == pytest.approx(0.5)
        assert net.stats.sent == 1
        assert net.stats.delivered == 1
        assert net.stats.by_tag[0x10] == 1
        sched.stop()

    def test_loss_is_deterministic(self):
        results = []
        for _ in range(2):
            sched, net = self.make(drop_probability=0.5, seed=7)
            delivered = []
            for i in range(100):
                net.send("a", "b", bytes([i]), delivered.append)
            assert sched.wait_idle(5)
            results.append(list(delivered))
            assert net.stats.dropped > 10
            assert net.stats.dropped + net.stats.delivered == 100
            sched.stop()
        assert results[0] == results[1]

    def test_jitter_without_fifo_can_reorder(self):
        sched, net = self.make(latency=0.001, jitter=0.1, seed=3)
        order = []
        for i in range(50):
            net.send("a", "b", bytes([i]), lambda p: order.append(p[0]))
        assert sched.wait_idle(5)
        assert sorted(order) == list(range(50))
        assert order != list(range(50)), "expected at least one reorder"
        sched.stop()

    def test_fifo_enforced_despite_jitter(self):
        sched, net = self.make(latency=0.001, jitter=0.1, seed=3, fifo=True)
        order = []
        for i in range(50):
            net.send("a", "b", bytes([i]), lambda p: order.append(p[0]))
        assert sched.wait_idle(5)
        assert order == list(range(50))
        sched.stop()

    def test_fifo_is_per_pair(self):
        sched, net = self.make(latency=0.001, jitter=0.1, seed=5, fifo=True)
        per_dst = {"b": [], "c": []}
        for i in range(30):
            net.send("a", "b", bytes([i]), lambda p: per_dst["b"].append(p[0]))
            net.send("a", "c", bytes([i]), lambda p: per_dst["c"].append(p[0]))
        assert sched.wait_idle(5)
        assert per_dst["b"] == list(range(30))
        assert per_dst["c"] == list(range(30))
        sched.stop()

    def test_reset_stats(self):
        sched, net = self.make()
        net.send("a", "b", b"x", lambda p: None)
        assert sched.wait_idle(5)
        net.reset_stats()
        assert net.stats.sent == 0
        sched.stop()
