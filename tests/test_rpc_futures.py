"""Futures on the RPC layer: pipelining, teardown, timeout recycling."""

import threading
import time

import pytest

from repro.errors import CallTimeout, CommFailure
from repro.rpc import messages
from repro.wire.ids import fresh_space_id
from repro.wire.wirerep import WireRep

from tests.test_rpc import connected_pair


def _echo(conn, msg):
    assert isinstance(msg, messages.Call)
    conn.send(messages.Result(msg.call_id, bytes(msg.args_pickle)))


def _call(conn, payload=b"x"):
    rep = WireRep(fresh_space_id(), 1)
    return messages.Call(conn.next_call_id(), rep, "m", payload)


class TestCallFuture:
    def test_async_call_resolves(self):
        conn_a, _b, _x, _y = connected_pair(handle_b=_echo)
        future = conn_a.call_async(_call(conn_a, b"hello"))
        reply = future.result(5)
        assert isinstance(reply, messages.Result)
        assert reply.result_pickle == b"hello"
        assert future.done()
        assert future.exception(0) is None
        conn_a.close()

    def test_hundreds_in_flight_from_one_thread(self):
        gate = threading.Event()

        def serve(conn, msg):
            gate.wait(5)  # hold every reply until all calls are out
            conn.send(messages.Result(msg.call_id, bytes(msg.args_pickle)))

        conn_a, _b, _x, _y = connected_pair(handle_b=serve)
        futures = [
            conn_a.call_async(_call(conn_a, str(i).encode()))
            for i in range(200)
        ]
        assert not any(f.done() for f in futures)
        gate.set()
        for i, future in enumerate(futures):
            assert future.result(10).result_pickle == str(i).encode()
        conn_a.close()

    def test_teardown_fails_in_flight_futures(self):
        conn_a, conn_b, _x, _y = connected_pair()  # peer never replies
        futures = [conn_a.call_async(_call(conn_a)) for _ in range(5)]
        seen = []
        for future in futures:
            future.add_done_callback(seen.append)
        conn_b.close()
        for future in futures:
            assert isinstance(future.exception(5), CommFailure)
            with pytest.raises(CommFailure):
                future.result(0)
        assert sorted(seen, key=id) == sorted(futures, key=id)
        conn_a.close()

    def test_timeout_abandons_then_late_reply_is_dropped(self):
        release = threading.Event()

        def serve(conn, msg):
            release.wait(5)
            conn.send(messages.Result(msg.call_id, b"late"))

        conn_a, _b, _x, _y = connected_pair(handle_b=serve)
        future = conn_a.call_async(_call(conn_a))
        with pytest.raises(CallTimeout):
            future.result(0.05)
        assert future.done()
        release.set()
        time.sleep(0.1)  # the late reply arrives and must be discarded
        with pytest.raises(CallTimeout):
            future.result(0)  # outcome is sticky
        assert not conn_a.closed
        conn_a.close()

    def test_blocking_timeout_recycles_slot_without_crosstalk(self):
        """A timed-out blocking call abandons its slot; the recycled
        future must serve later calls without leaking the late reply."""
        release = threading.Event()

        def serve(conn, msg):
            if bytes(msg.args_pickle) == b"stall":
                release.wait(5)
            conn.send(messages.Result(msg.call_id, bytes(msg.args_pickle)))

        conn_a, _b, _x, _y = connected_pair(handle_b=serve)
        with pytest.raises(CallTimeout):
            conn_a.call(_call(conn_a, b"stall"), timeout=0.05)
        release.set()
        time.sleep(0.1)  # late reply to the abandoned id lands now
        for i in range(5):
            payload = str(i).encode()
            reply = conn_a.call(_call(conn_a, payload), timeout=5)
            assert reply.result_pickle == payload
        conn_a.close()

    def test_blocking_path_recycles_future_slots(self):
        conn_a, _b, _x, _y = connected_pair(handle_b=_echo)
        for _ in range(5):
            conn_a.call(_call(conn_a), timeout=5)
        assert len(conn_a._pending_free) == 1  # one slot, reused 5 times
        conn_a.close()

    def test_done_callback_after_completion_runs_immediately(self):
        conn_a, _b, _x, _y = connected_pair(handle_b=_echo)
        future = conn_a.call_async(_call(conn_a))
        future.result(5)
        seen = []
        future.add_done_callback(seen.append)
        assert seen == [future]
        conn_a.close()

    def test_callback_exception_is_contained(self):
        conn_a, _b, _x, _y = connected_pair(handle_b=_echo)
        future = conn_a.call_async(_call(conn_a))
        ran = []

        def bad(_future):
            ran.append(1)
            raise RuntimeError("callback bug")

        future.add_done_callback(bad)
        future.add_done_callback(lambda f: ran.append(2))
        assert future.result(5) is not None
        deadline = time.time() + 5
        while time.time() < deadline and len(ran) < 2:
            time.sleep(0.01)
        assert ran == [1, 2]
        assert not conn_a.closed  # the reader survived the bad callback
        conn_a.close()

    def test_cancel_completes_future_and_drops_reply(self):
        release = threading.Event()

        def serve(conn, msg):
            release.wait(5)
            conn.send(messages.Result(msg.call_id, b""))

        conn_a, _b, _x, _y = connected_pair(handle_b=serve)
        future = conn_a.call_async(_call(conn_a))
        assert future.cancel() is True
        assert future.cancel() is False  # already done
        with pytest.raises(CallTimeout):
            future.result(0)
        release.set()
        time.sleep(0.1)
        assert not conn_a.closed
        conn_a.close()

    def test_call_async_on_closed_connection_raises(self):
        conn_a, _b, _x, _y = connected_pair()
        conn_a.close()
        with pytest.raises(CommFailure):
            conn_a.call_async(_call(conn_a))


class TestRemoteFuture:
    """End-to-end futures through Space.invoke_async / repro.async_call."""

    def _spaces(self, request_name):
        import repro
        from tests.helpers import Counter, Echo

        server = repro.Space("srv-futures")
        endpoint = server.add_listener(f"inproc://futures-{request_name}")
        server.serve("counter", Counter())
        server.serve("echo", Echo())
        client = repro.Space("cli-futures")
        return server, client, endpoint

    def test_async_call_returns_value(self, request):
        import repro

        server, client, endpoint = self._spaces(request.node.name)
        with server, client:
            counter = client.import_object(endpoint, "counter")
            futures = [
                repro.async_call(counter.increment, 1) for _ in range(10)
            ]
            values = sorted(f.result(5) for f in futures)
            assert values == list(range(1, 11))

    def test_async_call_raises_remote_exception(self, request):
        import repro

        server, client, endpoint = self._spaces(request.node.name)
        with server, client:
            echo = client.import_object(endpoint, "echo")
            future = repro.async_call(echo.fail, "kapow")
            exc = future.exception(5)
            assert isinstance(exc, repro.RemoteError)
            with pytest.raises(repro.RemoteError, match="kapow"):
                future.result(5)

    def test_result_is_decoded_once_and_cached(self, request):
        import repro

        server, client, endpoint = self._spaces(request.node.name)
        with server, client:
            echo = client.import_object(endpoint, "echo")
            future = repro.async_call(echo.echo, [1, 2, 3])
            first = future.result(5)
            assert first == [1, 2, 3]
            assert future.result(5) is first  # cached, not re-decoded

    def test_async_call_rejects_non_surrogate(self):
        import repro
        from tests.helpers import Counter

        local = Counter()
        with pytest.raises(TypeError):
            repro.async_call(local.increment, 1)
        with pytest.raises(TypeError):
            repro.async_call(print, 1)

    def test_invoke_async_rejects_non_surrogate(self):
        import repro

        with repro.Space("solo-futures") as space:
            with pytest.raises(TypeError):
                space.invoke_async(object(), "method")
