"""Batched collector traffic: CLEAN_BATCH frames, version negotiation,
resurrected entries, and the pipelined dirty prefetch."""

import gc
from types import SimpleNamespace

import repro
from repro.core.netobj import NetObj
from repro.dgc.config import GcConfig
from repro.dgc.daemon import CleanupDaemon

from tests.helpers import settle, wait_until


class Factory(NetObj):
    """Mints fresh network objects so a single reply carries many
    references (exercising both prefetch and batched cleans)."""

    def make(self, count: int):
        return [Token() for _ in range(count)]


class Token(NetObj):
    def ping(self) -> str:
        return "pong"


def _pair(name, client_kwargs=None):
    server = repro.Space(f"srv-{name}")
    endpoint = server.add_listener(f"inproc://gcbatch-{name}")
    server.serve("factory", Factory())
    client = repro.Space(f"cli-{name}", **(client_kwargs or {}))
    return server, client, endpoint


class TestCleanBatching:
    def test_mass_reclamation_uses_batch_frames(self, request):
        server, client, endpoint = _pair(request.node.name)
        with server, client:
            factory = client.import_object(endpoint, "factory")
            tokens = factory.make(40)
            assert [t.ping() for t in tokens] == ["pong"] * 40
            exported = server.stats()["gc"]["exported"]
            assert exported >= 41  # 40 tokens + the factory
            del tokens
            gc.collect()
            assert client.cleanup_daemon.wait_idle(10)
            settle(server, client)
            stats = client.stats()["gc"]
            assert stats["clean_batches_sent"] >= 1
            assert wait_until(
                lambda: server.stats()["gc"]["exported"] == exported - 40
            )

    def test_v2_peer_interop_without_batches(self, request):
        server, client, endpoint = _pair(
            request.node.name, client_kwargs={"protocol_version": 2}
        )
        with server, client:
            factory = client.import_object(endpoint, "factory")
            connection = client.cache.get(endpoint)
            assert connection.version == 2
            tokens = factory.make(20)
            assert [t.ping() for t in tokens] == ["pong"] * 20
            exported = server.stats()["gc"]["exported"]
            del tokens
            gc.collect()
            assert client.cleanup_daemon.wait_idle(10)
            settle(server, client)
            # Everything reclaimed, but strictly over unit CLEAN frames.
            assert client.stats()["gc"]["clean_batches_sent"] == 0
            assert wait_until(
                lambda: server.stats()["gc"]["exported"] == exported - 20
            )

    def test_live_entries_cancel_out_of_batches(self, request):
        """A queue item whose entry is alive again (resurrected or
        never collected) must drop out at begin_clean, even when it
        rides the same drained batch as genuine cleans."""
        server, client, endpoint = _pair(request.node.name)
        with server, client:
            factory = client.import_object(endpoint, "factory")
            tokens = factory.make(10)
            keep = tokens[:3]
            exported = server.stats()["gc"]["exported"]
            del tokens
            gc.collect()
            # Poison the queue with the still-live references; the
            # daemon must claim only the genuinely dead ones.
            for token in keep:
                client.cleanup_daemon.enqueue(token._wirerep)
            assert client.cleanup_daemon.wait_idle(10)
            settle(server, client)
            assert [t.ping() for t in keep] == ["pong"] * 3
            assert wait_until(
                lambda: server.stats()["gc"]["exported"] == exported - 7
            )


class _FakeClient:
    """Scripted DgcClient for deterministic daemon batching tests."""

    def __init__(self, claims):
        self.claims = claims
        self.batches = []
        self.units = []
        self.finished = []

    def attach_daemon(self, daemon):
        pass

    def begin_clean(self, wirerep):
        return self.claims[wirerep]

    def send_clean_batch(self, endpoints, claims):
        self.batches.append((endpoints, list(claims)))

    def send_clean(self, entry, seqno, strong):
        self.units.append((entry, seqno, strong))

    def finish_clean(self, entry, delivered):
        self.finished.append((entry, delivered))


class TestDaemonBatching:
    def _daemon(self, fake):
        return CleanupDaemon(fake, GcConfig(), name="t-gc-batch")

    def test_batch_excludes_cancelled_claims_and_groups_by_owner(self):
        entry_a = SimpleNamespace(endpoints=("e://owner-1",))
        entry_b = SimpleNamespace(endpoints=("e://owner-1",))
        entry_c = SimpleNamespace(endpoints=("e://owner-2",))
        fake = _FakeClient({
            "w-a": (entry_a, 5, False),
            "w-resurrected": None,  # cancelled between enqueue and drain
            "w-b": (entry_b, 9, True),
            "w-c": (entry_c, 2, False),
        })
        daemon = self._daemon(fake)
        try:
            daemon._process_batch(["w-a", "w-resurrected", "w-b", "w-c"])
        finally:
            daemon.stop()
        # Owner 1 got one batch of two; owner 2's singleton stayed a
        # unit clean; the cancelled claim appears nowhere.
        assert fake.batches == [
            (("e://owner-1",), [(entry_a, 5, False), (entry_b, 9, True)])
        ]
        assert fake.units == [(entry_c, 2, False)]
        assert sorted(fake.finished, key=lambda pair: id(pair[0])) == sorted(
            [(entry_a, True), (entry_b, True), (entry_c, True)],
            key=lambda pair: id(pair[0]),
        )

    def test_all_claims_cancelled_sends_nothing(self):
        fake = _FakeClient({"w-1": None, "w-2": None})
        daemon = self._daemon(fake)
        try:
            daemon._process_batch(["w-1", "w-2"])
        finally:
            daemon.stop()
        assert fake.batches == []
        assert fake.units == []
        assert fake.finished == []


class TestDirtyPrefetch:
    def test_multi_ref_reply_pipelines_dirty_calls(self, request):
        server, client, endpoint = _pair(request.node.name)
        with server, client:
            factory = client.import_object(endpoint, "factory")
            before = client.stats()["gc"]["dirty_calls_sent"]
            tokens = factory.make(25)
            after = client.stats()["gc"]["dirty_calls_sent"]
            # One dirty call per new reference — the prefetch must not
            # duplicate the sequential decode's registration.
            assert after - before == 25
            assert [t.ping() for t in tokens] == ["pong"] * 25
            assert client.stats()["gc"]["ref_entries"] >= 25
