"""The work-stealing dispatcher plane and its Space-level knobs."""

from __future__ import annotations

import threading
import time

from repro import Space
from repro.core.netobj import NetObj
from repro.rpc.dispatcher import Dispatcher


class Echo(NetObj):
    def echo(self, value):
        return value


def _wait(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestShardedDispatch:
    def test_sharded_submits_all_run(self):
        dispatcher = Dispatcher("t-shard", shards=4)
        done = threading.Semaphore(0)
        try:
            for i in range(40):
                dispatcher.submit(done.release, shard=i % 4)
            for _ in range(40):
                assert done.acquire(timeout=5)
            stats = dispatcher.stats()
            assert stats["shard_submits"] == 40
            assert stats["queued"] == 0
        finally:
            dispatcher.shutdown()

    def test_unsharded_pool_ignores_shard_hint(self):
        dispatcher = Dispatcher("t-flat")  # shards=0
        done = threading.Event()
        try:
            dispatcher.submit(done.set, shard=7)
            assert done.wait(5)
            assert dispatcher.stats()["shard_submits"] == 0
        finally:
            dispatcher.shutdown()

    def test_workers_steal_from_other_shards(self):
        """A burst on one shard fans out: workers whose home deque is
        empty take from the loaded one instead of idling."""
        dispatcher = Dispatcher("t-steal", shards=2)
        done = threading.Semaphore(0)
        try:
            for _ in range(20):
                dispatcher.submit(done.release, shard=0)
            for _ in range(20):
                assert done.acquire(timeout=5)
            assert dispatcher.stats()["stolen_tasks"] >= 1
        finally:
            dispatcher.shutdown()

    def test_saturated_submits_counts_capped_spawns(self):
        dispatcher = Dispatcher("t-sat", max_workers=2)
        gate = threading.Event()
        done = threading.Semaphore(0)

        def task():
            gate.wait(10)
            done.release()

        try:
            for _ in range(4):
                dispatcher.submit(task)
            assert _wait(lambda: dispatcher.stats()["workers"] == 2)
            # Two tasks run, two queued behind the cap.
            assert dispatcher.stats()["saturated_submits"] == 2
            gate.set()
            for _ in range(4):
                assert done.acquire(timeout=5)
        finally:
            gate.set()
            dispatcher.shutdown()

    def test_idle_timeout_retires_workers(self):
        dispatcher = Dispatcher("t-idle", idle_timeout=0.1)
        done = threading.Event()
        try:
            dispatcher.submit(done.set)
            assert done.wait(5)
            assert _wait(lambda: dispatcher.stats()["workers"] == 0)
        finally:
            dispatcher.shutdown()

    def test_no_task_stranded_by_sharded_burst(self):
        """Stress the token scheme: mixed sharded/unsharded submits
        from several threads, every task must run exactly once."""
        dispatcher = Dispatcher("t-mix", shards=3)
        counter = []
        lock = threading.Lock()

        def bump():
            with lock:
                counter.append(None)

        def producer(seed):
            for i in range(50):
                shard = (seed + i) % 3 if i % 2 else None
                dispatcher.submit(bump, shard=shard)

        try:
            threads = [
                threading.Thread(target=producer, args=(s,)) for s in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert _wait(lambda: len(counter) == 200)
            assert dispatcher.stats()["queued"] == 0
        finally:
            dispatcher.shutdown()


class TestSpaceDispatcherConfig:
    def test_space_plumbs_dispatcher_knobs(self):
        with Space("knobs", dispatcher_max_workers=7,
                   dispatcher_idle_timeout=0.25) as space:
            assert space.dispatcher.max_workers == 7
            assert space.dispatcher.idle_timeout == 0.25

    def test_gc_stats_exposes_saturated_submits(self):
        with Space("sat-stats") as space:
            assert space.gc_stats()["saturated_submits"] == 0
            assert space.stats()["dispatcher"]["saturated_submits"] == 0

    def test_requests_ride_shard_deques(self):
        """End to end: requests arriving on a sharded space land in the
        per-shard deques (shard_submits moves)."""
        with Space("rsd-srv", listen=["tcp://127.0.0.1:0"],
                   reactor_shards=2, shm="off") as server, \
                Space("rsd-cli", shm="off") as client:
            server.serve("echo", Echo())
            echo = client.import_object(server.endpoints[0], "echo")
            for i in range(5):
                assert echo.echo(i) == i
            assert server.stats()["dispatcher"]["shard_submits"] >= 5

    def test_saturated_space_still_serves(self):
        """A Space capped to very few workers degrades to queueing,
        never to dropping: every call completes."""
        with Space("tiny-srv", listen=["tcp://127.0.0.1:0"],
                   dispatcher_max_workers=2, shm="off") as server, \
                Space("tiny-cli", shm="off") as client:
            server.serve("echo", Echo())
            echo = client.import_object(server.endpoints[0], "echo")
            results = []
            lock = threading.Lock()

            def caller(i):
                value = echo.echo(i)
                with lock:
                    results.append(value)

            threads = [
                threading.Thread(target=caller, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert sorted(results) == list(range(8))
