"""Unit tests for the explicit local heap substrate."""

import pytest

from repro.localheap import Heap, RemoteRef, reachable_from


class TestReachableFrom:
    def test_empty(self):
        assert reachable_from([], lambda n: []) == set()

    def test_chain(self):
        graph = {1: [2], 2: [3], 3: []}
        assert reachable_from([1], graph.__getitem__) == {1, 2, 3}

    def test_cycle_terminates(self):
        graph = {1: [2], 2: [1]}
        assert reachable_from([1], graph.__getitem__) == {1, 2}

    def test_deep_chain_no_recursion_error(self):
        n = 100_000
        graph = {i: [i + 1] for i in range(n)}
        graph[n] = []
        assert len(reachable_from([0], graph.__getitem__)) == n + 1


class TestHeap:
    def test_allocate_and_collect_garbage(self):
        heap = Heap()
        root = heap.allocate(root=True)
        child = heap.allocate()
        orphan = heap.allocate()
        heap.set_field(root, 0, child)
        dead = heap.collect()
        assert dead == {orphan}
        assert child in heap
        assert root in heap

    def test_root_removal_frees_subtree(self):
        heap = Heap()
        root = heap.allocate(root=True)
        child = heap.allocate()
        heap.set_field(root, 0, child)
        heap.remove_root(root)
        assert heap.collect() == {root, child}
        assert len(heap) == 0

    def test_cycles_collected(self):
        heap = Heap()
        a = heap.allocate()
        b = heap.allocate()
        heap.set_field(a, 0, b)
        heap.set_field(b, 0, a)
        assert heap.collect() == {a, b}

    def test_field_overwrite_disconnects(self):
        heap = Heap()
        root = heap.allocate(root=True)
        old = heap.allocate()
        heap.set_field(root, 0, old)
        heap.set_field(root, 0, None)
        assert heap.collect() == {old}

    def test_remote_refs_reachability(self):
        heap = Heap()
        root = heap.allocate(root=True)
        mid = heap.allocate()
        heap.set_field(root, 0, mid)
        heap.set_field(mid, 0, RemoteRef(7))
        heap.set_field(root, 1, RemoteRef(3))
        orphan = heap.allocate()
        heap.set_field(orphan, 0, RemoteRef(9))
        assert heap.reachable_remote_refs() == {3, 7}
        heap.collect()
        assert heap.reachable_remote_refs() == {3, 7}

    def test_remote_ref_dies_with_holder(self):
        heap = Heap()
        root = heap.allocate(root=True)
        holder = heap.allocate()
        heap.set_field(root, 0, holder)
        heap.set_field(holder, 0, RemoteRef(1))
        assert heap.reachable_remote_refs() == {1}
        heap.set_field(root, 0, None)
        assert heap.reachable_remote_refs() == set()

    def test_dangling_field_rejected(self):
        heap = Heap()
        obj = heap.allocate(root=True)
        with pytest.raises(KeyError):
            heap.set_field(obj, 0, 999)

    def test_stats(self):
        heap = Heap()
        heap.allocate()
        heap.collect()
        assert heap.collections == 1
        assert heap.collected_total == 1

    def test_reachability_matches_networkx(self):
        """Cross-check the mark phase against networkx descendants."""
        import random

        import networkx as nx

        rng = random.Random(42)
        heap = Heap()
        ids = [heap.allocate(nfields=3) for _ in range(50)]
        graph = nx.DiGraph()
        graph.add_nodes_from(ids)
        for obj in ids:
            for slot in range(3):
                if rng.random() < 0.4:
                    target = rng.choice(ids)
                    heap.set_field(obj, slot, target)
                    graph.add_edge(obj, target)
        roots = set(rng.sample(ids, 5))
        for root in roots:
            heap.add_root(root)
        expected = set(roots)
        for root in roots:
            expected |= nx.descendants(graph, root)
        assert heap.reachable_objects() == expected
