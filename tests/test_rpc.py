"""Unit tests for the RPC layer: messages, dispatcher, connections, cache."""

import queue
import threading
import time

import pytest

from repro.errors import CallTimeout, CommFailure, ProtocolError
from repro.rpc import messages
from repro.rpc.cache import ConnectionCache
from repro.rpc.connection import Connection
from repro.rpc.dispatcher import Dispatcher
from repro.transport.inprocess import channel_pair
from repro.wire.ids import fresh_space_id
from repro.wire.wirerep import WireRep


class TestMessageCodecs:
    def examples(self):
        rep = WireRep(fresh_space_id("owner"), 7)
        return [
            messages.Hello(fresh_space_id("me"), "me"),
            messages.HelloAck(fresh_space_id("you"), "you"),
            messages.Bye(),
            messages.Call(3, rep, "deposit", b"\x00\x01\x02"),
            messages.Call(4, rep, "", b""),
            messages.Result(3, b"\x07"),
            messages.Fault(3, "ValueError", "bad amount", "Traceback ..."),
            messages.Dirty(9, rep, 12),
            messages.DirtyAck(9, True),
            messages.DirtyAck(9, False, "no such object"),
            messages.Clean(10, rep, 13, strong=False),
            messages.Clean(11, rep, 14, strong=True),
            messages.CleanAck(10),
            messages.CopyAck(rep, 55),
            messages.Ping(77),
            messages.PingAck(77),
            messages.CleanBatch(12, ((rep, 15, False), (rep, 16, True))),
            messages.CleanBatch(13, ()),
            messages.CleanBatchAck(12, 2),
        ]

    def test_round_trip_all(self):
        for message in self.examples():
            decoded = messages.decode(message.encode())
            assert decoded == message, message

    def test_round_trip_via_memoryview(self):
        # The receive path decodes memoryview slices of the frame
        # buffer; every codec must accept them like bytes.
        for message in self.examples():
            decoded = messages.decode(memoryview(message.encode()))
            assert decoded == message, message

    def test_reply_tags_have_call_ids(self):
        for message in self.examples():
            if message.tag in messages.REPLY_TAGS:
                assert hasattr(message, "call_id")

    def test_empty_frame_rejected(self):
        with pytest.raises(ProtocolError):
            messages.decode(b"")

    def test_unknown_tag_rejected(self):
        with pytest.raises(ProtocolError):
            messages.decode(b"\xee")

    def test_hello_carries_nickname(self):
        sid = fresh_space_id("alpha")
        decoded = messages.decode(messages.Hello(sid, "alpha").encode())
        assert decoded.space_id == sid
        assert decoded.space_id.nickname == "alpha"


class TestDispatcher:
    def test_runs_tasks(self):
        dispatcher = Dispatcher()
        done = threading.Event()
        dispatcher.submit(done.set)
        assert done.wait(5)
        dispatcher.shutdown()

    def test_blocked_task_does_not_stall_others(self):
        dispatcher = Dispatcher()
        release = threading.Event()
        second_ran = threading.Event()
        dispatcher.submit(lambda: release.wait(10))
        dispatcher.submit(second_ran.set)
        assert second_ran.wait(5)
        release.set()
        dispatcher.shutdown()

    def test_many_concurrent_blockers(self):
        dispatcher = Dispatcher(max_workers=64)
        release = threading.Event()
        started = []
        lock = threading.Lock()

        def blocker():
            with lock:
                started.append(1)
            release.wait(10)

        for _ in range(32):
            dispatcher.submit(blocker)
        deadline = time.time() + 5
        while time.time() < deadline and len(started) < 32:
            time.sleep(0.01)
        assert len(started) == 32
        release.set()
        dispatcher.shutdown()

    def test_shutdown_drops_new_tasks(self):
        dispatcher = Dispatcher()
        dispatcher.shutdown()
        ran = threading.Event()
        dispatcher.submit(ran.set)
        assert not ran.wait(0.2)

    def test_task_exception_contained(self, capsys):
        dispatcher = Dispatcher()
        done = threading.Event()
        dispatcher.submit(lambda: 1 / 0)
        dispatcher.submit(done.set)
        assert done.wait(5)
        dispatcher.shutdown()


class _ScriptedQueue:
    """Wraps a dispatcher's task queue so a test can park the lone
    worker inside its idle-timeout window and release it on cue —
    making the submit-vs-retire race deterministic instead of a
    one-in-a-million timing accident."""

    def __init__(self, real, park_on_call, parked, fire_timeout):
        self._real = real
        self._park_on_call = park_on_call
        self._parked = parked
        self._fire_timeout = fire_timeout
        self._calls = 0

    def put(self, item):
        self._real.put(item)

    def empty(self):
        return self._real.empty()

    def get_nowait(self):
        # Deny the fast path so every dequeue goes through the scripted
        # ``get`` below and the call numbering stays deterministic.
        raise queue.Empty

    def get(self, timeout=None):
        self._calls += 1
        if self._calls == self._park_on_call:
            self._parked.set()
            self._fire_timeout.wait(5)
            raise queue.Empty
        return self._real.get(timeout=timeout)


class _StealScript:
    """Task-queue wrapper that routes every dequeue to the first worker
    thread it sees (so that worker "steals" tasks whose submit spawned
    someone else), while the second worker parks on ``b_release`` and
    then simulates an idle timeout without ever touching the queue."""

    def __init__(self, real):
        self._real = real
        self._first = None
        self._first_lock = threading.Lock()
        self.b_parked = threading.Event()
        self.b_release = threading.Event()

    def put(self, item):
        self._real.put(item)

    def empty(self):
        return self._real.empty()

    def get_nowait(self):
        # Deny the fast path so the thread routing in ``get`` sees
        # every dequeue.
        raise queue.Empty

    def get(self, timeout=None):
        me = threading.current_thread()
        with self._first_lock:
            if self._first is None:
                self._first = me
            first = self._first is me
        if first:
            return self._real.get(timeout=timeout)
        self.b_parked.set()
        self.b_release.wait(10)
        raise queue.Empty


class TestDispatcherSpawnRace:
    """The submit/idle-timeout race: ``submit`` sees an idle worker and
    skips spawning, but that worker times out concurrently.  Both
    interleavings must leave someone to run the task."""

    def _park_lone_worker(self, dispatcher):
        parked = threading.Event()
        fire_timeout = threading.Event()
        scripted = _ScriptedQueue(
            dispatcher._tasks, park_on_call=2,
            parked=parked, fire_timeout=fire_timeout,
        )
        dispatcher._tasks = scripted
        primed = threading.Event()
        dispatcher.submit(primed.set)  # spawns the worker (get #1)
        assert primed.wait(5)
        assert parked.wait(5)  # worker is now inside get #2
        return scripted, fire_timeout

    def test_task_enqueued_before_worker_retires_still_runs(self):
        # Window 1: the task is on the queue by the time the timed-out
        # worker reaches the lock, so the worker must notice and stay.
        dispatcher = Dispatcher(idle_timeout=5.0)
        _scripted, fire_timeout = self._park_lone_worker(dispatcher)
        ran = threading.Event()
        dispatcher.submit(ran.set)  # sees idle == 1, does not spawn
        fire_timeout.set()  # worker's get raises Empty *after* the put
        assert ran.wait(5), "task stranded: idle worker retired past it"
        dispatcher.shutdown()

    def test_task_after_all_workers_retired_spawns_fresh(self):
        # Window 2 of the old design (worker retires between submit's
        # idle check and its put) is gone: the claim and the put are
        # one atomic step under the pool lock.  What remains is the
        # plain sequential case — a fully retired pool must spawn.
        dispatcher = Dispatcher(idle_timeout=0.05)
        primed = threading.Event()
        dispatcher.submit(primed.set)
        assert primed.wait(5)
        deadline = time.time() + 5
        while time.time() < deadline and dispatcher._workers > 0:
            time.sleep(0.01)
        assert dispatcher._workers == 0, "worker failed to idle out"
        ran = threading.Event()
        dispatcher.submit(ran.set)
        assert ran.wait(5), "task stranded: no worker and none spawned"
        dispatcher.shutdown()

    def test_stolen_spawn_task_does_not_leak_idle_count(self):
        # Regression: a task that triggered a spawn is dequeued ("stolen")
        # by a pre-existing worker that had just gone idle, while the
        # freshly spawned worker parks without ever running anything and
        # then idles out.  The old per-thread ``counted`` flag leaked a
        # phantom idle worker here: with all workers retired, a later
        # submit "claimed" the phantom instead of spawning, stranding
        # its task forever.
        dispatcher = Dispatcher(idle_timeout=0.05)
        real = dispatcher._tasks
        script = _StealScript(real)
        dispatcher._tasks = script
        release = threading.Event()
        stolen_ran = threading.Event()
        dispatcher.submit(lambda: release.wait(10))  # spawns worker A
        dispatcher.submit(stolen_ran.set)  # spawn-destined: spawns worker B
        release.set()  # A finishes, steals the spawn-destined task
        assert stolen_ran.wait(5)
        assert script.b_parked.wait(5)  # B is parked, never ran a task
        script.b_release.set()  # B "times out" and retires
        deadline = time.time() + 5
        while time.time() < deadline and dispatcher._workers > 0:
            time.sleep(0.01)
        assert dispatcher._workers == 0, "workers failed to idle out"
        dispatcher._tasks = real
        ran = threading.Event()
        dispatcher.submit(ran.set)
        assert ran.wait(5), "task stranded: submit claimed a phantom idle worker"
        dispatcher.shutdown()

    def test_burst_submit_spawns_one_worker_per_task(self):
        # A burst of submits must not queue behind the one parked idle
        # worker: the submitter claims it once, then spawns for every
        # further task while the first is still waking up.
        dispatcher = Dispatcher()
        primed = threading.Event()
        dispatcher.submit(primed.set)  # leaves exactly one idle worker
        assert primed.wait(5)
        release = threading.Event()
        started = []
        lock = threading.Lock()

        def blocker():
            with lock:
                started.append(1)
            release.wait(10)

        for _ in range(8):
            dispatcher.submit(blocker)
        deadline = time.time() + 5
        while time.time() < deadline and len(started) < 8:
            time.sleep(0.01)
        assert len(started) == 8, f"only {len(started)}/8 tasks running"
        release.set()
        dispatcher.shutdown()


def connected_pair(handle_a=None, handle_b=None, on_close_a=None, on_close_b=None):
    """Two handshaken Connections over an in-process channel pair."""
    chan_a, chan_b = channel_pair()
    id_a = fresh_space_id("a")
    id_b = fresh_space_id("b")
    dispatcher = Dispatcher()
    default = lambda conn, msg: None  # noqa: E731
    result = {}

    def make_b():
        result["b"] = Connection(
            chan_b, id_b, dispatcher, handle_b or default,
            on_close=on_close_b, outbound=False,
        )

    thread = threading.Thread(target=make_b, daemon=True)
    thread.start()
    conn_a = Connection(
        chan_a, id_a, dispatcher, handle_a or default,
        on_close=on_close_a, outbound=True,
    )
    thread.join(timeout=5)
    assert "b" in result
    return conn_a, result["b"], id_a, id_b


class TestConnection:
    def test_handshake_exchanges_identities(self):
        conn_a, conn_b, id_a, id_b = connected_pair()
        assert conn_a.peer_id == id_b
        assert conn_b.peer_id == id_a
        conn_a.close()

    def test_call_and_reply(self):
        def serve(conn, msg):
            assert isinstance(msg, messages.Call)
            # args_pickle arrives as a zero-copy memoryview slice.
            conn.send(messages.Result(msg.call_id, bytes(msg.args_pickle) * 2))

        conn_a, _conn_b, _a, _b = connected_pair(handle_b=serve)
        rep = WireRep(fresh_space_id(), 1)
        reply = conn_a.call(messages.Call(conn_a.next_call_id(), rep, "m", b"xy"))
        assert isinstance(reply, messages.Result)
        assert reply.result_pickle == b"xyxy"
        conn_a.close()

    def test_concurrent_calls_match_replies(self):
        def serve(conn, msg):
            time.sleep(0.01 if msg.args_pickle == b"slow" else 0)
            conn.send(messages.Result(msg.call_id, msg.args_pickle))

        conn_a, _b, _x, _y = connected_pair(handle_b=serve)
        rep = WireRep(fresh_space_id(), 1)
        outputs = {}

        def invoke(tagname):
            reply = conn_a.call(
                messages.Call(conn_a.next_call_id(), rep, "m", tagname)
            )
            outputs[tagname] = reply.result_pickle

        threads = [
            threading.Thread(target=invoke, args=(name,))
            for name in (b"slow", b"fast1", b"fast2")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert outputs == {b"slow": b"slow", b"fast1": b"fast1", b"fast2": b"fast2"}
        conn_a.close()

    def test_call_timeout(self):
        conn_a, _b, _x, _y = connected_pair()  # peer never replies
        rep = WireRep(fresh_space_id(), 1)
        with pytest.raises(CallTimeout):
            conn_a.call(
                messages.Call(conn_a.next_call_id(), rep, "m", b""),
                timeout=0.1,
            )
        conn_a.close()

    def test_peer_close_fails_pending_calls(self):
        conn_a, conn_b, _x, _y = connected_pair()
        rep = WireRep(fresh_space_id(), 1)
        failures = []

        def invoke():
            try:
                conn_a.call(messages.Call(conn_a.next_call_id(), rep, "m", b""))
            except CommFailure as exc:
                failures.append(exc)

        thread = threading.Thread(target=invoke, daemon=True)
        thread.start()
        time.sleep(0.05)
        conn_b.close()
        thread.join(timeout=5)
        assert len(failures) == 1

    def test_on_close_called_once(self):
        closes = []
        conn_a, conn_b, _x, _y = connected_pair(on_close_a=closes.append)
        conn_b.close()
        time.sleep(0.1)
        conn_a.close()
        assert closes == [conn_a]

    def test_send_after_close(self):
        conn_a, _b, _x, _y = connected_pair()
        conn_a.close()
        with pytest.raises(CommFailure):
            conn_a.send(messages.Ping(1))

    def test_undecodable_frame_drops_connection(self):
        chan_a, chan_b = channel_pair()
        dispatcher = Dispatcher()
        holder = {}

        def make_b():
            holder["b"] = Connection(
                chan_b, fresh_space_id("b"), dispatcher,
                lambda c, m: None, outbound=False,
            )

        thread = threading.Thread(target=make_b, daemon=True)
        thread.start()
        _conn_a = Connection(  # held so the reader side stays alive
            chan_a, fresh_space_id("a"), dispatcher,
            lambda c, m: None, outbound=True,
        )
        thread.join(timeout=5)
        chan_a.send(b"\xee garbage")
        deadline = time.time() + 5
        while time.time() < deadline and not holder["b"].closed:
            time.sleep(0.01)
        assert holder["b"].closed


class _CountingChannel:
    """Channel wrapper recording every frame buffer by identity, to
    assert the send path's copy discipline at the Connection layer."""

    def __init__(self, inner):
        self._inner = inner
        self.framed_buffers = []

    def send(self, payload):
        self._inner.send(payload)

    def send_framed(self, frame):
        self.framed_buffers.append(frame)
        # Mimic the default Channel.send_framed: one copy, header off.
        self._inner.send(bytes(memoryview(frame)[4:]))

    def recv(self, timeout=None):
        return self._inner.recv(timeout=timeout)

    def flush(self, timeout=None):
        return self._inner.flush(timeout)

    def half_close(self):
        self._inner.half_close()

    def close(self):
        self._inner.close()

    @property
    def closed(self):
        return self._inner.closed


class TestSendCopyDiscipline:
    def test_steady_state_sends_reuse_one_pooled_buffer(self):
        """Every message must travel in the connection's pooled frame
        buffer: after warmup, N sends hand the channel the same
        bytearray N times — zero buffer allocations per message."""
        chan_a, chan_b = channel_pair()
        counting = _CountingChannel(chan_a)
        dispatcher = Dispatcher()
        holder = {}

        def make_b():
            holder["b"] = Connection(
                chan_b, fresh_space_id("b"), dispatcher,
                lambda c, m: None, outbound=False,
            )

        thread = threading.Thread(target=make_b, daemon=True)
        thread.start()
        conn_a = Connection(
            counting, fresh_space_id("a"), dispatcher,
            lambda c, m: None, outbound=True,
        )
        thread.join(timeout=5)

        counting.framed_buffers.clear()  # drop the handshake frames
        for i in range(10):
            conn_a.send(messages.Ping(i))
        assert len(counting.framed_buffers) == 10
        first = counting.framed_buffers[0]
        assert all(frame is first for frame in counting.framed_buffers)
        assert isinstance(first, bytearray)
        conn_a.close()


class TestConnectionCache:
    def make_cache(self):
        created = []

        class FakeConn:
            closing = False

            def __init__(self):
                self.closed = False

            def close(self):
                self.closed = True

        def connect(endpoint):
            conn = FakeConn()
            created.append((endpoint, conn))
            return conn

        return ConnectionCache(connect), created

    def test_reuses_connection(self):
        cache, created = self.make_cache()
        first = cache.get("tcp://x:1")
        second = cache.get("tcp://x:1")
        assert first is second
        assert len(created) == 1

    def test_distinct_endpoints_distinct_connections(self):
        cache, created = self.make_cache()
        assert cache.get("tcp://x:1") is not cache.get("tcp://y:2")
        assert len(created) == 2

    def test_closed_connection_redialed(self):
        cache, created = self.make_cache()
        first = cache.get("tcp://x:1")
        first.closed = True
        second = cache.get("tcp://x:1")
        assert second is not first
        assert len(created) == 2

    def test_evict(self):
        cache, _created = self.make_cache()
        conn = cache.get("tcp://x:1")
        cache.evict(conn)
        assert cache.peek("tcp://x:1") is None

    def test_close_all_then_get_raises(self):
        from repro.errors import SpaceShutdownError

        cache, created = self.make_cache()
        conn = cache.get("tcp://x:1")
        cache.close_all()
        assert conn.closed
        with pytest.raises(SpaceShutdownError):
            cache.get("tcp://x:1")

    def test_evict_drops_endpoint_lock(self):
        cache, _created = self.make_cache()
        conn = cache.get("tcp://x:1")
        assert "tcp://x:1" in cache._locks
        cache.evict(conn)
        assert "tcp://x:1" not in cache._locks

    def test_endpoint_churn_bounds_lock_table(self):
        # A long-lived space contacting many transient peers must not
        # accumulate one lock entry per endpoint ever seen.
        cache, _created = self.make_cache()
        for i in range(200):
            conn = cache.get(f"tcp://peer-{i}:1")
            cache.evict(conn)
        assert len(cache) == 0
        assert len(cache._locks) == 0

    def test_failed_dials_do_not_grow_lock_table(self):
        def connect(endpoint):
            raise CommFailure("unreachable")

        cache = ConnectionCache(connect)
        for i in range(200):
            with pytest.raises(CommFailure):
                cache.get(f"tcp://down-{i}:1")
        assert len(cache._locks) == 0

    def test_close_all_clears_locks(self):
        cache, _created = self.make_cache()
        cache.get("tcp://x:1")
        cache.get("tcp://y:2")
        cache.close_all()
        assert len(cache._locks) == 0

    def test_connection_closed_during_dial_not_cached(self):
        """A connection that dies between handshake and cache insert
        has already run its on_close hook — eviction can never fire
        for it, so caching it would wedge the endpoint behind a dead
        entry that only a second dial-and-race could clear."""

        class FakeConn:
            closing = False

            def __init__(self):
                self.closed = True  # died before the cache saw it

            def close(self):
                self.closed = True

        cache = ConnectionCache(lambda endpoint: FakeConn())
        with pytest.raises(CommFailure):
            cache.get("tcp://x:1")
        assert cache.peek("tcp://x:1") is None
        assert len(cache._locks) == 0  # endpoint not wedged
        # The endpoint stays dialable: a later successful dial caches.

        class LiveConn:
            closed = False
            closing = False

            def close(self):
                self.closed = True

        cache._connect = lambda endpoint: LiveConn()
        assert cache.get("tcp://x:1") is cache.get("tcp://x:1")

    def test_concurrent_get_single_dial(self):
        dialing = threading.Event()
        proceed = threading.Event()
        created = []

        class FakeConn:
            closed = False
            closing = False

            def close(self):
                self.closed = True

        def connect(endpoint):
            dialing.set()
            proceed.wait(5)
            conn = FakeConn()
            created.append(conn)
            return conn

        cache = ConnectionCache(connect)
        results = []
        threads = [
            threading.Thread(target=lambda: results.append(cache.get("e://1")))
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        assert dialing.wait(5)
        proceed.set()
        for t in threads:
            t.join(timeout=5)
        assert len(created) == 1
        assert all(r is results[0] for r in results)


class TestHandshakeEdges:
    def test_version_below_floor_rejected(self):
        from repro.wire.varint import write_uvarint

        chan_a, chan_b = channel_pair()
        dispatcher = Dispatcher()
        # Hand-craft a HELLO announcing an ancient protocol version.
        sid = fresh_space_id("old-peer")
        frame = bytearray([0x01])
        write_uvarint(frame, 1)
        frame += sid.to_bytes()
        write_uvarint(frame, 0)  # empty nickname
        chan_a.send(bytes(frame))
        with pytest.raises(ProtocolError):
            Connection(
                chan_b, fresh_space_id("b"), dispatcher,
                lambda c, m: None, outbound=False,
            )

    def test_newer_peer_negotiates_down(self):
        from repro.wire import protocol
        from repro.wire.varint import write_uvarint

        chan_a, chan_b = channel_pair()
        dispatcher = Dispatcher()
        # A hypothetical future peer announces a higher version; the
        # acceptor should agree on its own maximum, not reject.
        sid = fresh_space_id("future-peer")
        frame = bytearray([0x01])
        write_uvarint(frame, protocol.PROTOCOL_VERSION + 7)
        frame += sid.to_bytes()
        write_uvarint(frame, 0)  # empty nickname
        chan_a.send(bytes(frame))
        conn = Connection(
            chan_b, fresh_space_id("b"), dispatcher,
            lambda c, m: None, outbound=False,
        )
        try:
            assert conn.version == protocol.PROTOCOL_VERSION
        finally:
            conn.close()

    @staticmethod
    def _old_peer_frame(tag, sid, version):
        """A HELLO/HELLO_ACK exactly as a pre-negotiation peer sends it:
        legacy version field only, no trailing max_version extension."""
        from repro.wire.varint import write_uvarint

        frame = bytearray([tag])
        write_uvarint(frame, version)
        frame += sid.to_bytes()
        write_uvarint(frame, 0)  # empty nickname
        return bytes(frame)

    def test_dial_to_genuine_v2_peer_negotiates_down(self):
        # A *pre-negotiation* v2 acceptor acks with its own version (no
        # trailing extension) and then closes unless the dialer's legacy
        # version field equals its own exactly.  Our HELLO must pass
        # that equality gate, and we must settle on version 2.
        from repro.wire import protocol

        chan_a, chan_b = channel_pair()
        dispatcher = Dispatcher()
        sid = fresh_space_id("old-acceptor")
        outcome = {}

        def old_acceptor():
            frame = chan_a.recv(timeout=5)
            hello = messages.decode(memoryview(frame))
            chan_a.send(self._old_peer_frame(0x02, sid, 2))
            # The legacy strict-equality check reads the legacy field
            # and never sees the trailing extension.
            outcome["accepted"] = hello.version == 2

        thread = threading.Thread(target=old_acceptor, daemon=True)
        thread.start()
        conn = Connection(
            chan_b, fresh_space_id("b"), dispatcher,
            lambda c, m: None, outbound=True,
        )
        thread.join(timeout=5)
        try:
            assert conn.version == 2
            assert outcome.get("accepted"), \
                "legacy acceptor would reject our HELLO and close"
            assert protocol.PROTOCOL_VERSION > 2  # the test is meaningful
        finally:
            conn.close()

    def test_accept_from_genuine_v2_peer_acks_legacy_version(self):
        chan_a, chan_b = channel_pair()
        dispatcher = Dispatcher()
        sid = fresh_space_id("old-dialer")
        chan_a.send(self._old_peer_frame(0x01, sid, 2))
        conn = Connection(
            chan_b, fresh_space_id("b"), dispatcher,
            lambda c, m: None, outbound=False,
        )
        try:
            assert conn.version == 2
            ack = messages.decode(memoryview(chan_a.recv(timeout=5)))
            assert isinstance(ack, messages.HelloAck)
            # What the old dialer's strict equality check reads.
            assert ack.version == 2
        finally:
            conn.close()

    def test_below_floor_rejection_still_acks(self):
        # The rejected dialer must get a reply before the close, so it
        # can fail fast with a version error instead of a recv timeout.
        chan_a, chan_b = channel_pair()
        dispatcher = Dispatcher()
        sid = fresh_space_id("ancient")
        chan_a.send(self._old_peer_frame(0x01, sid, 1))
        with pytest.raises(ProtocolError):
            Connection(
                chan_b, fresh_space_id("b"), dispatcher,
                lambda c, m: None, outbound=False,
            )
        frame = chan_a.recv(timeout=5)
        assert frame is not None, "acceptor closed without replying"
        ack = messages.decode(memoryview(frame))
        assert isinstance(ack, messages.HelloAck)
        assert ack.max_version == 1

    def test_dial_rejected_by_below_floor_peer_fails_fast(self):
        chan_a, chan_b = channel_pair()
        dispatcher = Dispatcher()
        sid = fresh_space_id("ancient")

        def old_acceptor():
            chan_a.recv(timeout=5)
            chan_a.send(self._old_peer_frame(0x02, sid, 1))

        threading.Thread(target=old_acceptor, daemon=True).start()
        with pytest.raises(ProtocolError):
            Connection(
                chan_b, fresh_space_id("b"), dispatcher,
                lambda c, m: None, outbound=True,
            )

    def test_garbage_during_handshake_rejected(self):
        chan_a, chan_b = channel_pair()
        dispatcher = Dispatcher()
        chan_a.send(b"\xff not a hello")
        with pytest.raises((ProtocolError, Exception)):
            Connection(
                chan_b, fresh_space_id("b"), dispatcher,
                lambda c, m: None, outbound=False,
            )

    def test_wrong_message_type_during_handshake(self):
        chan_a, chan_b = channel_pair()
        dispatcher = Dispatcher()
        chan_a.send(messages.Ping(1).encode())
        with pytest.raises(ProtocolError):
            Connection(
                chan_b, fresh_space_id("b"), dispatcher,
                lambda c, m: None, outbound=False,
            )

    def test_peer_disappears_during_handshake(self):
        from repro.errors import CommFailure as CF

        chan_a, chan_b = channel_pair()
        dispatcher = Dispatcher()
        chan_a.close()
        with pytest.raises(CF):
            Connection(
                chan_b, fresh_space_id("b"), dispatcher,
                lambda c, m: None, outbound=False,
            )
