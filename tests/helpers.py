"""Shared fixtures and interfaces for the integration tests."""

from __future__ import annotations

import gc
import time
from typing import List

from repro import NetObj


class Counter(NetObj):
    """Minimal stateful network object."""

    def __init__(self, start: int = 0):
        self.n = start

    def increment(self, by: int = 1) -> int:
        self.n += by
        return self.n

    def value(self) -> int:
        return self.n


class Echo(NetObj):
    def echo(self, value):
        return value

    def fail(self, message: str):
        raise ValueError(message)


class Bank(NetObj):
    """Interface: clients may register only this, not the impl."""

    def deposit(self, account: str, amount: int) -> int:
        raise NotImplementedError

    def balance(self, account: str) -> int:
        raise NotImplementedError


class BankImpl(Bank):
    def __init__(self):
        self.accounts = {}

    def deposit(self, account: str, amount: int) -> int:
        self.accounts[account] = self.accounts.get(account, 0) + amount
        return self.accounts[account]

    def balance(self, account: str) -> int:
        return self.accounts.get(account, 0)

    def audit(self) -> dict:
        """Impl-only method, not part of the Bank interface."""
        return dict(self.accounts)


class Registry(NetObj):
    """Holds references handed to it — a remote reference sink."""

    def __init__(self):
        self.held: List = []

    def hold(self, ref) -> int:
        self.held.append(ref)
        return len(self.held)

    def fetch(self, index: int):
        return self.held[index]

    def drop_all(self) -> int:
        count = len(self.held)
        self.held.clear()
        gc.collect()
        return count

    def poke(self, index: int):
        """Invoke through a held reference (third-party use)."""
        return self.held[index].value()


def settle(*spaces, rounds: int = 10, pause: float = 0.02) -> None:
    """Give daemons and in-flight GC traffic time to quiesce."""
    for _ in range(rounds):
        gc.collect()
        for space in spaces:
            space.cleanup_daemon.wait_idle(timeout=1)
        time.sleep(pause)


def wait_until(predicate, timeout: float = 5.0, pause: float = 0.01) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        gc.collect()
        time.sleep(pause)
    return predicate()


def handshake_idle_socket(endpoint: str):
    """Open a raw TCP socket to ``endpoint`` and complete the HELLO
    exchange by hand, leaving the server holding an idle inbound
    connection — the cheap way to stand up hundreds of connections
    without hundreds of client Spaces.  Returns the socket (caller
    closes it)."""
    import socket
    import struct

    from repro.rpc import messages
    from repro.wire import protocol as wire_protocol
    from repro.wire.framing import pack_frame
    from repro.wire.ids import fresh_space_id

    host, port = endpoint[len("tcp://"):].rsplit(":", 1)
    sock = socket.create_connection((host, int(port)), timeout=10)
    base = min(wire_protocol.PROTOCOL_VERSION,
               wire_protocol.MIN_PROTOCOL_VERSION)
    hello = messages.Hello(
        fresh_space_id("idle"), "idle", base, wire_protocol.PROTOCOL_VERSION
    )
    sock.sendall(pack_frame(hello.encode()))

    def read_exact(need: int) -> bytes:
        data = b""
        while len(data) < need:
            chunk = sock.recv(need - len(data))
            assert chunk, "peer closed during handshake"
            data += chunk
        return data

    (length,) = struct.unpack("!I", read_exact(4))
    read_exact(length)  # the HELLO_ACK body, discarded
    return sock
