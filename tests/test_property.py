"""Property-based tests (hypothesis) over the core data structures.

Four target families:

* the pickle format — round-trip fidelity over arbitrary value graphs;
* varints — total and lossless over non-negative integers;
* the abstract machine — every reachable configuration along random
  transition sequences satisfies every invariant, and collector steps
  strictly decrease the termination measure;
* random mutator schedules — arbitrary copy/drop event sequences
  always end with the object collected and the books balanced, for
  the base machine and every variant cost model.
"""

import math

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.marshal import dumps, loads
from repro.model import Machine, initial_configuration, termination_measure
from repro.model.invariants import all_violations
from repro.model.scenario import run_events
from repro.model.variants import all_models
from repro.wire.varint import read_uvarint, write_uvarint

# -- strategies -----------------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
        st.tuples(children, children),
        st.sets(
            st.one_of(st.integers(), st.text(max_size=8)), max_size=5
        ),
        st.frozensets(st.integers(), max_size=5),
    ),
    max_leaves=25,
)


# -- pickles ---------------------------------------------------------------------

class TestPickleProperties:
    @given(values)
    @settings(max_examples=300, deadline=None)
    def test_round_trip(self, value):
        assert loads(dumps(value)) == value

    @given(values)
    @settings(max_examples=150, deadline=None)
    def test_round_trip_preserves_types(self, value):
        result = loads(dumps(value))
        assert type(result) is type(value)

    @given(st.floats())
    @settings(max_examples=100, deadline=None)
    def test_floats_bitwise(self, value):
        result = loads(dumps(value))
        if math.isnan(value):
            assert math.isnan(result)
        else:
            assert result == value
            assert math.copysign(1, result) == math.copysign(1, value)

    @given(values)
    @settings(max_examples=100, deadline=None)
    def test_sharing_preserved(self, value):
        box = [value, value]
        result = loads(dumps(box))
        if isinstance(value, (list, dict, set, bytearray)):
            assert result[0] is result[1]
        assert result[0] == result[1]

    @given(st.integers())
    @settings(max_examples=200, deadline=None)
    def test_any_int(self, value):
        assert loads(dumps(value)) == value

    @given(st.binary(max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_bytes_never_crash_decoder(self, data):
        from repro.errors import UnmarshalError

        try:
            loads(data)
        except UnmarshalError:
            pass  # rejection is the contract; crashing is not


class TestVarintProperties:
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    @settings(max_examples=300, deadline=None)
    def test_round_trip(self, value):
        out = bytearray()
        write_uvarint(out, value)
        decoded, offset = read_uvarint(bytes(out), 0)
        assert decoded == value
        assert offset == len(out)

    @given(st.integers(min_value=0, max_value=2**32),
           st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=100, deadline=None)
    def test_concatenation_parses(self, a, b):
        out = bytearray()
        write_uvarint(out, a)
        write_uvarint(out, b)
        first, offset = read_uvarint(bytes(out), 0)
        second, end = read_uvarint(bytes(out), offset)
        assert (first, second) == (a, b)
        assert end == len(out)


# -- the abstract machine ------------------------------------------------------------

class TestMachineProperties:
    @given(st.integers(min_value=0, max_value=2**31), st.integers(2, 3))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_walks_safe(self, seed, nprocs):
        """Invariants hold and the measure behaves along random runs."""
        machine = Machine()
        config = initial_configuration(
            nprocs=nprocs, nrefs=1, copies_left=3
        )
        state = {"measure": termination_measure(config)}

        def observe(successor, transition):
            violations = all_violations(successor)
            assert not violations, violations
            measure = termination_measure(successor)
            assert measure >= 0
            if not transition.rule.mutator:
                assert measure < state["measure"], transition
            state["measure"] = measure

        final = machine.run_random(config, seed=seed, observer=observe)
        # Liveness at quiescence: no transient entries, no messages.
        assert not final.tdirty
        assert not final.msgs

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_quiescent_dirty_sets_match_holders(self, seed):
        """At quiescence the dirty set is exactly the set of clients
        whose reference is still usable (Invariant 2 collapsed)."""
        from repro.dgc.states import RefState

        machine = Machine()
        config = initial_configuration(nprocs=3, nrefs=1, copies_left=3)
        final = machine.run_random(config, seed=seed)
        owner = final.owner[0]
        holders = {
            proc for proc in range(final.nprocs)
            if proc != owner and final.rec_of(proc, 0) is RefState.OK
        }
        assert final.pdirty_of(owner, 0) == holders


# -- random mutator schedules over all algorithms -------------------------------------


@st.composite
def event_sequences(draw, nprocs=3, max_events=12):
    """Valid copy/drop sequences: senders hold the ref, everyone
    drops at the end (so collection is expected)."""
    holders = {0}
    events = []
    count = draw(st.integers(min_value=1, max_value=max_events))
    for _ in range(count):
        action = draw(st.sampled_from(["copy", "copy", "drop"]))
        if action == "copy":
            src = draw(st.sampled_from(sorted(holders)))
            dst = draw(st.integers(min_value=0, max_value=nprocs - 1))
            if dst == src:
                continue
            events.append(("copy", src, dst))
            holders.add(dst)
        else:
            droppable = sorted(holders - {0})
            if not droppable:
                continue
            victim = draw(st.sampled_from(droppable))
            events.append(("drop", victim))
            holders.discard(victim)
    for proc in sorted(holders - {0}):
        events.append(("drop", proc))
    return events


class TestScheduleProperties:
    @given(event_sequences())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_base_machine_collects_and_stays_safe(self, events):
        run = run_events(3, events, check=True)
        assert not run.owner_entry_exists()
        assert run.holders() == []

    @given(event_sequences())
    @settings(max_examples=40, deadline=None)
    def test_all_variants_collect(self, events):
        for model in all_models(3):
            model.run(events)
            assert model.collected(), (model.name, events)

    @given(event_sequences())
    @settings(max_examples=40, deadline=None)
    def test_cost_hierarchy_holds_universally(self, events):
        from repro.model.variants import (
            BirrellCounting,
            BirrellFifoCounting,
            BirrellOwnerOptCounting,
        )

        base = BirrellCounting(3).run(events).total_gc_messages()
        fifo = BirrellFifoCounting(3).run(events).total_gc_messages()
        opt = BirrellOwnerOptCounting(3).run(events).total_gc_messages()
        assert base >= fifo >= opt


class TestFaultyMachineProperties:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_random_fault_walks_safe_with_seqnos(self, seed):
        """Random walks of the fault-tolerant machine (loss, spurious
        timeouts, retries): safety holds at every step, and quiescent
        states are leak-free."""
        import random as _random

        from repro.model.variants import (
            FaultyMachine,
            faulty_leak_violations,
            faulty_safety_violations,
            initial_faulty,
        )

        rng = _random.Random(seed)
        machine = FaultyMachine()
        config = initial_faulty(
            nprocs=3, copies_left=3, losses_left=2, timeouts_left=3,
        )
        for _ in range(400):
            transitions = machine.enabled(config)
            if not transitions:
                break
            config = rng.choice(transitions).fire(config)
            violations = faulty_safety_violations(config)
            assert not violations, violations
        quiescent_leaks = faulty_leak_violations(config)
        if not machine.enabled(config):
            assert not quiescent_leaks, quiescent_leaks


class TestMessageDecoderFuzz:
    @given(st.binary(min_size=0, max_size=120))
    @settings(max_examples=300, deadline=None)
    def test_rpc_decoder_never_crashes(self, data):
        """Arbitrary frames are either decoded or rejected with our
        error types — no interpreter-level exceptions escape."""
        from repro.errors import NetObjError
        from repro.rpc import messages as rpc_messages

        try:
            rpc_messages.decode(data)
        except NetObjError:
            pass

    @given(st.binary(min_size=0, max_size=120))
    @settings(max_examples=200, deadline=None)
    def test_ref_payload_decoder_never_crashes(self, data):
        from repro.core.marshalctx import decode_ref
        from repro.errors import NetObjError

        try:
            decode_ref(data)
        except NetObjError:
            pass
