"""Tests for the scenario driver and the variant cost models."""

import pytest

from repro.model.scenario import (
    ScenarioRun,
    churn,
    fan_out,
    figure_one_race,
    import_and_drop,
    run_events,
    third_party,
)
from repro.model.variants import (
    BirrellCounting,
    BirrellFifoCounting,
    BirrellOwnerOptCounting,
    IndirectRC,
    LermenMaurer,
    WeightedRC,
    all_models,
)

SCENARIOS = [
    ("import_and_drop", import_and_drop(), 2),
    ("third_party", third_party(), 3),
    ("fan_out", fan_out(3), 4),
    ("churn", churn(3), 2),
]


class TestScenarioDriver:
    def test_import_and_drop_message_breakdown(self):
        run = run_events(2, import_and_drop())
        assert dict(run.messages) == {
            "copy": 1, "dirty": 1, "dirty_ack": 1,
            "copy_ack": 1, "clean": 1, "clean_ack": 1,
        }
        assert run.total_gc_messages() == 5
        assert not run.owner_entry_exists()
        assert run.holders() == []

    def test_base_cost_is_linear_in_cycles(self):
        for rounds in (1, 2, 5):
            run = run_events(2, churn(rounds))
            assert run.total_gc_messages() == 5 * rounds

    def test_figure_one_race_is_safe(self):
        """The driver checks every intermediate configuration, so a
        clean completion *is* the safety statement."""
        run = run_events(3, figure_one_race())
        assert not run.owner_entry_exists()

    def test_invalid_event_rejected(self):
        with pytest.raises(ValueError):
            run_events(2, [("teleport", 1)])

    def test_copy_to_holder_is_cheap(self):
        """A second copy to an OK holder costs only a copy_ack."""
        run = ScenarioRun(2)
        run.copy(0, 1)
        first = run.total_gc_messages()
        run.copy(0, 1)
        assert run.total_gc_messages() == first + 1  # just the ack
        assert run.messages["dirty"] == 1


class TestCostModels:
    @pytest.mark.parametrize("name,events,nprocs", SCENARIOS)
    def test_all_models_collect_after_all_drops(self, name, events, nprocs):
        for model in all_models(nprocs):
            model.run(events)
            assert model.collected(), f"{model.name} failed on {name}"

    @pytest.mark.parametrize("name,events,nprocs", SCENARIOS)
    def test_cost_ordering(self, name, events, nprocs):
        """The qualitative claims of the related-work comparison:
        base Birrell ≥ FIFO variant ≥ owner-optimised, and the
        decrement-only algorithms (WRC, IRC) are cheapest."""
        costs = {}
        for model in all_models(nprocs):
            model.run(events)
            costs[model.name] = model.total_gc_messages()
        assert costs["birrell"] >= costs["birrell-fifo"]
        assert costs["birrell-fifo"] >= costs["birrell-owner-opt"]
        assert costs["weighted"] <= costs["lermen-maurer"]
        assert costs["indirect"] <= costs["lermen-maurer"]

    def test_birrell_matches_machine_exactly(self):
        model = BirrellCounting(3)
        model.run(third_party())
        assert model.total_gc_messages() == 10

    def test_fifo_saves_clean_acks(self):
        base = BirrellCounting(2).run(churn(4))
        fifo = BirrellFifoCounting(2).run(churn(4))
        assert (base.total_gc_messages() - fifo.total_gc_messages()) == 4

    def test_owner_opt_free_when_owner_sends(self):
        model = BirrellOwnerOptCounting(2)
        model.copy(0, 1)
        assert model.total_gc_messages() == 0
        model.drop(1)
        assert model.total_gc_messages() == 1  # just the clean

    def test_owner_opt_receiver_is_owner_free(self):
        model = BirrellOwnerOptCounting(3)
        model.copy(0, 1)
        model.copy(1, 0)  # back home: no messages at all
        assert model.total_gc_messages() == 0

    def test_weighted_requests_more_weight_at_one(self):
        model = WeightedRC(3, max_weight_log=1)  # tiny weights
        model.copy(0, 1)   # owner 1 / client 1
        model.copy(1, 2)   # client at weight 1 must request more
        assert model.messages["more_weight_request"] == 1
        model.drop(1)
        model.drop(2)
        assert model.collected()

    def test_weighted_invariant_enforced(self):
        model = WeightedRC(2)
        model.copy(0, 1)
        model.object_weight += 1  # corrupt the books
        with pytest.raises(AssertionError):
            model.copy(0, 1)

    def test_indirect_zombie_chain(self):
        """0 → 1 → 2: when 1 drops first it lingers as a zombie until
        2's decrement releases it."""
        model = IndirectRC(3)
        model.copy(0, 1)
        model.copy(1, 2)
        model.drop(1)
        assert 1 in model.zombies
        assert model.messages["dec"] == 0  # nothing released yet
        model.drop(2)
        assert model.collected()
        assert model.messages["dec"] == 2  # 2→1 and then 1→0

    def test_indirect_no_zombie_without_children(self):
        model = IndirectRC(2)
        model.copy(0, 1)
        model.drop(1)
        assert not model.zombies
        assert model.collected()

    def test_lermen_maurer_counts(self):
        model = LermenMaurer(3).run(third_party())
        assert dict(model.messages) == {"inc": 2, "ack": 2, "dec": 2}
