"""Mechanised analysis of the owner optimisations (Section 5.2).

Three results, each derived by exhaustive exploration:

1. the *literal* §5.2.1 protocol (owner adds the permanent entry at
   send time, no acknowledgement) is unsafe **even with full per-pair
   FIFO**, via parallel sends of the same reference to the same
   client — an instance of under-specification 3(d) the formalisation
   charges Birrell's presentation with;
2. the repaired variant (owner-sent copies are acknowledged; the ack
   promotes a transient entry to the dirty set) is safe under
   per-pair FIFO, at a cost of one extra message per cycle;
3. without ordering, the repaired variant still exhibits exactly the
   clean-overtakes-copy race §5.2.2 warns about, confirming the
   paper's stated ordering requirement is the binding one.
"""

import pytest

from repro.model.explorer import explore
from repro.model.variants import (
    OwnerOptMachine,
    initial_owner_opt,
    owner_opt_violations,
)


def run(nprocs, copies, ordered, repaired, keep_traces=False):
    return explore(
        initial_owner_opt(nprocs=nprocs, copies_left=copies,
                          ordered=ordered, repaired=repaired),
        machine=OwnerOptMachine(),
        checker=owner_opt_violations,
        keep_traces=keep_traces,
        max_states=3_000_000,
    )


class TestLiteralSpec:
    def test_literal_spec_unsafe_even_ordered(self):
        """Result 1: FIFO does not save the as-described §5.2.1."""
        result = run(2, 2, ordered=True, repaired=False, keep_traces=True)
        assert not result.ok
        trace = result.violations[0].trace
        names = [step.split("(")[0] for step in trace]
        # The counterexample is two owner sends racing one clean.
        assert names.count("make_copy") == 2
        assert "finalize" in names

    def test_literal_spec_needs_two_sends(self):
        """With a single copy ever sent, the literal spec holds —
        the race needs the duplicate send."""
        result = run(2, 1, ordered=True, repaired=False)
        assert result.ok


class TestRepairedVariant:
    @pytest.mark.parametrize(
        "nprocs,copies", [(2, 2), (2, 3), (3, 2), (3, 3)]
    )
    def test_safe_with_fifo(self, nprocs, copies):
        """Result 2: ack-promoting owner sends + per-pair FIFO."""
        result = run(nprocs, copies, ordered=True, repaired=True)
        assert result.ok, result.violations[0].messages
        assert result.quiescent_states >= 1

    def test_unsafe_without_ordering(self):
        """Result 3: drop the ordering and the §5.2.2 race appears —
        a clean overtakes a copy on the client→owner path."""
        result = run(2, 2, ordered=False, repaired=True, keep_traces=True)
        assert not result.ok
        names = [
            step.split("(")[0] for step in result.violations[0].trace
        ]
        assert "finalize" in names

    def test_full_cleanup_reachable(self):
        result = run(2, 2, ordered=True, repaired=True)
        assert result.quiescent_states >= 1


class TestCosts:
    def test_repaired_cycle_costs_two_messages(self):
        """Owner→client import + drop under the repaired variant:
        copy_ack + clean (vs the paper's claimed clean-only, which the
        literal-spec counterexample shows is unsound)."""
        from repro.dgc.states import RefState  # noqa: F401 (doc import)

        machine = OwnerOptMachine()
        config = initial_owner_opt(nprocs=2, copies_left=1, repaired=True)
        gc_messages = 0

        def fire(kind, params):
            nonlocal config, gc_messages
            matches = [
                t for t in machine.enabled(config)
                if t.kind == kind and t.params == params
            ]
            assert matches, f"{kind}{params} not enabled"
            config = matches[0].fire(config)

        fire("make_copy", (0, 1))
        fire("deliver", (0, 1, ("copy", 1)))
        fire("do_copy_ack", (1, 1, 0))
        gc_messages += 1  # the copy_ack
        fire("deliver", (1, 0, ("copy_ack", 1)))
        assert 1 in config.pdirty  # promoted by the ack
        fire("drop", (1,))
        fire("finalize", (1,))
        gc_messages += 1  # the clean
        fire("deliver", (1, 0, ("clean",)))
        assert not config.pdirty
        assert not config.tdirty
        assert gc_messages == 2
