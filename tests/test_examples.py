"""Smoke tests: every example must run to completion, standalone.

The examples are self-asserting (they end with ``done.``), so running
them in a subprocess both documents and verifies the public API from
a fresh interpreter.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


class TestExamples:
    def test_examples_present(self):
        assert "quickstart.py" in ALL_EXAMPLES
        assert len(ALL_EXAMPLES) >= 4

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_example_runs(self, name):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / name)],
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert result.returncode == 0, (
            f"{name} failed:\nstdout:\n{result.stdout}\n"
            f"stderr:\n{result.stderr}"
        )
        assert "done." in result.stdout
