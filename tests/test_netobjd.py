"""Tests for the standalone netobjd daemon."""

import threading

import pytest

from repro import NameServiceError, Space
from repro.naming import netobjd
from tests.helpers import Counter


@pytest.fixture()
def daemon():
    """A running netobjd on an ephemeral TCP port."""
    stop = threading.Event()
    started = threading.Event()
    holder = {}

    def on_ready(space):
        holder["endpoint"] = space.endpoints[0]
        started.set()

    thread = threading.Thread(
        target=netobjd.serve,
        kwargs={
            "endpoints": ["tcp://127.0.0.1:0"],
            "ping_interval": 0.2,
            "ready": on_ready,
            "stop_event": stop,
        },
        daemon=True,
    )
    thread.start()
    assert started.wait(10)
    yield holder["endpoint"]
    stop.set()
    thread.join(timeout=10)


class TestNetobjd:
    def test_rendezvous_through_daemon(self, daemon):
        endpoint = daemon
        publisher = Space("publisher", listen=["tcp://127.0.0.1:0"])
        consumer = Space("consumer")
        try:
            counter = Counter(10)
            agent = publisher.import_object(endpoint)
            agent.put("svc", counter)

            found = consumer.import_object(endpoint, "svc")
            assert found.value() == 10
            assert found._wirerep.owner == publisher.space_id
        finally:
            consumer.shutdown()
            publisher.shutdown()

    def test_listing_and_removal(self, daemon):
        endpoint = daemon
        with Space("pub", listen=["tcp://127.0.0.1:0"]) as publisher:
            agent = publisher.import_object(endpoint)
            agent.put("a", Counter())
            agent.put("b", Counter())
            assert agent.list() == ["a", "b"]
            agent.remove("a")
            assert agent.list() == ["b"]
            with pytest.raises(NameServiceError):
                agent.get("a")

    def test_daemon_purges_dead_publisher(self, daemon):
        """A publisher that crashes is eventually purged: the daemon's
        pinger cleans its dirty-set entries and the stored surrogate
        dies with them (registration garbage-collects itself)."""
        import time

        endpoint = daemon
        publisher = Space("mortal", listen=["tcp://127.0.0.1:0"])
        try:
            agent = publisher.import_object(endpoint)
            agent.put("doomed", Counter())
            publisher.shutdown()  # crash, no cleanup

            with Space("observer") as observer:
                deadline = time.time() + 10
                while time.time() < deadline:
                    try:
                        found = observer.import_object(endpoint, "doomed")
                        found.value()
                    except Exception:
                        break  # unreachable or gone: both acceptable
                    time.sleep(0.1)
        finally:
            publisher.shutdown()

    def test_cli_parser(self):
        import argparse

        with pytest.raises(SystemExit):
            netobjd.main(["--help"])
