"""Tests for the standalone netobjd daemon."""

import threading

import pytest

from repro import NameServiceError, Space
from repro.naming import netobjd
from tests.helpers import Counter


@pytest.fixture()
def daemon():
    """A running netobjd on an ephemeral TCP port."""
    stop = threading.Event()
    started = threading.Event()
    holder = {}

    def on_ready(space):
        holder["endpoint"] = space.endpoints[0]
        started.set()

    thread = threading.Thread(
        target=netobjd.serve,
        kwargs={
            "endpoints": ["tcp://127.0.0.1:0"],
            "ping_interval": 0.2,
            "ready": on_ready,
            "stop_event": stop,
        },
        daemon=True,
    )
    thread.start()
    assert started.wait(10)
    yield holder["endpoint"]
    stop.set()
    thread.join(timeout=10)


class TestNetobjd:
    def test_rendezvous_through_daemon(self, daemon):
        endpoint = daemon
        publisher = Space("publisher", listen=["tcp://127.0.0.1:0"])
        consumer = Space("consumer")
        try:
            counter = Counter(10)
            agent = publisher.import_object(endpoint)
            agent.put("svc", counter)

            found = consumer.import_object(endpoint, "svc")
            assert found.value() == 10
            assert found._wirerep.owner == publisher.space_id
        finally:
            consumer.shutdown()
            publisher.shutdown()

    def test_listing_and_removal(self, daemon):
        endpoint = daemon
        with Space("pub", listen=["tcp://127.0.0.1:0"]) as publisher:
            agent = publisher.import_object(endpoint)
            agent.put("a", Counter())
            agent.put("b", Counter())
            assert agent.list() == ["a", "b"]
            agent.remove("a")
            assert agent.list() == ["b"]
            with pytest.raises(NameServiceError):
                agent.get("a")

    def test_daemon_purges_dead_publisher(self, daemon):
        """A publisher that crashes is eventually purged: the daemon's
        pinger cleans its dirty-set entries and the stored surrogate
        dies with them (registration garbage-collects itself)."""
        import time

        endpoint = daemon
        publisher = Space("mortal", listen=["tcp://127.0.0.1:0"])
        try:
            agent = publisher.import_object(endpoint)
            agent.put("doomed", Counter())
            publisher.shutdown()  # crash, no cleanup

            with Space("observer") as observer:
                deadline = time.time() + 10
                while time.time() < deadline:
                    try:
                        found = observer.import_object(endpoint, "doomed")
                        found.value()
                    except Exception:
                        break  # unreachable or gone: both acceptable
                    time.sleep(0.1)
        finally:
            publisher.shutdown()

    def test_cli_parser(self):
        with pytest.raises(SystemExit):
            netobjd.main(["--help"])


class TestCli:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            netobjd.main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert repro.__version__ in out

    def test_busy_endpoint_exits_nonzero_with_one_line(self, capsys):
        import socket

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            rc = netobjd.main(["--listen", f"tcp://127.0.0.1:{port}"])
        finally:
            blocker.close()
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("netobjd: cannot listen on")
        assert len(err.strip().splitlines()) == 1

    def test_join_without_replica_id_is_accepted(self, monkeypatch):
        # --join alone is valid: serve() gets replica_id=None and the
        # mesh leader grants a fresh id at activation.
        seen = {}
        monkeypatch.setattr(
            netobjd, "serve",
            lambda endpoints, **kwargs: seen.update(kwargs),
        )
        assert netobjd.main(["--join", "tcp://127.0.0.1:1"]) == 0
        assert seen["replica_id"] is None
        assert seen["join"] == ["tcp://127.0.0.1:1"]

    def test_main_passes_args_to_serve(self, monkeypatch):
        seen = {}

        def fake_serve(endpoints, **kwargs):
            seen["endpoints"] = list(endpoints)
            seen.update(kwargs)

        monkeypatch.setattr(netobjd, "serve", fake_serve)
        rc = netobjd.main([
            "--listen", "tcp://127.0.0.1:1234",
            "--listen", "tcp://127.0.0.1:1235",
            "--ping-interval", "2.5",
            "--replica-id", "7",
            "--join", "tcp://127.0.0.1:9",
            "--gossip-interval", "0.25",
        ])
        assert rc == 0
        assert seen["endpoints"] == [
            "tcp://127.0.0.1:1234", "tcp://127.0.0.1:1235",
        ]
        assert seen["ping_interval"] == 2.5
        assert seen["replica_id"] == 7
        assert seen["join"] == ["tcp://127.0.0.1:9"]
        assert seen["gossip_interval"] == 0.25

    def test_default_endpoint_when_no_listen(self, monkeypatch):
        seen = {}
        monkeypatch.setattr(
            netobjd, "serve",
            lambda endpoints, **kwargs: seen.update(endpoints=endpoints),
        )
        assert netobjd.main([]) == 0
        assert seen["endpoints"] == [netobjd.DEFAULT_ENDPOINT]


class TestServeLifecycle:
    def test_ready_fires_after_listeners_bind(self):
        stop = threading.Event()
        state = {}

        def on_ready(space):
            state["endpoints"] = list(space.endpoints)
            state["closed_at_ready"] = space.closed
            stop.set()          # stop immediately; serve() returns

        space = netobjd.serve(
            ["tcp://127.0.0.1:0"], ping_interval=None,
            ready=on_ready, stop_event=stop,
        )
        assert state["endpoints"], "ready saw no bound endpoints"
        assert state["closed_at_ready"] is False
        assert space.closed    # serve shut the space down on return

    def test_stop_event_terminates_serve(self):
        stop = threading.Event()
        ready = threading.Event()
        result = {}

        def run():
            result["space"] = netobjd.serve(
                ["tcp://127.0.0.1:0"], ping_interval=None,
                ready=lambda s: ready.set(), stop_event=stop,
            )

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(10)
        assert thread.is_alive()   # parked on the stop event
        stop.set()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert result["space"].closed

    def test_serve_does_not_leak_the_space_on_bind_failure(self):
        import socket

        from repro.errors import CommFailure

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            with pytest.raises(CommFailure):
                netobjd.serve(
                    [f"tcp://127.0.0.1:{port}"], ping_interval=None,
                )
        finally:
            blocker.close()

    def test_join_without_replica_id_gets_granted_one(self):
        # A daemon started with only --join acquires a leader-granted
        # replica id before it appears in the roster.
        seed_stop, joiner_stop = threading.Event(), threading.Event()
        seed_ready = threading.Event()
        state = {}

        def run_seed():
            netobjd.serve(
                ["tcp://127.0.0.1:0"], ping_interval=None, replica_id=1,
                ready=lambda s: (state.update(seed=s.endpoints[0]),
                                 seed_ready.set()),
                stop_event=seed_stop, gossip_interval=0.05,
            )

        def joiner_ready(space):
            state["granted"] = space.agent.replica_id
            joiner_stop.set()

        seed_thread = threading.Thread(target=run_seed, daemon=True)
        seed_thread.start()
        try:
            assert seed_ready.wait(10)
            netobjd.serve(
                ["tcp://127.0.0.1:0"], ping_interval=None,
                join=[state["seed"]], ready=joiner_ready,
                stop_event=joiner_stop, gossip_interval=0.05,
            )
            assert state["granted"] == 2
        finally:
            seed_stop.set()
            seed_thread.join(timeout=10)
