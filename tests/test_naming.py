"""Tests for the agent (name service) and bootstrap mechanics."""

import threading

import pytest

from repro import Agent, GcConfig, NameServiceError, Space
from repro.naming.agent import is_reserved
from repro.wire.wirerep import SPECIAL_OBJECT_INDEX
from tests.helpers import Counter, wait_until


class TestAgentLocal:
    def test_put_get(self):
        agent = Agent()
        token = object()
        agent.put("x", token)
        assert agent.get("x") is token

    def test_get_missing(self):
        with pytest.raises(NameServiceError):
            Agent().get("missing")

    def test_replace(self):
        agent = Agent()
        agent.put("x", 1)
        agent.put("x", 2)
        assert agent.get("x") == 2

    def test_remove(self):
        agent = Agent()
        agent.put("x", 1)
        agent.remove("x")
        agent.remove("x")  # idempotent
        with pytest.raises(NameServiceError):
            agent.get("x")

    def test_list_sorted(self):
        agent = Agent()
        for name in ("zebra", "apple", "mango"):
            agent.put(name, name)
        assert agent.list() == ["apple", "mango", "zebra"]


class TestBootstrap:
    def test_agent_is_the_special_object(self, request):
        endpoint = f"inproc://boot-{request.node.name}"
        with Space("server", listen=[endpoint]) as server:
            entry = server.object_table.exported_entry(SPECIAL_OBJECT_INDEX)
            assert entry is not None
            assert entry.obj is server.agent
            assert entry.pinned

    def test_import_without_name_returns_agent_surrogate(self, request):
        endpoint = f"inproc://boot2-{request.node.name}"
        with Space("server", listen=[endpoint]) as server, \
                Space("client") as client:
            server.serve("thing", Counter())
            agent = client.import_object(endpoint)
            assert agent.list() == ["thing"]

    def test_remote_registration_via_agent(self, request):
        """A client can publish its own object in the server's agent —
        a third-party registration."""
        endpoint = f"inproc://boot3-{request.node.name}"
        client_ep = f"inproc://boot3c-{request.node.name}"
        with Space("server", listen=[endpoint]) as server, \
                Space("client", listen=[client_ep]) as client, \
                Space("other") as other:
            agent = client.import_object(endpoint)
            mine = Counter(5)
            agent.put("client-counter", mine)
            # A third space finds the client's object via the server.
            found = other.import_object(endpoint, "client-counter")
            assert found.value() == 5
            # And it is owned by the client, not the server.
            assert found._wirerep.owner == client.space_id

    def test_agent_survives_client_churn(self, request):
        endpoint = f"inproc://boot4-{request.node.name}"
        with Space("server", listen=[endpoint]) as server:
            server.serve("c", Counter())
            import gc

            for _ in range(5):
                with Space("ephemeral") as client:
                    counter = client.import_object(endpoint, "c")
                    counter.increment()
                gc.collect()
            entry = server.object_table.exported_entry(SPECIAL_OBJECT_INDEX)
            assert entry is not None  # pinned through it all

    def test_serve_requires_netobj(self, request):
        endpoint = f"inproc://boot5-{request.node.name}"
        with Space("server", listen=[endpoint]) as server:
            with pytest.raises(TypeError):
                server.serve("bad", object())


class TestAgentLeases:
    def test_repeat_get_is_served_from_the_replica(self, request):
        """Bootstrap lookups ride the read-lease layer: after the
        first ``get`` the client holds a lease on the agent, and a
        repeat lookup is a replica hit — no RPC at all."""
        endpoint = f"inproc://lease-boot-{request.node.name}"
        with Space("server", listen=[endpoint]) as server, \
                Space("client") as client:
            server.serve("svc", Counter(3))
            agent = client.import_object(endpoint)
            first = agent.get("svc")
            assert first.value() == 3
            before = client.lease_stats()
            again = agent.get("svc")
            assert again.value() == 3
            assert agent.list() == ["svc"]
            after = client.lease_stats()
            # The repeat get and the list were replica hits; no new
            # lease request (hence no RPC) went to the server.
            assert after["lease_hits"] >= before["lease_hits"] + 2
            assert after["lease_requests"] == before["lease_requests"]

    def test_registration_change_refreshes_the_lease(self, request):
        endpoint = f"inproc://lease-boot2-{request.node.name}"
        with Space("server", listen=[endpoint]) as server, \
                Space("client") as client:
            server.serve("svc", Counter())
            agent = client.import_object(endpoint)
            assert agent.list() == ["svc"]
            server.serve("late", Counter())   # local serve after lease
            assert agent.list() == ["late", "svc"]
            server.unserve("svc")
            assert agent.list() == ["late"]


class TestDeadOwnerSweep:
    def test_get_after_owner_death_is_a_name_miss(self, request):
        """A third-party registration whose owner died is swept when
        the pinger purges the owner, so ``get`` answers with the truth
        (no such name) instead of a doomed surrogate."""
        gc_config = GcConfig(ping_interval=0.05, ping_timeout=0.2,
                             ping_max_failures=2)
        endpoint = f"inproc://sweep-{request.node.name}"
        owner_ep = f"inproc://sweep-own-{request.node.name}"
        with Space("server", listen=[endpoint], gc=gc_config) as server:
            owner = Space("mortal", listen=[owner_ep], gc=gc_config)
            agent = owner.import_object(endpoint)
            agent.put("doomed", Counter(1))
            assert server.agent.get("doomed") is not None
            owner.shutdown()                  # crash: no unregistration
            assert wait_until(
                lambda: server.pinger.clients_purged >= 1, timeout=10
            )
            with pytest.raises(NameServiceError):
                server.agent.get("doomed")
            with Space("observer") as observer:
                with pytest.raises(NameServiceError):
                    observer.import_object(endpoint, "doomed")

    def test_sweep_spares_other_owners(self, request):
        gc_config = GcConfig(ping_interval=0.05, ping_timeout=0.2,
                             ping_max_failures=2)
        endpoint = f"inproc://sweep2-{request.node.name}"
        with Space("server", listen=[endpoint], gc=gc_config) as server, \
                Space("keeper",
                      listen=[f"inproc://sweep2-k-{request.node.name}"],
                      gc=gc_config) as keeper:
            mortal = Space(
                "mortal",
                listen=[f"inproc://sweep2-m-{request.node.name}"],
                gc=gc_config,
            )
            # Keep the agent surrogates alive so both spaces stay in
            # the server's dirty set (and hence on its ping schedule).
            keeper_agent = keeper.import_object(endpoint)
            mortal_agent = mortal.import_object(endpoint)
            keeper_agent.put("kept", Counter(7))
            mortal_agent.put("doomed", Counter())
            mortal.shutdown()
            assert wait_until(
                lambda: server.pinger.clients_purged >= 1, timeout=10
            )
            assert server.agent.list() == ["kept"]
            assert server.agent.get("kept") is not None


class TestAgentConcurrency:
    def test_list_stays_sorted_under_concurrent_mutation(self):
        """``list`` must hold its sorted-snapshot contract while other
        threads churn the table."""
        agent = Agent()
        names = [f"name-{i:03d}" for i in range(50)]
        stop = threading.Event()
        failures = []

        def churn(offset):
            i = 0
            while not stop.is_set():
                name = names[(i + offset) % len(names)]
                if i % 3 == 2:
                    agent.remove(name)
                else:
                    agent.put(name, i)
                i += 1

        def observe():
            while not stop.is_set():
                listed = agent.list()
                if listed != sorted(listed):
                    failures.append(listed)
                    return
                if any(is_reserved(name) for name in listed):
                    failures.append(listed)
                    return

        threads = [threading.Thread(target=churn, args=(k,), daemon=True)
                   for k in range(3)]
        threads += [threading.Thread(target=observe, daemon=True)
                    for _ in range(2)]
        for thread in threads:
            thread.start()
        import time

        time.sleep(0.5)
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        assert not failures
