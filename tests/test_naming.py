"""Tests for the agent (name service) and bootstrap mechanics."""

import pytest

from repro import Agent, NameServiceError, Space
from repro.wire.wirerep import SPECIAL_OBJECT_INDEX
from tests.helpers import Counter


class TestAgentLocal:
    def test_put_get(self):
        agent = Agent()
        token = object()
        agent.put("x", token)
        assert agent.get("x") is token

    def test_get_missing(self):
        with pytest.raises(NameServiceError):
            Agent().get("missing")

    def test_replace(self):
        agent = Agent()
        agent.put("x", 1)
        agent.put("x", 2)
        assert agent.get("x") == 2

    def test_remove(self):
        agent = Agent()
        agent.put("x", 1)
        agent.remove("x")
        agent.remove("x")  # idempotent
        with pytest.raises(NameServiceError):
            agent.get("x")

    def test_list_sorted(self):
        agent = Agent()
        for name in ("zebra", "apple", "mango"):
            agent.put(name, name)
        assert agent.list() == ["apple", "mango", "zebra"]


class TestBootstrap:
    def test_agent_is_the_special_object(self, request):
        endpoint = f"inproc://boot-{request.node.name}"
        with Space("server", listen=[endpoint]) as server:
            entry = server.object_table.exported_entry(SPECIAL_OBJECT_INDEX)
            assert entry is not None
            assert entry.obj is server.agent
            assert entry.pinned

    def test_import_without_name_returns_agent_surrogate(self, request):
        endpoint = f"inproc://boot2-{request.node.name}"
        with Space("server", listen=[endpoint]) as server, \
                Space("client") as client:
            server.serve("thing", Counter())
            agent = client.import_object(endpoint)
            assert agent.list() == ["thing"]

    def test_remote_registration_via_agent(self, request):
        """A client can publish its own object in the server's agent —
        a third-party registration."""
        endpoint = f"inproc://boot3-{request.node.name}"
        client_ep = f"inproc://boot3c-{request.node.name}"
        with Space("server", listen=[endpoint]) as server, \
                Space("client", listen=[client_ep]) as client, \
                Space("other") as other:
            agent = client.import_object(endpoint)
            mine = Counter(5)
            agent.put("client-counter", mine)
            # A third space finds the client's object via the server.
            found = other.import_object(endpoint, "client-counter")
            assert found.value() == 5
            # And it is owned by the client, not the server.
            assert found._wirerep.owner == client.space_id

    def test_agent_survives_client_churn(self, request):
        endpoint = f"inproc://boot4-{request.node.name}"
        with Space("server", listen=[endpoint]) as server:
            server.serve("c", Counter())
            import gc

            for _ in range(5):
                with Space("ephemeral") as client:
                    counter = client.import_object(endpoint, "c")
                    counter.increment()
                gc.collect()
            entry = server.object_table.exported_entry(SPECIAL_OBJECT_INDEX)
            assert entry is not None  # pinned through it all

    def test_serve_requires_netobj(self, request):
        endpoint = f"inproc://boot5-{request.node.name}"
        with Space("server", listen=[endpoint]) as server:
            with pytest.raises(TypeError):
                server.serve("bad", object())
