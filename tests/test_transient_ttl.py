"""Tests for transient-pin expiry (the lost-copy_ack gap).

Birrell's presentation never says what happens when a copy
acknowledgement is lost — the sender's transient dirty entry pins the
object forever.  ``GcConfig.transient_ttl`` bounds that leak; these
tests demonstrate both the leak (TTL disabled) and the recovery.
"""

import gc as pygc
import time
import weakref

from repro import GcConfig, NetObj, Space
from repro.sim.network import NetworkModel
from repro.transport.simulated import SimTransport
from repro.wire import protocol
from tests.helpers import wait_until


class Vault(NetObj):
    def __init__(self):
        self.issued = []

    def issue(self):
        token = Token()
        self.issued.append(weakref.ref(token))
        return token

    def live(self) -> int:
        pygc.collect()
        return sum(1 for ref in self.issued if ref() is not None)


class Token(NetObj):
    def poke(self) -> bool:
        return True


def ack_dropping_spaces(gc_config):
    """All COPY_ACK frames are lost; everything else flows."""
    transport = SimTransport(NetworkModel(
        latency=0.0005, drop_probability=1.0,
        drop_tags=frozenset({protocol.COPY_ACK}), seed=9,
    ))
    server = Space("owner", listen=["sim://owner"],
                   transports=[transport], gc=gc_config)
    client = Space("client", listen=["sim://client"],
                   transports=[transport], gc=gc_config)
    return transport, server, client


class TestTransientLeak:
    def test_lost_ack_leaks_without_ttl(self):
        gc_config = GcConfig()  # transient_ttl=None: paper behaviour
        transport, server, client = ack_dropping_spaces(gc_config)
        try:
            vault_impl = Vault()
            server.serve("vault", vault_impl)
            vault = client.import_object("sim://owner", "vault")
            token = vault.issue()
            assert token.poke()
            del token
            pygc.collect()
            client.cleanup_daemon.wait_idle()
            time.sleep(0.5)
            pygc.collect()
            # The client cleaned up properly, but the owner's pin for
            # the unacknowledged result copy keeps the token alive.
            assert vault_impl.live() == 1
            assert server.stats()["gc"]["transient_pins"] >= 1
        finally:
            client.shutdown()
            server.shutdown()
            transport.shutdown()

    def test_ttl_recovers_the_leak(self):
        gc_config = GcConfig(transient_ttl=0.3,
                             transient_sweep_interval=0.05)
        transport, server, client = ack_dropping_spaces(gc_config)
        try:
            vault_impl = Vault()
            server.serve("vault", vault_impl)
            vault = client.import_object("sim://owner", "vault")
            token = vault.issue()
            assert token.poke()
            del token
            pygc.collect()
            client.cleanup_daemon.wait_idle()
            assert wait_until(lambda: vault_impl.live() == 0, timeout=10)
            assert server.stats()["gc"]["transient_pins"] == 0
            assert server.transient.expired_total >= 1
        finally:
            client.shutdown()
            server.shutdown()
            transport.shutdown()

    def test_ttl_does_not_break_normal_transfers(self, request):
        """With acks flowing normally, expiry never fires early enough
        to matter and semantics are unchanged."""
        gc_config = GcConfig(transient_ttl=30.0,
                             transient_sweep_interval=0.05)
        endpoint = f"inproc://ttl-{request.node.name}"
        with Space("owner", listen=[endpoint], gc=gc_config) as server, \
                Space("client", gc=gc_config) as client:
            vault_impl = Vault()
            server.serve("vault", vault_impl)
            vault = client.import_object(endpoint, "vault")
            token = vault.issue()
            assert token.poke()
            assert wait_until(
                lambda: server.stats()["gc"]["transient_pins"] == 0
            )
            assert server.transient.expired_total == 0
            assert vault_impl.live() == 1  # still pinned by the client

    def test_expire_unit(self):
        from repro.dgc.client import TransientTable

        table = TransientTable()
        first = table.pin("a")
        time.sleep(0.05)
        second = table.pin("b")
        expired = table.expire(ttl=0.03)
        assert [copy_id for copy_id, _obj in expired] == [first]
        assert len(table) == 1
        assert table.release(second) == "b"
