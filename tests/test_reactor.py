"""The reactor core: resumable framing, timers, thread accounting,
pump bridging, orderly shutdown, and connection-cache idle reaping.

The tentpole claim under test: a space serves *all* its connections
from one selector thread, so 128 inbound TCP connections cost a
handful of resident I/O threads, not 128 — while the RPC semantics
(delivery order, teardown, call/reply matching) stay exactly what the
reader-per-connection design provided.
"""

from __future__ import annotations

import struct
import threading
import time

import pytest

from repro import NetObj, Space, async_call
from repro.errors import ConnectionClosed, ProtocolError
from repro.sim.network import NetworkModel
from repro.transport.inprocess import channel_pair
from repro.transport.reactor import ChannelPump, Reactor
from repro.transport.simulated import SimTransport
from repro.wire.framing import MAX_FRAME_SIZE, FrameAssembler, pack_frame
from tests.conftest import io_threads
from tests.helpers import Counter, Echo, handshake_idle_socket, wait_until


def drip(assembler: FrameAssembler, stream: bytes, step: int):
    """Feed ``stream`` through the assembler ``step`` bytes at a time,
    the way a nonblocking socket would: copy into ``next_buffer``,
    report via ``advance``, collect completed payloads."""
    out = []
    view = memoryview(stream)
    offset = 0
    while offset < len(stream):
        target = assembler.next_buffer()
        count = min(step, len(target), len(stream) - offset)
        target[:count] = view[offset:offset + count]
        offset += count
        payload = assembler.advance(count)
        if payload is not None:
            out.append(bytes(payload))
    return out


class TestFrameAssembler:
    @pytest.mark.parametrize("step", [1, 2, 3, 7, 1024])
    def test_reassembles_across_arbitrary_chunking(self, step):
        frames = [b"alpha", b"", b"b" * 300, b"\x00\x01\x02", b"last"]
        stream = b"".join(pack_frame(frame) for frame in frames)
        assembler = FrameAssembler()
        assert drip(assembler, stream, step) == frames
        assert not assembler.mid_frame

    def test_mid_frame_flag_tracks_partial_state(self):
        assembler = FrameAssembler()
        assert not assembler.mid_frame
        stream = pack_frame(b"hello")
        assembler.next_buffer()[:2] = stream[:2]
        assert assembler.advance(2) is None
        assert assembler.mid_frame  # two header bytes in
        remainder = drip(assembler, stream[2:], 1)
        assert remainder == [b"hello"]
        assert not assembler.mid_frame

    def test_zero_length_frame_completes_without_payload(self):
        assembler = FrameAssembler()
        assert drip(assembler, pack_frame(b""), 4) == [b""]

    def test_oversized_announcement_raises(self):
        assembler = FrameAssembler()
        header = struct.pack("!I", MAX_FRAME_SIZE + 1)
        assembler.next_buffer()[:4] = header
        with pytest.raises(ProtocolError):
            assembler.advance(4)


class TestReactorCore:
    def test_call_soon_runs_on_reactor_thread(self):
        reactor = Reactor("unit")
        reactor.start()
        try:
            seen = []
            done = threading.Event()

            def probe():
                seen.append(threading.current_thread().name)
                done.set()

            assert reactor.call_soon(probe)
            assert done.wait(5)
            assert seen == ["reactor-unit"]
        finally:
            reactor.stop()
        # A stopped reactor refuses new work instead of queueing it.
        assert reactor.call_soon(lambda: None) is False

    def test_timer_repeats_until_cancelled(self):
        reactor = Reactor("timer-unit")
        reactor.start()
        try:
            fired = []
            timer = reactor.add_timer(0.02, lambda: fired.append(1))
            assert wait_until(lambda: len(fired) >= 3, timeout=5)
            timer.cancel()
            settled = len(fired)
            time.sleep(0.2)
            # At most one tick could have been in flight at cancel.
            assert len(fired) <= settled + 1
        finally:
            reactor.stop()

    def test_pump_bridges_blocking_channel(self):
        a, b = channel_pair()
        frames = []
        closures = []

        class Sink:
            def on_frame(self, payload):
                frames.append(bytes(payload))

            def on_closed(self, failure):
                closures.append(failure)

        ChannelPump(b, Sink(), name="unit").start()
        a.send(b"one")
        a.send(b"two")
        assert wait_until(lambda: len(frames) == 2)
        assert frames == [b"one", b"two"]
        a.close()
        assert wait_until(lambda: len(closures) == 1)
        assert closures[0] is None  # clean end-of-stream


class TestWriteBackpressure:
    def test_cork_drains_on_writable_events(self):
        """Force genuine kernel backpressure: a burst far larger than a
        shrunken send buffer must cork (not block the sender, not drop
        bytes) and the reactor must drain it on writable events —
        byte-exact and in order — with no sender-thread involvement."""
        import socket

        from repro.transport.tcp import SocketChannel

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        left = socket.create_connection(listener.getsockname(), timeout=10)
        left.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 8192)
        right, _ = listener.accept()
        listener.close()
        sender = SocketChannel(left)

        class Sink:
            def on_frame(self, payload):
                pass

            def on_closed(self, failure):
                pass

        reactor = Reactor("backpressure")
        reactor.start()
        try:
            reactor.register(sender, Sink(), name="sender")
            # The peer reads nothing yet, so only the first fraction of
            # this burst fits in the kernel buffer.
            payloads = [bytes([i]) * 65536 for i in range(8)]
            for payload in payloads:
                sender.send(payload)
            assert sender.frames_coalesced > 0  # later frames joined the backlog
            assert not sender.flush(timeout=0.1)  # backlog really pending
            # Drain the peer; the reactor flushes the cork as the
            # kernel signals writability.
            expected = sum(len(p) + 4 for p in payloads)
            received = bytearray()
            right.settimeout(10)
            while len(received) < expected:
                chunk = right.recv(65536)
                assert chunk, "sender went quiet mid-backlog"
                received += chunk
            assert sender.flush(timeout=5)
            assert sender.coalesced_flushes >= 1
            # Byte-exact, ordered reassembly of everything that corked.
            assert drip(FrameAssembler(), bytes(received), 65536) == payloads
        finally:
            sender.close()
            right.close()
            reactor.stop()


class TestThreadAccounting:
    def test_128_connections_need_few_io_threads(self):
        """The acceptance criterion: 128 inbound TCP connections on
        one space leave at most 4 resident I/O threads (reactor +
        accept loop), where reader-per-connection needed 128+."""
        baseline = io_threads()
        with Space("fan-in", listen=["tcp://127.0.0.1:0"]) as server:
            server.serve("counter", Counter())
            endpoint = server.endpoints[0]
            socks = [handshake_idle_socket(endpoint) for _ in range(128)]
            try:
                assert wait_until(
                    lambda: server.reactor.active_connections >= 128,
                    timeout=10,
                )
                resident = {t for t in io_threads() if t.is_alive()}
                new_io = resident - baseline
                assert len(new_io) <= 4, sorted(t.name for t in new_io)
            finally:
                for sock in socks:
                    sock.close()


class TestPumpOverSim:
    def test_jittered_network_delivery_and_teardown(self):
        """Spaces over the simulated network (no selectable fds) run
        through pump bridges: multi-millisecond jittered, non-FIFO
        delivery must not cross-wire pipelined replies, and shutdown
        must drain every pump."""
        transport = SimTransport(
            NetworkModel(latency=0.002, jitter=0.004, seed=11)
        )
        server = Space("pump-owner", listen=["sim://pump-owner"],
                       transports=[transport])
        client = Space("pump-client", transports=[transport])
        try:
            server.serve("echo", Echo())
            echo = client.import_object("sim://pump-owner", "echo")
            # Sequential calls arrive in order.
            for i in range(20):
                assert echo.echo(i) == i
            # Pipelined calls under jitter: every future gets its own
            # reply (call-id matching survives reordered delivery).
            futures = [async_call(echo.echo, i) for i in range(100)]
            assert [f.result(30) for f in futures] == list(range(100))
            assert client.reactor.active_connections >= 1
            assert client.stats()["reactor"]["frames_in"] >= 120
        finally:
            client.shutdown()
            server.shutdown()
            transport.shutdown()
        assert wait_until(lambda: client.reactor.active_connections == 0)
        assert wait_until(lambda: server.reactor.active_connections == 0)


class TestOrderlyShutdown:
    def test_client_shutdown_reads_orderly_at_server(self):
        with Space("osd-srv", listen=["tcp://127.0.0.1:0"]) as server:
            server.serve("echo", Echo())
            client = Space("osd-cli")
            echo = client.import_object(server.endpoints[0], "echo")
            assert echo.echo("x") == "x"
            with server._conn_lock:
                server_conns = list(server._connections)
            assert len(server_conns) == 1
            client.shutdown()
            assert wait_until(lambda: server_conns[0].closed)
            assert server_conns[0].orderly

    def test_server_shutdown_reads_orderly_at_client(self):
        server = Space("osd-srv2", listen=["tcp://127.0.0.1:0"])
        server.serve("echo", Echo())
        with Space("osd-cli2") as client:
            echo = client.import_object(server.endpoints[0], "echo")
            assert echo.echo("x") == "x"
            client_conn = client.cache.peek(server.endpoints[0])
            assert client_conn is not None
            server.shutdown()
            assert wait_until(lambda: client_conn.closed)
            assert client_conn.orderly


class SlowEcho(NetObj):
    def nap(self, seconds: float) -> str:
        time.sleep(seconds)
        return "rested"


class TestIdleReaping:
    def test_idle_connection_reaped_then_redialled(self):
        with Space("ttl-srv", listen=["tcp://127.0.0.1:0"]) as server, \
                Space("ttl-cli", conn_idle_ttl=0.15) as client:
            server.serve("echo", Echo())
            endpoint = server.endpoints[0]
            # Hold the agent surrogate so no GC traffic wakes the
            # connection while it idles.
            agent = client.import_object(endpoint)
            echo = agent.get("echo")
            assert echo.echo(1) == 1
            assert len(client.cache) == 1
            dials = client.cache.stats()["dials"]
            assert wait_until(lambda: len(client.cache) == 0, timeout=10)
            assert client.cache.stats()["idle_reaped"] >= 1
            assert wait_until(
                lambda: client.reactor.active_connections == 0
            )
            # The next call redials transparently.
            assert echo.echo(2) == 2
            assert client.cache.stats()["dials"] == dials + 1

    def test_failed_send_does_not_pin_connection(self):
        """A call whose *send* fails (oversize frame -> ProtocolError)
        must unregister its pending slot — a leaked slot looks like a
        call in flight and pins the connection against reaping."""
        with Space("pin-srv", listen=["tcp://127.0.0.1:0"]) as server, \
                Space("pin-cli") as client:
            server.serve("echo", Echo())
            endpoint = server.endpoints[0]
            agent = client.import_object(endpoint)
            echo = agent.get("echo")
            client.cache.idle_ttl = 5.0  # swept manually below
            with pytest.raises(ProtocolError):
                echo.echo(b"y" * (MAX_FRAME_SIZE + 1))
            connection = client.cache.peek(endpoint)
            assert connection is not None
            assert not connection._pending  # the slot was unregistered
            assert echo.echo("usable") == "usable"
            client.cache._last_used[endpoint] -= 100.0
            # A leaked slot would make the sweep skip this connection.
            assert client.cache.sweep_idle() == 1
            assert client.cache.stats()["idle_reaped"] >= 1

    def test_call_retries_when_reap_wins_pre_send_race(self):
        """The residual reaping race: the caller already holds the
        connection (cache lookup done) when the sweep orderly-closes
        it — e.g. mid-marshal of a huge argument.  The request never
        went on the wire, so the space must retry on a fresh dial
        instead of surfacing CommFailure."""
        with Space("race2-srv", listen=["tcp://127.0.0.1:0"]) as server, \
                Space("race2-cli") as client:
            server.serve("echo", Echo())
            endpoint = server.endpoints[0]
            agent = client.import_object(endpoint)
            echo = agent.get("echo")
            assert echo.echo(1) == 1
            stale = client.cache.peek(endpoint)
            assert stale is not None
            stale.begin_close()  # what sweep_idle does to a candidate
            with pytest.raises(ConnectionClosed):
                stale.call_buffer(stale.next_call_id(),
                                  stale.new_send_buffer())
            # Hand the caller the just-closed connection once, the way
            # a sweep racing the marshal would.
            real_get, handed = client.cache.get, []

            def stale_once(ep):
                if not handed:
                    handed.append(ep)
                    return stale
                return real_get(ep)

            client.cache.get = stale_once
            try:
                assert echo.echo(2) == 2  # retried, not CommFailure
            finally:
                client.cache.get = real_get
            assert handed == [endpoint]

    def test_sweep_skips_connections_with_calls_in_flight(self):
        """The eviction-vs-in-flight race, forced deterministically:
        an aged connection with a pending call must survive the sweep
        untouched; the same connection once idle must reap orderly."""
        with Space("race-srv", listen=["tcp://127.0.0.1:0"]) as server, \
                Space("race-cli") as client:
            server.serve("sleeper", SlowEcho())
            endpoint = server.endpoints[0]
            agent = client.import_object(endpoint)
            sleeper = agent.get("sleeper")
            client.cache.idle_ttl = 5.0  # swept manually below
            connection = client.cache.peek(endpoint)
            assert connection is not None

            future = async_call(sleeper.nap, 0.4)
            assert wait_until(lambda: len(connection._pending) >= 1)
            client.cache._last_used[endpoint] -= 100.0  # well past TTL
            assert client.cache.sweep_idle() == 0
            assert client.cache.peek(endpoint) is connection
            assert future.result(10) == "rested"

            assert wait_until(lambda: not connection._pending)
            client.cache._last_used[endpoint] -= 100.0
            assert client.cache.sweep_idle() == 1
            assert client.cache.peek(endpoint) is None
            assert wait_until(lambda: connection.closed)
            assert connection.orderly


class TestSpaceStats:
    def test_stats_aggregates_every_subsystem(self):
        with Space("st-srv", listen=["tcp://127.0.0.1:0"]) as server, \
                Space("st-cli") as client:
            server.serve("echo", Echo())
            echo = client.import_object(server.endpoints[0], "echo")
            assert echo.echo("x") == "x"
            stats = client.stats()
            assert set(stats) == {
                "admission", "naming", "gc", "dispatcher", "cache",
                "reactor", "marshal", "leases", "fastlane", "hotpath",
            }
            assert stats["naming"]["mode"] == "single"
            # Replies are never charged against admission budgets, so
            # the *server* admits the call frames this test sent.
            assert stats["admission"]["shed"] == 0
            assert server.stats()["admission"]["admitted"] >= 1
            assert set(stats["fastlane"]) == {
                "methods_bound", "fastlane_calls", "fastlane_fallbacks",
                "inline_dispatches", "inline_demotions",
            }
            assert stats["fastlane"]["methods_bound"] >= 1
            assert stats["hotpath"]["enabled"] is False
            assert stats["reactor"]["frames_in"] >= 1
            assert stats["reactor"]["frames_out"] >= 1
            assert stats["reactor"]["active_connections"] >= 1
            assert stats["reactor"]["wakeups"] >= 1
            assert stats["cache"]["connections"] == 1
            assert stats["cache"]["dials"] == 1
            assert stats["gc"]["surrogates"] >= 1
            assert stats["dispatcher"]["tasks_failed"] == 0
