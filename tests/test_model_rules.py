"""Unit tests for the abstract machine's rules and basic runs."""

import pytest

from repro.dgc.states import RefState
from repro.model import (
    Machine,
    termination_measure,
)
from repro.model.invariants import check_all
from repro.model.rules import RULES_BY_NAME
from repro.model.state import initial_configuration as init


def fire(config, rule_name, params):
    rule = RULES_BY_NAME[rule_name]
    assert params in set(rule.candidates(config)), (
        f"{rule_name}{params} not enabled"
    )
    return rule.fire(config, params)


class TestInitialState:
    def test_owner_starts_ok_and_reachable(self):
        config = init(nprocs=3, nrefs=2, owner=(0, 1))
        assert config.rec_of(0, 0) is RefState.OK
        assert config.rec_of(1, 1) is RefState.OK
        assert config.rec_of(1, 0) is RefState.NONEXISTENT
        assert config.is_reachable(0, 0)
        check_all(config)

    def test_bad_owner_rejected(self):
        with pytest.raises(ValueError):
            init(nprocs=2, nrefs=1, owner=(5,))
        with pytest.raises(ValueError):
            init(nprocs=2, nrefs=2, owner=(0,))

    def test_initial_measure(self):
        config = init(nprocs=3, nrefs=1)
        # Only the owner's OK state contributes.
        assert termination_measure(config) == 5


class TestHappyPath:
    """Walk the full life cycle by hand, checking states and measure."""

    def test_full_cycle(self):
        config = init(nprocs=2, nrefs=1, copies_left=1)
        measures = [termination_measure(config)]

        def step(cfg, rule, params):
            new = fire(cfg, rule, params)
            check_all(new)
            measures.append(termination_measure(new))
            return new

        config = step(config, "make_copy", (0, 1, 0))
        copy_msg = next(iter(config.msgs))
        config = step(config, "receive_copy", copy_msg)
        assert config.rec_of(1, 0) is RefState.NIL
        config = step(config, "do_dirty_call", (1, 0))
        config = step(config, "receive_dirty", ("dirty", 1, 0, 0))
        assert (0, 0, 1) in config.pdirty
        config = step(config, "do_dirty_ack", (0, 1, 0))
        config = step(config, "receive_dirty_ack", ("dirty_ack", 0, 1, 0))
        assert config.rec_of(1, 0) is RefState.OK
        config = step(config, "do_copy_ack", (1, 1, 0, 0))
        config = step(config, "receive_copy_ack", ("copy_ack", 1, 0, 0, 1))
        assert not config.tdirty
        config = step(config, "mutator_drop", (1, 0))
        config = step(config, "finalize", (1, 0))
        config = step(config, "do_clean_call", (1, 0))
        assert config.rec_of(1, 0) is RefState.CCIT
        config = step(config, "receive_clean", ("clean", 1, 0, 0))
        assert not config.pdirty
        config = step(config, "do_clean_ack", (0, 1, 0))
        config = step(config, "receive_clean_ack", ("clean_ack", 0, 1, 0))
        assert config.rec_of(1, 0) is RefState.NONEXISTENT

        # No collector transition remains.
        assert Machine().enabled_gc_only(config) == []
        # The measure decreased strictly on every collector step.
        gc_steps = [
            (before, after)
            for i, (before, after) in enumerate(
                zip(measures, measures[1:])
            )
            # steps 0 (make_copy), 8 (drop) and 9 (finalize) are
            # mutator steps; all others are collector steps
            if i not in (0, 8, 9)
        ]
        for before, after in gc_steps:
            assert after < before

    def test_ccitnil_postpones_dirty(self):
        """A copy during clean-in-transit parks in ccitnil; the dirty
        call is disabled until the clean ack arrives."""
        config = init(nprocs=2, nrefs=1, copies_left=2)
        config = fire(config, "make_copy", (0, 1, 0))
        config = fire(config, "receive_copy", ("copy", 0, 1, 0, 1))
        config = fire(config, "do_dirty_call", (1, 0))
        config = fire(config, "receive_dirty", ("dirty", 1, 0, 0))
        config = fire(config, "do_dirty_ack", (0, 1, 0))
        config = fire(config, "receive_dirty_ack", ("dirty_ack", 0, 1, 0))
        config = fire(config, "do_copy_ack", (1, 1, 0, 0))
        config = fire(config, "receive_copy_ack", ("copy_ack", 1, 0, 0, 1))
        config = fire(config, "mutator_drop", (1, 0))
        config = fire(config, "finalize", (1, 0))
        config = fire(config, "do_clean_call", (1, 0))
        assert config.rec_of(1, 0) is RefState.CCIT
        # Clean is in transit; now a fresh copy arrives.
        config = fire(config, "make_copy", (0, 1, 0))
        config = fire(config, "receive_copy", ("copy", 0, 1, 0, 2))
        assert config.rec_of(1, 0) is RefState.CCITNIL
        check_all(config)
        # do_dirty_call must NOT be enabled (Note 5).
        dirty_rule = RULES_BY_NAME["do_dirty_call"]
        assert (1, 0) not in set(dirty_rule.candidates(config))
        # Drain the clean; then the dirty becomes possible.
        config = fire(config, "receive_clean", ("clean", 1, 0, 0))
        config = fire(config, "do_clean_ack", (0, 1, 0))
        config = fire(config, "receive_clean_ack", ("clean_ack", 0, 1, 0))
        assert config.rec_of(1, 0) is RefState.NIL
        assert (1, 0) in set(dirty_rule.candidates(config))
        check_all(config)

    def test_resurrection_cancels_clean(self):
        """Note 4: copy received while a clean is scheduled (not sent)
        cancels it."""
        config = init(nprocs=2, nrefs=1, copies_left=2)
        config = fire(config, "make_copy", (0, 1, 0))
        config = fire(config, "receive_copy", ("copy", 0, 1, 0, 1))
        config = fire(config, "do_dirty_call", (1, 0))
        config = fire(config, "receive_dirty", ("dirty", 1, 0, 0))
        config = fire(config, "do_dirty_ack", (0, 1, 0))
        config = fire(config, "receive_dirty_ack", ("dirty_ack", 0, 1, 0))
        config = fire(config, "do_copy_ack", (1, 1, 0, 0))
        config = fire(config, "receive_copy_ack", ("copy_ack", 1, 0, 0, 1))
        config = fire(config, "mutator_drop", (1, 0))
        config = fire(config, "finalize", (1, 0))
        assert (1, 0) in config.clean_call_todo
        config = fire(config, "make_copy", (0, 1, 0))
        config = fire(config, "receive_copy", ("copy", 0, 1, 0, 2))
        assert (1, 0) not in config.clean_call_todo  # cancelled
        assert config.rec_of(1, 0) is RefState.OK
        check_all(config)

    def test_transient_entry_blocks_finalize(self):
        """The transient dirty table is a local GC root (Note 2)."""
        config = init(nprocs=3, nrefs=1, copies_left=2)
        # 0 -> 1 full import.
        config = fire(config, "make_copy", (0, 1, 0))
        config = fire(config, "receive_copy", ("copy", 0, 1, 0, 1))
        config = fire(config, "do_dirty_call", (1, 0))
        config = fire(config, "receive_dirty", ("dirty", 1, 0, 0))
        config = fire(config, "do_dirty_ack", (0, 1, 0))
        config = fire(config, "receive_dirty_ack", ("dirty_ack", 0, 1, 0))
        config = fire(config, "do_copy_ack", (1, 1, 0, 0))
        config = fire(config, "receive_copy_ack", ("copy_ack", 1, 0, 0, 1))
        # 1 forwards to 2 and drops its own use immediately (Figure 1).
        config = fire(config, "make_copy", (1, 2, 0))
        config = fire(config, "mutator_drop", (1, 0))
        finalize = RULES_BY_NAME["finalize"]
        assert (1, 0) not in set(finalize.candidates(config))
        check_all(config)


class TestRandomRuns:
    def test_random_runs_preserve_invariants(self):
        machine = Machine()
        for seed in range(20):
            config = init(nprocs=3, nrefs=1, copies_left=3)
            machine.run_random(
                config, seed=seed,
                observer=lambda cfg, _t: check_all(cfg),
            )

    def test_quiescence_empties_dirty_tables(self):
        """Liveness (Theorem 21): after the mutator stops and all
        messages drain, the owner's dirty tables are empty."""
        machine = Machine()
        for seed in range(20):
            config = init(nprocs=3, nrefs=1, copies_left=3)
            final = machine.run_random(config, seed=seed)
            # At quiescence, only OK-at-owner and reachable remain.
            assert not final.tdirty
            assert not final.pdirty or all(
                final.rec_of(client, ref) is RefState.OK
                for (_o, ref, client) in final.pdirty
            )

    def test_gc_quiescence_measure_bound(self):
        """Collector steps between mutator actions never exceed the
        termination measure (the liveness bound is tight-ish)."""
        machine = Machine()
        config = init(nprocs=3, nrefs=1, copies_left=2)
        config = fire(config, "make_copy", (0, 1, 0))
        config = fire(config, "make_copy", (0, 2, 0))
        measure = termination_measure(config)
        steps = 0
        while True:
            transitions = machine.enabled_gc_only(config)
            if not transitions:
                break
            config = transitions[0].fire(config)
            steps += 1
        assert steps <= measure
