"""Termination-measure tests (Definition 15 / Lemmas 16-17)."""

import pytest

from repro.model import Machine, initial_configuration, termination_measure
from repro.model.measure import MSG_MEASURE, RT_MEASURE
from repro.dgc.states import RefState


class TestWeights:
    def test_paper_weights(self):
        assert MSG_MEASURE == {
            "copy": 14, "dirty": 8, "dirty_ack": 6,
            "clean": 3, "copy_ack": 1, "clean_ack": 1,
        }
        assert RT_MEASURE[RefState.OK] == 5
        assert RT_MEASURE[RefState.CCITNIL] == 2
        assert RT_MEASURE[RefState.CCIT] == 1
        assert RT_MEASURE[RefState.NIL] == 1
        assert RT_MEASURE[RefState.NONEXISTENT] == 0


class TestStrictDecrease:
    """Lemma 16: every collector transition strictly decreases the
    measure — verified over every transition of an exhaustive walk."""

    @pytest.mark.parametrize("nprocs,copies", [(2, 2), (3, 2)])
    def test_collector_transitions_decrease(self, nprocs, copies):
        import collections

        machine = Machine()
        initial = initial_configuration(
            nprocs=nprocs, nrefs=1, copies_left=copies
        )
        seen = {initial}
        queue = collections.deque([initial])
        checked = 0
        while queue:
            config = queue.popleft()
            before = termination_measure(config)
            for transition in machine.enabled(config):
                successor = transition.fire(config)
                after = termination_measure(successor)
                if not transition.rule.mutator:
                    assert after < before, (
                        f"{transition} did not decrease the measure "
                        f"({before} -> {after})"
                    )
                assert after >= 0
                checked += 1
                if successor not in seen:
                    seen.add(successor)
                    queue.append(successor)
        assert checked > 100

    def test_mutator_may_increase(self):
        machine = Machine()
        config = initial_configuration(nprocs=2, nrefs=1, copies_left=1)
        before = termination_measure(config)
        make_copy = [
            t for t in machine.enabled(config)
            if t.rule.name == "make_copy"
        ][0]
        after = termination_measure(make_copy.fire(config))
        assert after > before


class TestTermination:
    def test_gc_always_quiesces(self):
        """Lemma 17: collector-only runs terminate from any state."""
        machine = Machine()
        for seed in range(10):
            config = initial_configuration(nprocs=3, nrefs=1, copies_left=3)
            # Random mixed run for a while, then pure GC drain.
            partial = machine.run_random(
                config, seed=seed, max_steps=30, require_quiescence=False
            )
            drained = machine.run_to_gc_quiescence(partial)
            assert machine.enabled_gc_only(drained) == []

    def test_quiescent_measure_is_residual(self):
        """At full quiescence only OK states (owner + live clients)
        contribute to the measure."""
        machine = Machine()
        config = initial_configuration(nprocs=2, nrefs=1, copies_left=2)
        final = machine.run_random(config, seed=1)
        ok_count = sum(
            1 for state in final.rec if state is RefState.OK
        )
        assert termination_measure(final) == 5 * ok_count
