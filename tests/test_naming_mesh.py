"""The replicated naming mesh: gossip convergence, tombstones, leader
election and failover, late joins, client-side discovery/retry."""

import threading
import time

import pytest

from repro import GcConfig, NameServiceError, Space
from repro.naming.agent import MESH_NAME, MESH_RPC_NAME
from repro.naming.discovery import ReplicatedAgent
from repro.naming.mesh import MeshAgent, MeshConfig, _Record
from tests.helpers import Counter, wait_until

GOSSIP = 0.05


def fast_config() -> MeshConfig:
    return MeshConfig(gossip_interval=GOSSIP, suspect_after=2,
                      election_timeout=0.5, tombstone_ttl=30.0)


class Mesh:
    """N in-process mesh replicas plus teardown bookkeeping."""

    def __init__(self, n: int, tag: str, ping_interval=None):
        self.spaces = []
        self.agents = []
        seeds = []
        for rid in range(1, n + 1):
            agent = MeshAgent(rid, config=fast_config())
            space = Space(
                f"mesh{rid}-{tag}",
                listen=[f"inproc://mesh-{tag}-{rid}"],
                gc=GcConfig(ping_interval=ping_interval,
                            ping_timeout=0.2, ping_max_failures=2),
                agent=agent,
            )
            agent.activate(join=list(seeds))
            seeds.append(space.endpoints[0])
            self.spaces.append(space)
            self.agents.append(agent)
        self.endpoints = list(seeds)

    def shutdown(self):
        for space in self.spaces:
            space.shutdown()

    def converged(self, name, predicate):
        """True when ``predicate(table value or None)`` holds on every
        live replica."""
        for space, agent in zip(self.spaces, self.agents):
            if space.closed:
                continue
            try:
                value = agent.get(name)
            except NameServiceError:
                value = None
            if not predicate(value):
                return False
        return True


@pytest.fixture()
def mesh3(request):
    mesh = Mesh(3, request.node.name.replace("[", "-").replace("]", ""))
    yield mesh
    mesh.shutdown()


class TestGossipConvergence:
    def test_put_reaches_every_replica(self, mesh3):
        mesh3.agents[0].put("alpha", 1)
        assert wait_until(
            lambda: mesh3.converged("alpha", lambda v: v == 1), timeout=5
        )

    def test_remove_tombstones_everywhere(self, mesh3):
        mesh3.agents[1].put("beta", 2)
        assert wait_until(
            lambda: mesh3.converged("beta", lambda v: v == 2), timeout=5
        )
        mesh3.agents[2].remove("beta")
        assert wait_until(
            lambda: mesh3.converged("beta", lambda v: v is None), timeout=5
        )
        # The tombstone keeps the name dead through later gossip.
        time.sleep(GOSSIP * 6)
        assert mesh3.converged("beta", lambda v: v is None)

    def test_concurrent_writes_from_all_replicas_converge(self, mesh3):
        def write(agent, k):
            for i in range(10):
                agent.put(f"key-{k}-{i}", (k, i))

        threads = [threading.Thread(target=write, args=(agent, k),
                                    daemon=True)
                   for k, agent in enumerate(mesh3.agents)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=20)
        expected = sorted(
            f"key-{k}-{i}" for k in range(3) for i in range(10)
        )
        assert wait_until(
            lambda: all(agent.list() == expected
                        for agent in mesh3.agents),
            timeout=10,
        )

    def test_same_name_written_twice_converges_to_one_value(self, mesh3):
        mesh3.agents[0].put("contested", "first")
        mesh3.agents[2].put("contested", "second")
        def settled():
            try:
                values = {agent.get("contested")
                          for agent in mesh3.agents}
            except NameServiceError:
                return False   # still propagating
            return len(values) == 1

        assert wait_until(settled, timeout=5)

    def test_late_joiner_catches_up_in_one_join(self, request, mesh3):
        for i in range(5):
            mesh3.agents[0].put(f"pre-{i}", i)
        assert wait_until(
            lambda: mesh3.converged("pre-4", lambda v: v == 4), timeout=5
        )
        tag = request.node.name.replace("[", "-").replace("]", "")
        agent = MeshAgent(9, config=fast_config())
        space = Space(
            f"mesh9-{tag}", listen=[f"inproc://mesh-{tag}-9"],
            gc=GcConfig(ping_interval=None), agent=agent,
        )
        try:
            agent.activate(join=[mesh3.endpoints[0]])
            # The join reply carries the whole record set: no gossip
            # round needed to see every earlier registration.
            assert agent.get("pre-0") == 0
            assert agent.get("pre-4") == 4
            assert wait_until(
                lambda: agent.naming_stats()["roster_live"] == 4,
                timeout=5,
            )
        finally:
            space.shutdown()


class TestLeadership:
    def test_a_leader_emerges_and_is_shared(self, mesh3):
        assert wait_until(
            lambda: len({a._leader for a in mesh3.agents}) == 1
            and mesh3.agents[0]._leader is not None,
            timeout=5,
        )

    def test_leader_death_elects_a_survivor(self, mesh3):
        assert wait_until(
            lambda: all(a._leader is not None for a in mesh3.agents),
            timeout=5,
        )
        leader = mesh3.agents[0]._leader
        index = leader - 1   # replica ids are 1-based
        mesh3.spaces[index].shutdown()
        survivors = [a for a in mesh3.agents
                     if a.replica_id != leader]
        # A write through a survivor forces failure detection and an
        # election; it must succeed within the forward budget.
        survivors[0].put("after-kill", 42)
        assert wait_until(
            lambda: all(a._leader is not None and a._leader != leader
                        for a in survivors),
            timeout=10,
        )
        def sees_write():
            try:
                return all(a.get("after-kill") == 42 for a in survivors)
            except NameServiceError:
                return False

        assert wait_until(sees_write, timeout=10)
        assert any(a.naming_stats()["failovers"] >= 1
                   or a.naming_stats()["elections"] >= 1
                   for a in survivors)

    def test_writes_through_any_replica_reach_all(self, mesh3):
        for k, agent in enumerate(mesh3.agents):
            agent.put(f"via-{k}", k)
        assert wait_until(
            lambda: all(
                mesh3.converged(f"via-{k}", lambda v, k=k: v == k)
                for k in range(3)
            ),
            timeout=10,
        )


class TestDiscoveryDocument:
    def test_mesh_name_resolves_to_the_roster(self, mesh3):
        info = mesh3.agents[0].get(MESH_NAME)
        assert info["replica_id"] == 1
        assert wait_until(
            lambda: len(mesh3.agents[0].get(MESH_NAME)["roster"]) == 3,
            timeout=5,
        )

    def test_reserved_names_hidden_from_list(self, mesh3):
        mesh3.agents[0].put("visible", 1)
        assert wait_until(
            lambda: mesh3.converged("visible", lambda v: v == 1),
            timeout=5,
        )
        for agent in mesh3.agents:
            assert agent.list() == ["visible"]
            assert agent.get(MESH_RPC_NAME) is not None

    def test_naming_stats_section(self, mesh3):
        stats = mesh3.spaces[0].stats()["naming"]
        assert stats["mode"] == "mesh"
        assert stats["replica_id"] == 1
        for key in ("leader", "entries", "tombstones", "roster_live",
                    "gossip_rounds", "entries_synced", "elections",
                    "failovers"):
            assert key in stats, key


class TestReplicatedAgent:
    def test_discovers_the_full_roster_from_one_seed(self, mesh3):
        with Space("client") as client:
            agent = ReplicatedAgent(client, [mesh3.endpoints[0]])
            assert agent.mode == "mesh"
            assert wait_until(
                lambda: (agent.refresh() or len(agent.replicas) == 3),
                timeout=5,
            )

    def test_put_and_get_round_trip(self, mesh3):
        with Space(
            "client", listen=["inproc://mesh-client-rt"]
        ) as client:
            agent = ReplicatedAgent(client, [mesh3.endpoints[0]])
            agent.put("svc", Counter(11))
            assert agent.get("svc").value() == 11
            assert wait_until(lambda: "svc" in agent.list(), timeout=5)

    def test_get_fails_over_a_dead_replica(self, mesh3):
        with Space("client") as client:
            agent = ReplicatedAgent(client, [mesh3.endpoints[0]],
                                    backoff=0.01)
            mesh3.agents[0].put("durable", 5)
            assert wait_until(
                lambda: mesh3.converged("durable", lambda v: v == 5),
                timeout=5,
            )
            wait_until(lambda: (agent.refresh() or
                                len(agent.replicas) == 3), timeout=5)
            mesh3.spaces[1].shutdown()   # one replica dies
            # Every lookup must still succeed, whichever replica the
            # round-robin lands on.
            for _ in range(6):
                assert agent.get("durable") == 5
            assert agent.failovers >= 1

    def test_single_agent_seed_degrades_gracefully(self, request):
        endpoint = f"inproc://single-{request.node.name}"
        with Space("lone", listen=[endpoint]) as lone, \
                Space("client") as client:
            lone.serve("only", Counter(3))
            agent = ReplicatedAgent(client, [endpoint])
            assert agent.mode == "single"
            assert agent.replicas == [endpoint]
            assert agent.get("only").value() == 3
            with pytest.raises(NameServiceError):
                agent.get("nope")

    def test_unreachable_seeds_raise_name_service_error(self):
        with Space("client") as client:
            with pytest.raises(NameServiceError):
                ReplicatedAgent(
                    client, ["tcp://127.0.0.1:1"], max_attempts=2,
                )

    def test_miss_is_checked_on_every_replica_before_raising(self, mesh3):
        with Space("client") as client:
            agent = ReplicatedAgent(client, [mesh3.endpoints[0]])
            with pytest.raises(NameServiceError):
                agent.get("never-registered")


class TestDeadOwnerSweepOnMesh:
    def test_sweep_tombstones_and_gossips(self, request):
        tag = request.node.name.replace("[", "-").replace("]", "")
        mesh = Mesh(2, tag, ping_interval=0.05)
        owner = Space(
            "mortal", listen=[f"inproc://mesh-owner-{tag}"],
            gc=GcConfig(ping_interval=0.05, ping_timeout=0.2,
                        ping_max_failures=2),
        )
        try:
            owner_agent = owner.import_object(mesh.endpoints[0])
            owner_agent.put("doomed", Counter())
            assert wait_until(
                lambda: mesh.converged("doomed", lambda v: v is not None),
                timeout=5,
            )
            owner.shutdown()
            # The pinger on replica 1 purges the owner; the sweep
            # tombstones the name, and gossip removes it everywhere.
            assert wait_until(
                lambda: mesh.converged("doomed", lambda v: v is None),
                timeout=10,
            )
        finally:
            owner.shutdown()
            mesh.shutdown()


class TestVersionedMergeUnit:
    def make_agent(self):
        return MeshAgent(1, config=fast_config())

    def test_higher_version_wins(self):
        agent = self.make_agent()
        with agent._lock:
            assert agent._apply_locked("n", (2, 1), "new", False)
            assert not agent._apply_locked("n", (1, 9), "old", False)
        assert agent.get("n") == "new"

    def test_replica_id_breaks_lamport_ties(self):
        agent = self.make_agent()
        with agent._lock:
            assert agent._apply_locked("n", (3, 1), "low", False)
            assert agent._apply_locked("n", (3, 2), "high", False)
            assert not agent._apply_locked("n", (3, 1), "low", False)
        assert agent.get("n") == "high"

    def test_tombstone_beats_older_value(self):
        agent = self.make_agent()
        with agent._lock:
            assert agent._apply_locked("n", (1, 1), "v", False)
            assert agent._apply_locked("n", (2, 1), None, True)
            assert not agent._apply_locked("n", (1, 2), "zombie", False)
        with pytest.raises(NameServiceError):
            agent.get("n")

    def test_tombstones_are_garbage_collected(self):
        agent = self.make_agent()
        agent.config.tombstone_ttl = 0.0
        with agent._lock:
            agent._apply_locked("n", (1, 1), None, True)
        assert "n" in agent._records
        time.sleep(0.01)
        agent._gc_tombstones()
        assert "n" not in agent._records

    def test_record_wire_round_trip(self):
        record = _Record((4, 2), "value", False, 0.0)
        assert record.wire("name") == ("name", (4, 2), "value", False)


class TestReplicaIdAssignment:
    """``MeshAgent(replica_id=None)``: leader-granted ids at join."""

    def test_first_replica_without_seeds_takes_id_one(self, request):
        tag = request.node.name
        agent = MeshAgent(config=fast_config())
        assert agent.replica_id is None
        space = Space(
            f"mesh-auto1-{tag}", listen=[f"inproc://mesh-{tag}-a"],
            gc=GcConfig(ping_interval=None), agent=agent,
        )
        try:
            agent.activate(join=())
            assert agent.replica_id == 1
            assert agent.naming_stats()["replica_id"] == 1
        finally:
            space.shutdown()

    def test_joiner_is_granted_next_id_above_manual_ones(self, request):
        # Replicas 1 and 2 exist; an auto-id joiner asking the
        # *non-leader* seed still ends up with a leader-granted 3,
        # exercising the forward path.
        tag = request.node.name
        mesh = Mesh(2, tag)
        try:
            assert wait_until(
                lambda: len({a._leader for a in mesh.agents}) == 1
                and mesh.agents[0]._leader is not None,
                timeout=5,
            )
            leader = mesh.agents[0]._leader
            non_leader = next(
                i for i, a in enumerate(mesh.agents)
                if a.replica_id != leader
            )
            agent = MeshAgent(config=fast_config())
            space = Space(
                f"mesh-auto-{tag}", listen=[f"inproc://mesh-{tag}-auto"],
                gc=GcConfig(ping_interval=None), agent=agent,
            )
            try:
                agent.activate(join=[mesh.endpoints[non_leader]])
                assert agent.replica_id == 3
                # The granted replica is a full participant: its write
                # converges on every manually-numbered replica.
                agent.put("granted", 42)
                assert wait_until(
                    lambda: mesh.converged("granted", lambda v: v == 42),
                    timeout=5,
                )
            finally:
                space.shutdown()
        finally:
            mesh.shutdown()

    def test_grants_are_distinct_before_roster_registration(self):
        # Two joiners served back-to-back, neither yet in the roster:
        # the grantor's _granted_ids memory keeps the ids unique.
        agent = MeshAgent(5, config=fast_config())
        first = agent._handle_assign_id([])
        second = agent._handle_assign_id([])
        assert first == 6
        assert second == 7
