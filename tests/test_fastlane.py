"""The protocol v5 call fast lane.

Covers the three stacked per-call eliminations — method-id interning
(CALL_BIND/CALL_BOUND), typed scalar argument/result codecs
(CALL_FAST/RESULT_FAST), and budgeted inline reactor dispatch for
``@quick`` methods — plus the interop story: a v5 space facing a v4
peer must behave byte-for-byte like a v4 space, in either dial
direction, and a below-floor peer must fail fast instead of
deadlocking.  Also the zero-copy regression for ``Call.decode`` fed
``bytes`` instead of a memoryview, and the GC obligation that a
server-side method binding never pins its object against the
distributed collector.
"""

from __future__ import annotations

import gc as pygc
import threading
import time

import pytest

from repro import NetObj, ProtocolError, Space, quick, wiretypes
from repro.core import typecodes
from repro.errors import UnmarshalError
from repro.rpc import messages
from repro.wire import protocol
from repro.wire.ids import fresh_space_id
from repro.wire.wirerep import WireRep
from tests.helpers import wait_until


class FastEcho(NetObj):
    """Scalar-only signatures (annotated or declared) plus escapes."""

    @quick
    def add(self, a: int, b: int) -> int:
        return a + b

    def nothing(self) -> None:
        pass

    @wiretypes(int, str)
    def label(self, n, text):
        return f"{text}:{n}"

    def loose(self, x: int):
        # Scalar *signature*; the runtime must still cope with callers
        # passing non-scalar values (falls back to the pickle lane).
        return x

    def anything(self, value):
        return value


class Sleeper(NetObj):
    """A mis-marked @quick method: blocks far past the demote bound."""

    @quick
    def nap(self) -> None:
        time.sleep(0.05)

    @quick
    def tick(self) -> int:
        return 1


class Token(NetObj):
    def ping(self) -> str:
        return "pong"


class TokenFactory(NetObj):
    def make(self):
        return Token()


def _pair(tag: str, server_kwargs=None, client_kwargs=None):
    server = Space(f"fl-srv-{tag}", listen=["tcp://127.0.0.1:0"],
                   shm="off", **(server_kwargs or {}))
    client = Space(f"fl-cli-{tag}", shm="off", **(client_kwargs or {}))
    return server, client, server.endpoints[0]


class TestTypedCodecs:
    """Unit-level: the scalar wire format in core.typecodes."""

    def roundtrip(self, *args):
        out = bytearray()
        assert typecodes.encode_scalar_args_into(out, args)
        return typecodes.decode_scalar_args(bytes(out))

    def test_every_scalar_type_roundtrips(self):
        values = (None, True, False, 0, 1, -1, 12345, -98765,
                  2**63 - 1, -(2**63) + 1, 0.0, -2.5, 1e300,
                  "", "héllo", "x" * 500, b"", b"\x00\xff", b"y" * 500)
        assert self.roundtrip(*values[:15]) == values[:15]
        assert self.roundtrip(*values[15:]) == values[15:]

    def test_bool_is_not_int_on_the_wire(self):
        out = bytearray()
        assert typecodes.encode_scalar_args_into(out, (True, 1))
        decoded = typecodes.decode_scalar_args(bytes(out))
        assert decoded == (True, 1)
        assert type(decoded[0]) is bool and type(decoded[1]) is int

    def test_oversize_int_refused_with_rollback(self):
        out = bytearray(b"prefix")
        assert not typecodes.encode_scalar_args_into(out, (5, 1 << 64))
        assert out == b"prefix"  # full rollback, no partial frame

    def test_nonscalar_refused_with_rollback(self):
        out = bytearray(b"p")
        assert not typecodes.encode_scalar_args_into(out, ([1], 2))
        assert out == b"p"
        assert not typecodes.encode_scalar_result_into(out, {"a": 1})
        assert out == b"p"

    def test_too_many_args_refused(self):
        out = bytearray()
        assert not typecodes.encode_scalar_args_into(out, (1,) * 256)
        assert out == b""

    def test_trailing_garbage_rejected(self):
        out = bytearray()
        assert typecodes.encode_scalar_args_into(out, (7,))
        with pytest.raises(UnmarshalError):
            typecodes.decode_scalar_args(bytes(out) + b"\x00")

    def test_wiretypes_rejects_nonscalar_declarations(self):
        with pytest.raises(TypeError):
            @wiretypes(list)
            def bad(self, x):  # pragma: no cover - never called
                return x

    def test_fastlane_method_set_inference(self):
        fast = typecodes.fastlane_method_set(FastEcho)
        assert "add" in fast        # annotated scalars
        assert "nothing" in fast    # zero-parameter
        assert "label" in fast      # @wiretypes declaration
        assert "loose" in fast      # annotated scalar signature
        assert "anything" not in fast  # unannotated parameter


class TestCallDecodeCopyDiscipline:
    """Regression: decode fed ``bytes`` (not a memoryview) must still
    hand out zero-copy memoryview slices for trailing payloads."""

    def test_call_args_pickle_is_memoryview_from_bytes(self):
        rep = WireRep(fresh_space_id("own"), 3)
        out = bytearray()
        messages.Call(7, rep, "m", b"PAYLOAD").encode_into(out)
        decoded = messages.decode(bytes(out))
        assert isinstance(decoded.args_pickle, memoryview)
        assert bytes(decoded.args_pickle) == b"PAYLOAD"

    def test_fast_frames_are_memoryview_from_bytes(self):
        out = bytearray()
        messages.FastCall(9, 2, b"ARGS").encode_into(out)
        decoded = messages.decode(bytes(out))
        assert isinstance(decoded.args_wire, memoryview)
        out = bytearray()
        messages.FastResult(9, b"VAL").encode_into(out)
        decoded = messages.decode(bytes(out))
        assert isinstance(decoded.value_wire, memoryview)


class TestFastLaneRuntime:
    def test_interning_binds_once_then_rides_fast_frames(self):
        server, client, endpoint = _pair("intern")
        with server, client:
            server.serve("e", FastEcho())
            e = client.import_object(endpoint, "e")
            bound_after_import = client.methods_bound
            for _ in range(20):
                assert e.nothing() is None
            # One CALL_BIND for ``nothing``; the other 19 are CALL_FAST.
            assert client.methods_bound == bound_after_import + 1
            assert client.fastlane_calls >= 19
            connection = client.cache.get(endpoint)
            assert any(m == "nothing" for (_rep, m) in connection.method_ids)

    def test_scalar_args_and_results_roundtrip(self):
        server, client, endpoint = _pair("scalar")
        with server, client:
            server.serve("e", FastEcho())
            e = client.import_object(endpoint, "e")
            assert e.add(2, 3) == 5           # bind call
            assert e.add(-10, 4) == -6        # fast call
            assert e.label(7, "tok") == "tok:7"
            assert e.label(8, "tok") == "tok:8"
            assert e.loose(2.5) == 2.5
            assert e.loose(b"raw") == b"raw"
            assert client.fastlane_calls >= 3

    def test_nonconforming_args_fall_back_to_pickle_per_call(self):
        server, client, endpoint = _pair("fallback")
        with server, client:
            server.serve("e", FastEcho())
            e = client.import_object(endpoint, "e")
            assert e.loose(1) == 1                    # bind
            assert e.loose(2) == 2                    # fast lane
            fast_before = client.fastlane_calls
            assert e.loose([1, 2]) == [1, 2]          # non-scalar value
            assert e.loose(1 << 80) == 1 << 80        # beyond 64-bit
            assert client.fastlane_fallbacks >= 2
            # The binding is not poisoned: conforming calls go fast again.
            assert e.loose(3) == 3
            assert client.fastlane_calls >= fast_before + 1

    def test_quick_methods_dispatch_inline_on_the_reactor(self):
        server, client, endpoint = _pair("inline")
        with server, client:
            server.serve("s", Sleeper())
            s = client.import_object(endpoint, "s")
            assert s.tick() == 1  # bind call: normal dispatch
            for _ in range(30):
                assert s.tick() == 1
            assert wait_until(
                lambda: server.reactor.stats()["inline_dispatches"] >= 10
            )
            assert server.inline_demotions == 0

    def test_misdeclared_quick_is_demoted_without_stalling_the_shard(self):
        server, client_a, endpoint = _pair(
            "demote", server_kwargs={"reactor_shards": 1}
        )
        client_b = Space("fl-cli-demote-b", shm="off")
        with server, client_a, client_b:
            server.serve("s", Sleeper())
            sleeper = client_a.import_object(endpoint, "s")
            other = client_b.import_object(endpoint, "s")
            sleeper.nap()  # bind call: dispatcher path, no inline yet

            failures = []

            def blocker():
                try:
                    sleeper.nap()  # CALL_FAST: inlined, overruns, demotes
                except Exception as exc:  # pragma: no cover - diagnostics
                    failures.append(exc)

            thread = threading.Thread(target=blocker)
            thread.start()
            # The second connection keeps making progress while the
            # mis-marked method blocks the shard's inline budget.
            for _ in range(10):
                assert other.tick() == 1
            thread.join(5)
            assert not thread.is_alive() and not failures
            assert wait_until(lambda: server.inline_demotions == 1)

            # inline_dispatches is accounted *after* a call's result
            # frame is sent, so the last tick's increment can trail its
            # reply; settle the counter before sampling it.
            def inline_count_settled():
                count = server.reactor.stats()["inline_dispatches"]
                time.sleep(0.05)
                return count == server.reactor.stats()["inline_dispatches"]

            assert wait_until(inline_count_settled)
            # The demoted binding never runs inline again.
            inlined = server.reactor.stats()["inline_dispatches"]
            sleeper.nap()
            assert server.reactor.stats()["inline_dispatches"] == inlined
            assert server.inline_demotions == 1

    def test_async_calls_ride_the_fast_lane(self):
        from repro import async_call

        server, client, endpoint = _pair("async")
        with server, client:
            server.serve("e", FastEcho())
            e = client.import_object(endpoint, "e")
            assert e.add(1, 1) == 2  # bind
            fast_before = client.fastlane_calls
            futures = [async_call(e.add, i, i) for i in range(20)]
            assert [f.result(10) for f in futures] \
                == [2 * i for i in range(20)]
            assert client.fastlane_calls >= fast_before + 20
            # Non-conforming async values fall back per call, same as
            # the blocking path.
            assert async_call(e.loose, [5]).result(10) == [5]

    def test_binding_does_not_pin_object_against_the_collector(self):
        server, client, endpoint = _pair("gcpin")
        with server, client:
            server.serve("f", TokenFactory())
            factory = client.import_object(endpoint, "f")
            exported0 = server.stats()["gc"]["exported"]
            token = factory.make()
            assert token.ping() == "pong"  # binds Token.ping server-side
            assert token.ping() == "pong"  # rides the binding
            assert server.stats()["gc"]["exported"] == exported0 + 1
            del token
            pygc.collect()
            assert client.cleanup_daemon.wait_idle(10)
            # The weakly-held binding must not keep the token exported.
            assert wait_until(
                lambda: server.stats()["gc"]["exported"] == exported0
            )


class TestVersionInterop:
    def test_v5_dialer_to_v4_acceptor_never_uses_v5_frames(self):
        server, client, endpoint = _pair(
            "v4srv", server_kwargs={"protocol_version": 4}
        )
        with server, client:
            server.serve("e", FastEcho())
            e = client.import_object(endpoint, "e")
            assert client.cache.get(endpoint).version == 4
            assert e.add(2, 3) == 5
            assert e.nothing() is None
            assert e.anything({"k": [1]}) == {"k": [1]}
            assert client.methods_bound == 0
            assert client.fastlane_calls == 0
            assert server.reactor.stats()["inline_dispatches"] == 0

    def test_v4_dialer_to_v5_acceptor_is_served_classically(self):
        server, client, endpoint = _pair(
            "v4cli", client_kwargs={"protocol_version": 4}
        )
        with server, client:
            server.serve("e", FastEcho())
            e = client.import_object(endpoint, "e")
            assert client.cache.get(endpoint).version == 4
            assert e.add(2, 3) == 5
            assert e.label(1, "a") == "a:1"
            assert client.methods_bound == 0
            assert server.reactor.stats()["inline_dispatches"] == 0

    def test_below_floor_peer_fails_fast(self):
        server, client, endpoint = _pair(
            "floor", client_kwargs={"protocol_version": 1}
        )
        with server, client:
            with pytest.raises(ProtocolError):
                client.import_object(endpoint, "e")
