"""Mesh soak test: several spaces, mixed workload, then total drain.

A small "production-shaped" scenario: four spaces form a mesh; each
publishes a service, calls the others, and weaves references through
third parties, concurrently.  At the end every borrowed reference is
dropped and every space's collector books must return to zero — the
system-level statement of the liveness theorem.
"""

import gc as pygc
import random
import threading
import weakref

import pytest

from repro import NetObj, Space
from tests.helpers import wait_until


class Service(NetObj):
    """Each space's service: makes items, stores refs, calls peers."""

    def __init__(self, name: str):
        self.name = name
        self.spawned = []
        self.shelf = []
        self._lock = threading.Lock()

    def make(self):
        item = Item(self.name)
        with self._lock:
            self.spawned.append(weakref.ref(item))
        return item

    def hold(self, item) -> int:
        with self._lock:
            self.shelf.append(item)
            return len(self.shelf)

    def poke_all(self) -> int:
        with self._lock:
            items = list(self.shelf)
        return sum(1 for item in items if item.tag() is not None)

    def release(self) -> int:
        with self._lock:
            count = len(self.shelf)
            self.shelf.clear()
        pygc.collect()
        return count

    def live(self) -> int:
        pygc.collect()
        with self._lock:
            return sum(1 for ref in self.spawned if ref() is not None)


class Item(NetObj):
    def __init__(self, origin: str):
        self.origin = origin

    def tag(self) -> str:
        return self.origin


NAMES = ("north", "south", "east", "west")


@pytest.fixture()
def mesh(request):
    suffix = request.node.name
    spaces = {
        name: Space(name, listen=[f"inproc://{name}-{suffix}"])
        for name in NAMES
    }
    services = {}
    for name, space in spaces.items():
        service = Service(name)
        services[name] = service
        space.serve("svc", service)
    yield spaces, services
    for space in spaces.values():
        space.shutdown()


class TestMeshSoak:
    def test_mixed_workload_then_total_drain(self, mesh):
        spaces, services = mesh
        errors = []

        def worker(name: str, seed: int):
            rng = random.Random(seed)
            space = spaces[name]
            peers = {
                other: space.import_object(
                    spaces[other].endpoints[0], "svc"
                )
                for other in NAMES if other != name
            }
            try:
                local = []
                for _ in range(25):
                    action = rng.choice(["make", "handoff", "poke", "drop"])
                    if action == "make":
                        peer = rng.choice(sorted(peers))
                        local.append(peers[peer].make())
                    elif action == "handoff" and local:
                        item = rng.choice(local)
                        target = rng.choice(sorted(peers))
                        peers[target].hold(item)
                    elif action == "poke":
                        target = rng.choice(sorted(peers))
                        peers[target].poke_all()
                    elif action == "drop" and local:
                        local.pop(rng.randrange(len(local)))
                        pygc.collect()
                local.clear()
                pygc.collect()
            except Exception as exc:  # noqa: BLE001
                errors.append((name, exc))

        threads = [
            threading.Thread(target=worker, args=(name, i))
            for i, name in enumerate(NAMES)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180)
        assert not errors, errors

        # Everything still shelved must be alive and pokeable.
        with Space("auditor") as auditor:
            for name in NAMES:
                remote = auditor.import_object(
                    spaces[name].endpoints[0], "svc"
                )
                remote.poke_all()
                remote.release()

        # Total drain: all items reclaimed, all books at zero.
        for name in NAMES:
            assert wait_until(
                lambda n=name: services[n].live() == 0, timeout=30
            ), f"{name} leaked items"
        for name in NAMES:
            stats = spaces[name].stats()["gc"]
            assert stats["transient_pins"] == 0, (name, stats)
            # Only the pinned agent and the served Service may remain.
            assert stats["exported"] <= 2, (name, stats)
