"""The sharded I/O plane: ReactorPool placement and SO_REUSEPORT
listener sharding (with its single-socket fallback)."""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro import Space
from repro.core.netobj import NetObj
from repro.transport.inprocess import channel_pair
from repro.transport.reactor import (
    Reactor,
    ReactorPool,
    default_reactor_shards,
)
from repro.transport.tcp import TcpTransport


class Echo(NetObj):
    def echo(self, value):
        return value


class _Sink:
    def __init__(self):
        self.frames = []
        self.closed = threading.Event()

    def on_frame(self, frame):
        self.frames.append(bytes(frame))

    def on_closed(self, failure):
        self.closed.set()


class TestReactorPool:
    def test_register_returns_least_loaded_shard(self):
        pool = ReactorPool(shards=3, name="pool-place")
        pool.start()
        channels = []
        try:
            picked = []
            for _ in range(6):
                a, b = channel_pair()
                channels += [a, b]
                picked.append(pool.register(a, _Sink()).index)
            # Eager assignment: a burst interleaves 0,1,2,0,1,2 instead
            # of piling onto whichever shard polled as empty first.
            assert picked == [0, 1, 2, 0, 1, 2]
            assert [r.load for r in pool.reactors] == [2, 2, 2]
        finally:
            for channel in channels:
                channel.close()
            pool.stop()

    def test_load_drops_when_channel_closes(self):
        pool = ReactorPool(shards=2, name="pool-load")
        pool.start()
        a, b = channel_pair()
        try:
            shard = pool.register(a, _Sink())
            assert shard.load == 1
            a.close()
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline and shard.load:
                time.sleep(0.02)
            assert shard.load == 0
        finally:
            b.close()
            pool.stop()

    def test_stats_aggregate_and_per_shard(self):
        pool = ReactorPool(shards=2, name="pool-stats")
        pool.start()
        try:
            stats = pool.stats()
            assert stats["shards"] == 2
            assert len(stats["per_shard"]) == 2
            assert {"frames_in", "frames_out", "wakeups",
                    "active_connections"} <= set(stats)
        finally:
            pool.stop()

    def test_single_shard_keeps_plain_reactor_name(self):
        pool = ReactorPool(shards=1, name="solo")
        assert pool.reactors[0].name == "solo"
        multi = ReactorPool(shards=2, name="duo")
        assert [r.name for r in multi.reactors] == ["duo.0", "duo.1"]

    def test_timers_arm_on_shard_zero(self):
        pool = ReactorPool(shards=2, name="pool-timer")
        pool.start()
        fired = threading.Event()
        try:
            pool.add_timer(0.01, fired.set)
            assert fired.wait(5)
        finally:
            pool.stop()

    def test_default_shard_count_tracks_cpus(self):
        import os

        assert default_reactor_shards() == max(
            1, min(4, os.cpu_count() or 1)
        )

    def test_space_spreads_connections_across_shards(self):
        with Space("spread-srv", listen=["tcp://127.0.0.1:0"],
                   reactor_shards=3, shm="off") as server:
            server.serve("echo", Echo())
            clients = [Space(f"spread-c{i}", shm="off") for i in range(3)]
            try:
                for client in clients:
                    echo = client.import_object(server.endpoints[0], "echo")
                    assert echo.echo("x") == "x"
                per_shard = server.stats()["reactor"]["per_shard"]
                assert sum(s["active_connections"] for s in per_shard) == 3
                # Least-loaded placement: one connection per shard.
                assert [s["active_connections"] for s in per_shard] \
                    == [1, 1, 1]
            finally:
                for client in clients:
                    client.shutdown()


class TestReusePortSharding:
    def test_sharded_listener_accepts_on_every_socket(self):
        transport = TcpTransport(listener_shards=4)
        accepted = []
        ready = threading.Event()

        def on_connect(channel):
            accepted.append(channel)
            ready.set()

        listener = transport.listen("tcp://127.0.0.1:0", on_connect)
        try:
            assert listener.shards == 4
            channel = transport.connect(listener.endpoint)
            assert ready.wait(5)
            channel.send(b"hi")  # the channel works end to end
            channel.close()
        finally:
            for channel in accepted:
                channel.close()
            listener.close()

    def test_fallback_without_so_reuseport(self, monkeypatch):
        """Platforms with no SO_REUSEPORT get one shared socket and
        identical behaviour above the accept path."""
        monkeypatch.delattr(socket, "SO_REUSEPORT", raising=False)
        transport = TcpTransport(listener_shards=4)
        accepted = []
        ready = threading.Event()

        def on_connect(channel):
            accepted.append(channel)
            ready.set()

        listener = transport.listen("tcp://127.0.0.1:0", on_connect)
        try:
            assert listener.shards == 1
            channel = transport.connect(listener.endpoint)
            assert ready.wait(5)
            channel.close()
        finally:
            for channel in accepted:
                channel.close()
            listener.close()

    def test_fallback_space_end_to_end(self, monkeypatch):
        """A whole Space on the fallback path: every E-series behaviour
        (serve, import, call) unchanged with a single listener."""
        monkeypatch.delattr(socket, "SO_REUSEPORT", raising=False)
        with Space("fb-srv", listen=["tcp://127.0.0.1:0"],
                   reactor_shards=4, shm="off") as server, \
                Space("fb-cli", shm="off") as client:
            server.serve("echo", Echo())
            assert server._listeners[0].shards == 1
            echo = client.import_object(server.endpoints[0], "echo")
            assert echo.echo("fallback") == "fallback"

    def test_single_shard_request_skips_reuseport(self):
        listener = TcpTransport(listener_shards=1).listen(
            "tcp://127.0.0.1:0", lambda channel: None
        )
        try:
            assert listener.shards == 1
        finally:
            listener.close()
