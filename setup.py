"""Legacy setup shim.

The environment for this reproduction has no network access and no
``wheel`` package, so PEP-517 editable installs fail; this shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``pip install -e .`` on modern toolchains via pyproject.toml) work.
"""

from setuptools import setup

setup()
