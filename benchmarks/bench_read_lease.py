"""E10 — read leases: cached reads vs per-RPC reads on a read-mostly
object.

The workload the lease layer targets: 16 readers hammer a ``@reads``
method while one writer mutates at a ~1% write ratio.  Three legs:

* TCP pair and shm pair — leased vs ``leases="off"`` on the identical
  workload; the headline claim is ≥10× aggregate read throughput.
* Mesh scale on the simulated transport (8 reader spaces, seeded
  0.5 ms latency) — where every RPC read costs a full model round trip,
  the replica hit rate dominates.

Correctness is asserted inside the measured run, not alongside it,
stated exactly as strongly as the protocol's guarantee: invalidation
completes before the mutation's result is released to the *writer*, so
any read that starts after write ``k`` returned must observe a value
≥ ``k`` (the counter equals the number of completed writes).  Reads
racing an in-flight write may see either side of it — leases bound
staleness at one RTT, they do not linearize reads against concurrent
writes.
"""

import threading
import time

import pytest

from repro import GcConfig, NetObj, Space, reads
from repro.sim.network import NetworkModel
from repro.transport.simulated import SimTransport


class Board(NetObj):
    """Read-mostly scoreboard: one leased read, one write."""

    def __init__(self):
        self.value = 0

    @reads
    def read(self) -> int:
        return self.value

    def write(self) -> int:
        self.value += 1
        return self.value


READERS = 16
WRITE_EVERY = 100          # one write per 100 completed reads -> 1%


def run_workload(reader_surrogates, writer, reads_per_reader):
    """Drive 16 reader threads and a paced writer; return the tallies.

    The writer is paced off the global completed-read count, so the
    write ratio tracks ~1% in both the leased and the RPC leg even
    though their read rates differ by an order of magnitude.
    """
    surrogates = list(reader_surrogates)
    while len(surrogates) < READERS:
        surrogates.append(surrogates[len(surrogates) % len(reader_surrogates)])
    counts = [0] * READERS
    violations = []
    done = threading.Event()
    writes = 0
    write_seconds = 0.0
    completed = [0]    # writes already *returned*; board value == this

    def read_loop(idx, surrogate):
        for n in range(1, reads_per_reader + 1):
            epoch = completed[0]   # sampled before the read starts
            value = surrogate.read()
            if value < epoch:      # stale beyond the one-RTT bound
                violations.append((idx, epoch, value))
                break
            counts[idx] = n

    def write_loop():
        nonlocal writes, write_seconds
        target = WRITE_EVERY
        while not done.is_set():
            if sum(counts) >= target:
                t0 = time.perf_counter()
                writer.write()
                write_seconds += time.perf_counter() - t0
                writes += 1
                completed[0] = writes
                target += WRITE_EVERY
            else:
                time.sleep(0.0002)

    threads = [
        threading.Thread(target=read_loop, args=(i, s), daemon=True)
        for i, s in enumerate(surrogates)
    ]
    writer_thread = threading.Thread(target=write_loop, daemon=True)
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    writer_thread.start()
    for thread in threads:
        thread.join(timeout=120)
    done.set()
    writer_thread.join(timeout=30)
    elapsed = time.perf_counter() - start

    # Staleness bound: the writer's call has returned, so every live
    # lease was invalidated (or provably expired) before this line.
    final = writer.write()
    writes += 1
    for surrogate in reader_surrogates:
        assert surrogate.read() >= final, "stale read after write returned"

    total_reads = sum(counts)
    return {
        "reads": total_reads,
        "reads_per_s": total_reads / elapsed,
        "writes": writes,
        "write_ratio": writes / max(1, total_reads),
        "avg_write_us": (write_seconds / writes * 1e6) if writes else 0.0,
        "violations": violations,
    }


def _paired_run(listen, shm, leases, reads_per_reader):
    server = Space("e10-owner", listen=[listen], shm=shm)
    reader_space = Space("e10-readers", shm=shm, leases=leases)
    writer_space = Space("e10-writer", shm=shm)
    try:
        server.serve("board", Board())
        endpoint = server.endpoints[0]
        board = reader_space.import_object(endpoint, "board")
        writer = writer_space.import_object(endpoint, "board")
        result = run_workload([board], writer, reads_per_reader)
        result["owner_leases"] = server.lease_stats()
        result["reader_leases"] = reader_space.lease_stats()
        return result
    finally:
        writer_space.shutdown()
        reader_space.shutdown()
        server.shutdown()


def _check(leased, rpc, transport, report, min_speedup):
    assert not leased["violations"], leased["violations"]
    assert not rpc["violations"], rpc["violations"]
    speedup = leased["reads_per_s"] / rpc["reads_per_s"]
    owner = leased["owner_leases"]
    holder = leased["reader_leases"]
    assert holder["lease_hits"] > 0
    assert owner["leases_granted"] >= 1
    # Writes that landed while a lease was registered invalidated it
    # (writes in a re-acquire window legitimately find no live lease).
    assert owner["invalidations_sent"] >= 1
    assert rpc["reader_leases"]["lease_requests"] == 0
    report(
        "E10 read leases",
        f"{transport}: leased {leased['reads_per_s']:,.0f} reads/s "
        f"(ratio {leased['write_ratio']:.2%}, "
        f"write {leased['avg_write_us']:.0f}us) vs rpc "
        f"{rpc['reads_per_s']:,.0f} reads/s "
        f"(write {rpc['avg_write_us']:.0f}us) -> {speedup:.1f}x",
        **{
            f"e10_read_leased_{transport}_per_s": leased["reads_per_s"],
            f"e10_read_rpc_{transport}_per_s": rpc["reads_per_s"],
            f"e10_speedup_{transport}_x": speedup,
            f"e10_write_leased_{transport}_us": leased["avg_write_us"],
            f"e10_write_rpc_{transport}_us": rpc["avg_write_us"],
        },
    )
    assert speedup >= min_speedup, (
        f"{transport}: leased reads only {speedup:.1f}x faster"
    )
    return speedup


class TestReadLease:
    @pytest.mark.benchmark(group="E10-read-lease")
    def test_tcp(self, benchmark, report):
        def run():
            leased = _paired_run("tcp://127.0.0.1:0", "off", "on", 4000)
            rpc = _paired_run("tcp://127.0.0.1:0", "off", "off", 500)
            return leased, rpc

        leased, rpc = benchmark.pedantic(run, rounds=1, iterations=1)
        _check(leased, rpc, "tcp", report, min_speedup=10.0)

    @pytest.mark.benchmark(group="E10-read-lease")
    def test_shm(self, benchmark, report):
        def run():
            leased = _paired_run("tcp://127.0.0.1:0", "on", "on", 4000)
            rpc = _paired_run("tcp://127.0.0.1:0", "on", "off", 500)
            return leased, rpc

        leased, rpc = benchmark.pedantic(run, rounds=1, iterations=1)
        _check(leased, rpc, "shm", report, min_speedup=10.0)

    @pytest.mark.benchmark(group="E10-read-lease")
    def test_mesh_sim(self, benchmark, report):
        """Mesh scale: 8 reader spaces (two threads each) on the
        simulated transport, 0.5 ms seeded latency per hop — the
        regime the lease layer is for, where an RPC read costs a
        full round trip."""

        def leg(leases, reads_per_reader):
            transport = SimTransport(NetworkModel(latency=0.0005, seed=42))
            gc = GcConfig(lease_ttl=5.0)
            owner = Space("e10-sim-owner", listen=["sim://owner"],
                          transports=[transport], gc=gc)
            writer_space = Space("e10-sim-writer", listen=["sim://writer"],
                                 transports=[transport], gc=gc)
            reader_spaces = [
                Space(f"e10-sim-r{i}", listen=[f"sim://r{i}"],
                      transports=[transport], gc=gc, leases=leases)
                for i in range(8)
            ]
            try:
                owner.serve("board", Board())
                boards = [s.import_object("sim://owner", "board")
                          for s in reader_spaces]
                writer = writer_space.import_object("sim://owner", "board")
                result = run_workload(boards, writer, reads_per_reader)
                result["owner_leases"] = owner.lease_stats()
                merged = {}
                for space in reader_spaces:
                    for key, value in space.lease_stats().items():
                        merged[key] = merged.get(key, 0) + value
                result["reader_leases"] = merged
                return result
            finally:
                for space in reader_spaces:
                    space.shutdown()
                writer_space.shutdown()
                owner.shutdown()
                transport.shutdown()

        def run():
            return leg("on", 2000), leg("off", 100)

        leased, rpc = benchmark.pedantic(run, rounds=1, iterations=1)
        _check(leased, rpc, "sim_mesh", report, min_speedup=10.0)
