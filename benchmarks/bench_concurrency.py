"""E8 — concurrency and connection management.

The paper's runtime multiplexes concurrent calls over cached
connections and forks a handler per incoming call.  Measured here:

* aggregate call throughput as client threads grow (1..16) — the
  server must scale past a single caller's rate;
* connection caching: calls on a warm connection vs the full dial +
  handshake cost of a cold one.
"""

import threading
import time

import pytest

from repro import NetObj, Space, async_call


class Adder(NetObj):
    def add(self, a: int, b: int) -> int:
        return a + b


class TestConcurrentClients:
    @pytest.mark.benchmark(group="E8-concurrency")
    @pytest.mark.parametrize("nthreads", [1, 4, 16])
    def test_throughput_vs_threads(self, benchmark, report, nthreads,
                                   request):
        endpoint = f"inproc://e8-{request.node.name}"

        def run():
            with Space("server", listen=[endpoint]) as server, \
                    Space("client") as client:
                server.serve("adder", Adder())
                adder = client.import_object(endpoint, "adder")
                calls_per_thread = 200
                done = []

                def worker():
                    for i in range(calls_per_thread):
                        assert adder.add(i, 1) == i + 1
                    done.append(1)

                threads = [
                    threading.Thread(target=worker)
                    for _ in range(nthreads)
                ]
                start = time.perf_counter()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                elapsed = time.perf_counter() - start
                assert len(done) == nthreads
                return nthreads * calls_per_thread / elapsed

        rate = benchmark.pedantic(run, rounds=1, iterations=1)
        report("E8 concurrency",
               f"{nthreads:2d} client thread(s): {rate:9.0f} calls/s")

    @pytest.mark.benchmark(group="E8-concurrency")
    def test_multiplexing_scales(self, report, benchmark, request):
        """Aggregate throughput with 8 threads must beat 1 thread:
        calls multiplex over one cached connection and dispatch to
        parallel handler threads at the server."""
        endpoint = f"inproc://e8s-{request.node.name}"

        class Sleeper(NetObj):
            def nap(self, seconds: float) -> float:
                time.sleep(seconds)
                return seconds

        def run():
            with Space("server", listen=[endpoint]) as server, \
                    Space("client") as client:
                server.serve("sleeper", Sleeper())
                sleeper = client.import_object(endpoint, "sleeper")

                def timed(nthreads, calls=4, nap=0.02):
                    threads = [
                        threading.Thread(
                            target=lambda: [
                                sleeper.nap(nap) for _ in range(calls)
                            ]
                        )
                        for _ in range(nthreads)
                    ]
                    start = time.perf_counter()
                    for thread in threads:
                        thread.start()
                    for thread in threads:
                        thread.join()
                    return time.perf_counter() - start

                serial = timed(1)
                parallel = timed(8)
                return serial, parallel

        serial, parallel = benchmark.pedantic(run, rounds=1, iterations=1)
        report("E8 concurrency",
               f"8x blocking calls wall-time {parallel * 1000:.0f} ms vs "
               f"1x {serial * 1000:.0f} ms (ideal parallel == serial)")
        # 8 threads x 4 naps would serialise to 8x; multiplexed
        # dispatch should keep it under 3x the single-thread time.
        assert parallel < 3 * serial


class TestPipelinedFutures:
    @pytest.mark.benchmark(group="E8-concurrency")
    def test_pipelined_vs_blocking_threads(self, benchmark, report, request):
        """16 callers against a method with 10 ms of service latency.
        A blocking caller parks a thread for a full round trip per
        call, so each thread's rate is capped at 1/latency; a
        pipelined caller fires every future up front and drains them,
        so the naps overlap on the server's per-call handler threads.
        The pipelined aggregate rate must be at least 2x blocking."""
        endpoint = f"inproc://e8p-{request.node.name}"
        ncallers = 16
        calls_per_caller = 20
        nap = 0.01

        class Worker(NetObj):
            def work(self, seconds: float, value: int) -> int:
                time.sleep(seconds)
                return value + 1

        def timed(worker):
            threads = [
                threading.Thread(target=worker) for _ in range(ncallers)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            return ncallers * calls_per_caller / (time.perf_counter() - start)

        def run():
            with Space("server", listen=[endpoint]) as server, \
                    Space("client") as client:
                server.serve("worker", Worker())
                remote = client.import_object(endpoint, "worker")

                def blocking_worker():
                    for i in range(calls_per_caller):
                        assert remote.work(nap, i) == i + 1

                def pipelined_worker():
                    futures = [
                        async_call(remote.work, nap, i)
                        for i in range(calls_per_caller)
                    ]
                    for i, future in enumerate(futures):
                        assert future.result(30) == i + 1

                blocking = timed(blocking_worker)
                pipelined = timed(pipelined_worker)
                return blocking, pipelined

        blocking, pipelined = benchmark.pedantic(run, rounds=1, iterations=1)
        speedup = pipelined / blocking
        report("E8 concurrency",
               f"16 callers x 20 calls @ 10 ms latency: "
               f"blocking {blocking:7.0f} calls/s, "
               f"pipelined {pipelined:7.0f} calls/s ({speedup:.1f}x)",
               blocking_16x20_at_10ms_calls_per_s=round(blocking),
               pipelined_16x20_at_10ms_calls_per_s=round(pipelined),
               pipelined_speedup_x=round(speedup, 2))
        assert speedup >= 2.0

    @pytest.mark.benchmark(group="E8-concurrency")
    def test_pipelined_null_calls_single_caller(self, benchmark, report,
                                                request):
        """Context row: null calls are marshal-bound, not latency-bound,
        so pipelining is about parity there — its win is hiding latency
        (above), not cutting per-call CPU."""
        endpoint = f"inproc://e8n-{request.node.name}"
        calls = 2000

        def run():
            with Space("server", listen=[endpoint]) as server, \
                    Space("client") as client:
                server.serve("adder", Adder())
                adder = client.import_object(endpoint, "adder")
                start = time.perf_counter()
                futures = [async_call(adder.add, i, 1) for i in range(calls)]
                for i, future in enumerate(futures):
                    assert future.result(30) == i + 1
                return calls / (time.perf_counter() - start)

        rate = benchmark.pedantic(run, rounds=1, iterations=1)
        report("E8 concurrency",
               f"1 caller, 2000 pipelined null calls: {rate:9.0f} calls/s",
               pipelined_null_calls_per_s=round(rate))


class TestConnectionCaching:
    @pytest.mark.benchmark(group="E8-connections")
    def test_warm_call(self, benchmark, tcp_pair):
        server, client = tcp_pair
        echo = client.import_object(server.endpoints[0], "echo")
        benchmark(echo.nothing)

    @pytest.mark.benchmark(group="E8-connections")
    def test_cold_import(self, benchmark, report, tcp_pair):
        """Full cold path: fresh space, TCP dial, handshake, agent
        dirty call, name lookup."""
        server, _client = tcp_pair
        endpoint = server.endpoints[0]

        def cold():
            with Space("cold-client") as space:
                echo = space.import_object(endpoint, "echo")
                echo.nothing()

        benchmark.pedantic(cold, rounds=10, iterations=1)
        report("E8 concurrency",
               "cold import vs warm call: see E8-connections benchmark "
               "group (connection caching pays for itself after one call)")

    @pytest.mark.benchmark(group="E8-connections")
    def test_cache_reuses_one_connection(self, benchmark, report, tcp_pair):
        server, client = tcp_pair
        echo = client.import_object(server.endpoints[0], "echo")

        def run():
            for _ in range(100):
                echo.nothing()
            return len(client.cache)

        cached = benchmark.pedantic(run, rounds=1, iterations=1)
        assert cached == 1
        report("E8 concurrency",
               "100 calls used exactly 1 cached connection")


def handshake_idle_socket(endpoint: str):
    """Open a raw TCP socket to ``endpoint`` and complete the HELLO
    exchange by hand, yielding a server-side Connection that then sits
    idle — the cheapest way to stand up hundreds of inbound
    connections without hundreds of client Spaces."""
    import socket as socketlib
    import struct

    from repro.rpc import messages
    from repro.wire import protocol as wire_protocol
    from repro.wire.framing import pack_frame
    from repro.wire.ids import fresh_space_id

    host, port = endpoint[len("tcp://"):].rsplit(":", 1)
    sock = socketlib.create_connection((host, int(port)), timeout=10)
    base = min(wire_protocol.PROTOCOL_VERSION,
               wire_protocol.MIN_PROTOCOL_VERSION)
    hello = messages.Hello(
        fresh_space_id("idle"), "idle", base, wire_protocol.PROTOCOL_VERSION
    )
    sock.sendall(pack_frame(hello.encode()))

    def read_exact(need: int) -> bytes:
        data = b""
        while len(data) < need:
            chunk = sock.recv(need - len(data))
            assert chunk, "peer closed during handshake"
            data += chunk
        return data

    (length,) = struct.unpack("!I", read_exact(4))
    read_exact(length)  # the HELLO_ACK body, discarded
    return sock


def io_thread_count() -> int:
    """Resident I/O threads in this process: per-connection readers
    (pre-reactor), reactor/pump threads, and accept loops."""
    patterns = ("conn-reader", "reactor", "-pump", "tcp-accept",
                "shm-accept")
    return sum(
        1 for t in threading.enumerate()
        if any(p in t.name for p in patterns)
    )


class TestFanIn:
    @pytest.mark.benchmark(group="E8-fan-in")
    def test_fan_in_idle_and_active(self, report):
        """E8 fan-in: a server holding 128 mostly-idle inbound
        connections while 16 active callers drive traffic.  The
        numbers that matter: resident I/O thread count (O(connections)
        with reader-per-connection, O(1) with the reactor) and whether
        the idle mass degrades active-caller throughput."""
        idle_count = 128
        active_count = 16
        calls_per_caller = 100
        baseline_threads = threading.active_count()

        # shm="off": E8's fan-in row measures the TCP reactor path.
        with Space("fan-in-srv", listen=["tcp://127.0.0.1:0"],
                   shm="off") as server:
            server.serve("adder", Adder())
            endpoint = server.endpoints[0]

            idle_socks = [
                handshake_idle_socket(endpoint) for _ in range(idle_count)
            ]
            clients = [
                Space(f"fan-in-cli-{i}", shm="off")
                for i in range(active_count)
            ]
            try:
                adders = [
                    client.import_object(endpoint, "adder")
                    for client in clients
                ]
                for adder in adders:
                    assert adder.add(1, 1) == 2  # warm every connection

                io_threads = io_thread_count()
                total_threads = threading.active_count()

                def caller(adder):
                    for i in range(calls_per_caller):
                        assert adder.add(i, 1) == i + 1

                threads = [
                    threading.Thread(target=caller, args=(adder,))
                    for adder in adders
                ]
                start = time.perf_counter()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                elapsed = time.perf_counter() - start
                rate = active_count * calls_per_caller / elapsed
            finally:
                for client in clients:
                    client.shutdown()
                for sock in idle_socks:
                    sock.close()

        report("E8 concurrency",
               f"fan-in {idle_count} idle + {active_count} active: "
               f"{rate:9.0f} calls/s, {io_threads} I/O threads "
               f"({total_threads} total, {baseline_threads} baseline)",
               fan_in_idle128_active16_calls_per_s=round(rate),
               fan_in_io_threads=io_threads,
               fan_in_total_threads=total_threads)

