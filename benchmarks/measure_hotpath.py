"""Standalone hot-path measurement: E1 / E2 / E3 without pytest.

Emits one JSON document on stdout with ns/op (E1, E2) and MB/s (E3)
numbers, so the same script can be run before and after a hot-path
change and the two runs diffed mechanically.  Used by the PR workflow
to record the before/after deltas committed in ``BENCH_*.json``.

The ``E1_hotpath_profile`` section breaks a null call into the
pipeline's stage buckets (encode / syscall / reactor / dispatch /
user_code / decode, see :mod:`repro.rpc.hotpath`) from a separate
profiled run — profiling costs a few hundred ns per call, so the
headline E1 numbers always come from unprofiled spaces and the profile
is attribution, not the measurement.

Usage::

    PYTHONPATH=src python benchmarks/measure_hotpath.py [--smoke]

``--smoke`` shrinks iteration counts to a CI-friendly sanity pass.
"""

from __future__ import annotations

import gc
import json
import sys
import time

from repro import Space
from repro.core.netobj import NetObj, quick
from repro.marshal.pickler import Pickler
from repro.marshal.unpickler import Unpickler


class Echo(NetObj):
    @quick
    def nothing(self) -> None:
        return None

    def echo(self, value):
        return value


def _best_of(fn, iterations: int, repeats: int = 7) -> float:
    """ns/op: best mean over ``repeats`` batches of ``iterations``.

    Best-of (not mean-of) because scheduler noise and GC pauses only
    ever add time; the GC is paused during batches for the same reason.
    """
    fn()  # warm
    batches = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            start = time.perf_counter_ns()
            for _ in range(iterations):
                fn()
            batches.append((time.perf_counter_ns() - start) / iterations)
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    return min(batches)


def measure_null_call(transport: str, iterations: int,
                      trials: int = 3) -> float:
    """Best ns/op across ``trials`` independent space pairs — thread
    placement at connection setup is a large variance source, so one
    unlucky pair must not stand for the hot path."""
    results = []
    for trial in range(trials):
        if transport == "tcp":
            listen = ["tcp://127.0.0.1:0"]
        else:
            listen = [f"inproc://measure-{trial}-{time.monotonic_ns()}"]
        # shm="off": hot-path trajectories are labelled by transport;
        # the tcp rows must not silently ride the shm upgrade.
        with Space("m-server", listen=listen, shm="off") as server, \
                Space("m-client", shm="off") as client:
            server.serve("echo", Echo())
            echo = client.import_object(server.endpoints[0], "echo")
            results.append(_best_of(echo.nothing, iterations))
    return min(results)


def measure_null_call_profile(iterations: int) -> dict:
    """One profiled TCP null-call run: per-stage mean µs per bucket.

    Client and server stages land in their own space's profile (the
    client accumulates encode/decode plus its half of syscall/reactor;
    the server accumulates user_code/dispatch plus its half), so the
    two are reported side by side.  Absolute per-call cost here runs a
    few hundred ns above the headline E1 number — the instrumentation
    itself is on the clock.
    """
    with Space("mp-server", listen=["tcp://127.0.0.1:0"], shm="off",
               hotpath_profile=True) as server, \
            Space("mp-client", shm="off", hotpath_profile=True) as client:
        server.serve("echo", Echo())
        echo = client.import_object(server.endpoints[0], "echo")
        echo.nothing()  # warm: bind + connection setup out of the window
        client.hotpath.reset()
        server.hotpath.reset()
        for _ in range(iterations):
            echo.nothing()

        def stage_means(space):
            stages = space.stats()["hotpath"]["stages"]
            return {
                name: round(bucket["mean_us"], 3)
                for name, bucket in stages.items() if bucket["calls"]
            }

        return {
            "iterations": iterations,
            "client_stage_mean_us": stage_means(client),
            "server_stage_mean_us": stage_means(server),
        }


def measure_throughput(size: int, repeats: int) -> float:
    """Round-trip MB/s over TCP for one payload size."""
    with Space("m-server", listen=["tcp://127.0.0.1:0"],
               shm="off") as server, \
            Space("m-client", shm="off") as client:
        server.serve("echo", Echo())
        echo = client.import_object(server.endpoints[0], "echo")
        payload = b"\xab" * size
        echo.echo(payload)  # warm
        rates = []
        for _ in range(5):
            start = time.perf_counter()
            for _ in range(repeats):
                result = echo.echo(payload)
            elapsed = time.perf_counter() - start
            assert len(result) == size
            rates.append(2 * size * repeats / elapsed / 1e6)
        return max(rates)


def measure_marshal(iterations: int) -> dict:
    """E2: pickle+unpickle round trip, ns/op per payload kind."""
    payloads = {
        "int_list_100": list(range(100)),
        "str_1k": "x" * 1024,
        "bytes_64k": b"\xcd" * 65536,
        "nested": {"k%d" % i: [i, float(i), "v%d" % i] for i in range(50)},
    }
    out = {}
    for name, value in payloads.items():
        pickler = Pickler()
        unpickler = Unpickler()

        def round_trip(value=value, pickler=pickler, unpickler=unpickler):
            return unpickler.loads(pickler.dumps(value))

        out[name] = _best_of(round_trip, iterations)
    return out


def main() -> None:
    smoke = "--smoke" in sys.argv
    e1_iters = 20 if smoke else 400
    e2_iters = 20 if smoke else 300
    e3_repeats = 2 if smoke else 10

    results = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "smoke": smoke,
        "E1_null_call_ns": {
            "inproc": measure_null_call(
                "inproc", e1_iters, trials=1 if smoke else 3
            ),
            "tcp": measure_null_call(
                "tcp", e1_iters, trials=1 if smoke else 3
            ),
        },
        "E1_hotpath_profile": measure_null_call_profile(
            50 if smoke else 1000
        ),
        "E2_marshal_ns": measure_marshal(e2_iters),
        "E3_throughput_mbps": {
            "64KiB": measure_throughput(64 * 1024, e3_repeats),
            "1MiB": measure_throughput(1024 * 1024, max(2, e3_repeats // 2)),
        },
    }
    json.dump(results, sys.stdout, indent=2)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
