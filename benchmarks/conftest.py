"""Shared fixtures and report plumbing for the benchmark suite.

Every experiment module (E1..E8, one per table/figure of the
evaluation — see DESIGN.md and EXPERIMENTS.md) gets:

* space-pair fixtures over each transport;
* a ``report`` helper that accumulates printable result rows and dumps
  them at the end of the session, so the numbers that belong in
  EXPERIMENTS.md appear even under output capture.
"""

from __future__ import annotations

import json
import os
import sys
import time
from collections import defaultdict
from pathlib import Path

import pytest

from repro import NetObj, Space

_REPORT_ROWS = defaultdict(list)
_REPORT_METRICS = defaultdict(dict)


class Echo(NetObj):
    """The benchmark workhorse: null calls and payload echoes."""

    def nothing(self) -> None:
        return None

    def echo(self, value):
        return value

    def sum_list(self, numbers):
        return sum(numbers)


@pytest.fixture()
def report():
    """``report(experiment, row, **metrics)`` — collected and printed
    (and dumped as JSON) at session exit.

    Keyword arguments are machine-readable numbers for the run's
    ``BENCH_<runid>.json`` — name them with their unit as the suffix
    (``null_call_tcp_ns=...``, ``throughput_64KiB_mbps=...``) so the
    JSON is self-describing.
    """

    def add(experiment: str, row: str, **metrics) -> None:
        _REPORT_ROWS[experiment].append(row)
        if metrics:
            _REPORT_METRICS[experiment].update(metrics)

    return add


def _dump_json_report() -> Path:
    """Write BENCH_<runid>.json so perf is trackable across PRs.

    ``runid`` defaults to a UTC timestamp; set ``BENCH_RUNID`` to pin
    it (CI sets this to the PR/commit id).  ``BENCH_DIR`` overrides
    the output directory (default: the repo root, next to this file's
    parent).
    """
    runid = os.environ.get("BENCH_RUNID") or time.strftime(
        "%Y%m%dT%H%M%S", time.gmtime()
    )
    directory = Path(os.environ.get("BENCH_DIR", Path(__file__).parent.parent))
    payload = {
        "runid": runid,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "experiments": {
            experiment: {
                "rows": _REPORT_ROWS[experiment],
                "metrics": _REPORT_METRICS.get(experiment, {}),
            }
            for experiment in sorted(_REPORT_ROWS)
        },
    }
    path = directory / f"BENCH_{runid}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def pytest_sessionfinish(session, exitstatus):
    if not _REPORT_ROWS:
        return
    out = sys.stderr
    out.write("\n" + "=" * 74 + "\n")
    out.write("EXPERIMENT RESULTS (paper-table reproductions)\n")
    out.write("=" * 74 + "\n")
    for experiment in sorted(_REPORT_ROWS):
        out.write(f"\n--- {experiment} ---\n")
        for row in _REPORT_ROWS[experiment]:
            out.write(row + "\n")
    try:
        path = _dump_json_report()
        out.write(f"\n[results written to {path}]\n")
    except OSError as exc:
        out.write(f"\n[could not write JSON report: {exc}]\n")
    out.write("\n")


@pytest.fixture()
def tcp_pair():
    server = Space("bench-server", listen=["tcp://127.0.0.1:0"])
    client = Space("bench-client")
    server.serve("echo", Echo())
    yield server, client
    client.shutdown()
    server.shutdown()


@pytest.fixture()
def inproc_pair(request):
    endpoint = f"inproc://bench-{request.node.name}"
    server = Space("bench-server", listen=[endpoint])
    client = Space("bench-client")
    server.serve("echo", Echo())
    yield server, client
    client.shutdown()
    server.shutdown()
