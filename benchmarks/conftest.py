"""Shared fixtures and report plumbing for the benchmark suite.

Every experiment module (E1..E8, one per table/figure of the
evaluation — see DESIGN.md and EXPERIMENTS.md) gets:

* space-pair fixtures over each transport;
* a ``report`` helper that accumulates printable result rows and dumps
  them at the end of the session, so the numbers that belong in
  EXPERIMENTS.md appear even under output capture.
"""

from __future__ import annotations

import sys
from collections import defaultdict

import pytest

from repro import NetObj, Space

_REPORT_ROWS = defaultdict(list)


class Echo(NetObj):
    """The benchmark workhorse: null calls and payload echoes."""

    def nothing(self) -> None:
        return None

    def echo(self, value):
        return value

    def sum_list(self, numbers):
        return sum(numbers)


@pytest.fixture()
def report():
    """``report(experiment, row)`` — collected and printed at exit."""

    def add(experiment: str, row: str) -> None:
        _REPORT_ROWS[experiment].append(row)

    return add


def pytest_sessionfinish(session, exitstatus):
    if not _REPORT_ROWS:
        return
    out = sys.stderr
    out.write("\n" + "=" * 74 + "\n")
    out.write("EXPERIMENT RESULTS (paper-table reproductions)\n")
    out.write("=" * 74 + "\n")
    for experiment in sorted(_REPORT_ROWS):
        out.write(f"\n--- {experiment} ---\n")
        for row in _REPORT_ROWS[experiment]:
            out.write(row + "\n")
    out.write("\n")


@pytest.fixture()
def tcp_pair():
    server = Space("bench-server", listen=["tcp://127.0.0.1:0"])
    client = Space("bench-client")
    server.serve("echo", Echo())
    yield server, client
    client.shutdown()
    server.shutdown()


@pytest.fixture()
def inproc_pair(request):
    endpoint = f"inproc://bench-{request.node.name}"
    server = Space("bench-server", listen=[endpoint])
    client = Space("bench-client")
    server.serve("echo", Echo())
    yield server, client
    client.shutdown()
    server.shutdown()
