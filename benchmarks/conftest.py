"""Shared fixtures and report plumbing for the benchmark suite.

Every experiment module (E1..E8, one per table/figure of the
evaluation — see DESIGN.md and EXPERIMENTS.md) gets:

* space-pair fixtures over each transport;
* a ``report`` helper that accumulates printable result rows and dumps
  them at the end of the session, so the numbers that belong in
  EXPERIMENTS.md appear even under output capture.
"""

from __future__ import annotations

import json
import os
import platform
import resource
import subprocess
import sys
import time
from collections import defaultdict
from pathlib import Path

import pytest

from repro import NetObj, Space, quick

_REPORT_ROWS = defaultdict(list)
_REPORT_METRICS = defaultdict(dict)


class Echo(NetObj):
    """The benchmark workhorse: null calls and payload echoes.

    ``nothing`` is ``@quick`` so the E1 null-call rows exercise the
    full v5 fast lane (typed frames + inline reactor dispatch) — the
    configuration the "object-layer overhead" claim is about.
    """

    @quick
    def nothing(self) -> None:
        return None

    def echo(self, value):
        return value

    def sum_list(self, numbers):
        return sum(numbers)


@pytest.fixture()
def report():
    """``report(experiment, row, **metrics)`` — collected and printed
    (and dumped as JSON) at session exit.

    Keyword arguments are machine-readable numbers for the run's
    ``BENCH_<runid>.json`` — name them with their unit as the suffix
    (``null_call_tcp_ns=...``, ``throughput_64KiB_mbps=...``) so the
    JSON is self-describing.
    """

    def add(experiment: str, row: str, **metrics) -> None:
        _REPORT_ROWS[experiment].append(row)
        if metrics:
            _REPORT_METRICS[experiment].update(metrics)

    return add


def _dump_json_report() -> Path:
    """Write BENCH_<runid>.json so perf is trackable across PRs.

    ``runid`` defaults to a UTC timestamp; set ``BENCH_RUNID`` to pin
    it (CI sets this to the PR/commit id).  ``BENCH_DIR`` overrides
    the output directory (default: the repo root, next to this file's
    parent).
    """
    runid = os.environ.get("BENCH_RUNID") or time.strftime(
        "%Y%m%dT%H%M%S", time.gmtime()
    )
    directory = Path(os.environ.get("BENCH_DIR", Path(__file__).parent.parent))
    payload = {
        "runid": runid,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "machine": _machine_stamp(),
        "experiments": {
            experiment: {
                "rows": _REPORT_ROWS[experiment],
                "metrics": _REPORT_METRICS.get(experiment, {}),
            }
            for experiment in sorted(_REPORT_ROWS)
        },
    }
    path = directory / f"BENCH_{runid}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def _machine_stamp() -> dict:
    """Where these numbers came from: without the core count, the
    interpreter and the commit, cross-run trajectories (BENCH_pr5 vs
    BENCH_pr6) compare apples to unknown fruit."""
    repo = Path(__file__).parent.parent
    try:
        git_sha = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo, capture_output=True, text=True, timeout=10,
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        git_sha = None
    try:
        # A sha from a dirty worktree names code that was never
        # committed; flag it so such numbers are never trusted as the
        # commit's baseline.
        dirty = bool(subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=repo, capture_output=True, text=True, timeout=10,
        ).stdout.strip())
    except (OSError, subprocess.SubprocessError):
        dirty = None
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "git_sha": git_sha,
        "dirty": dirty,
        # High-water mark of the whole bench process, in bytes.  The
        # overload experiment (E12) asserts *growth* against its own
        # before/after samples; this stamp records the session-level
        # ceiling so memory trajectories are comparable across PRs.
        "peak_rss_bytes": peak_rss_bytes(),
    }


def peak_rss_bytes() -> int:
    """The process's resident-set high-water mark, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS — normalise
    so the JSON reports never mix units across platforms.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform != "darwin":
        peak *= 1024
    return int(peak)


def percentile(samples, fraction: float) -> float:
    """The ``fraction`` quantile of ``samples`` (nearest-rank).

    Tail latency is the load-shedding story's whole point: a mean
    hides the stalls that BUSY shedding exists to prevent, so the
    overload rows report p50/p99 through this one helper.
    """
    if not samples:
        raise ValueError("percentile of no samples")
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * len(ordered)) - 1))
    return ordered[rank]


def pytest_sessionfinish(session, exitstatus):
    if not _REPORT_ROWS:
        return
    out = sys.stderr
    out.write("\n" + "=" * 74 + "\n")
    out.write("EXPERIMENT RESULTS (paper-table reproductions)\n")
    out.write("=" * 74 + "\n")
    for experiment in sorted(_REPORT_ROWS):
        out.write(f"\n--- {experiment} ---\n")
        for row in _REPORT_ROWS[experiment]:
            out.write(row + "\n")
    try:
        path = _dump_json_report()
        out.write(f"\n[results written to {path}]\n")
    except OSError as exc:
        out.write(f"\n[could not write JSON report: {exc}]\n")
    out.write("\n")


@pytest.fixture()
def tcp_pair():
    # ``shm="off"`` on both sides: rows labelled "tcp" must measure
    # sockets, not the same-machine shm upgrade that would otherwise
    # kick in silently.
    server = Space("bench-server", listen=["tcp://127.0.0.1:0"], shm="off")
    client = Space("bench-client", shm="off")
    server.serve("echo", Echo())
    yield server, client
    client.shutdown()
    server.shutdown()


@pytest.fixture()
def shm_pair():
    """Same-machine pair whose loopback dial upgrades to the shm ring
    transport (asserted, so a silently broken upgrade can't relabel
    TCP numbers as shm)."""
    server = Space("bench-server", listen=["tcp://127.0.0.1:0"])
    client = Space("bench-client")
    server.serve("echo", Echo())
    yield server, client
    assert client.cache.stats()["upgraded_dials"] >= 1
    client.shutdown()
    server.shutdown()


@pytest.fixture()
def inproc_pair(request):
    endpoint = f"inproc://bench-{request.node.name}"
    server = Space("bench-server", listen=[endpoint])
    client = Space("bench-client")
    server.serve("echo", Echo())
    yield server, client
    client.shutdown()
    server.shutdown()
