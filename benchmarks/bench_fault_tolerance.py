"""E6 — fault tolerance: message loss, retries, crashed clients.

The paper's §2.3/§2.4 claims, measured:

* clean calls lost by the network are retried (same sequence number)
  until they land — the owner still reclaims the object;
* a crashed client is detected by the pinger and purged from every
  dirty set, after which its objects are reclaimed;
* sequence numbers make duplicated/late clean traffic harmless.

The lossy network is the simulated transport with a seeded drop
probability, so these runs are deterministic.
"""

import gc as pygc
import time
import weakref

import pytest

from repro import GcConfig, NetObj, Space
from repro.sim.network import NetworkModel
from repro.transport.simulated import SimTransport


class Vault(NetObj):
    def __init__(self):
        self.issued = []

    def issue(self):
        token = Token()
        self.issued.append(weakref.ref(token))
        return token

    def live(self) -> int:
        pygc.collect()
        return sum(1 for ref in self.issued if ref() is not None)


class Token(NetObj):
    def poke(self) -> bool:
        return True


def wait_for(predicate, timeout=15.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        pygc.collect()
        time.sleep(0.02)
    return predicate()


def lossy_spaces(drop_probability: float, seed: int,
                 gc: GcConfig = None):
    from repro.wire import protocol

    # Loss confined to clean/clean_ack frames: the collector retries
    # those (§2.3); mutator calls carry no retry and would only add
    # noise to the experiment.
    transport = SimTransport(NetworkModel(
        latency=0.0005, drop_probability=drop_probability, seed=seed,
        drop_tags=frozenset({protocol.CLEAN, protocol.CLEAN_ACK}),
    ))
    server = Space("owner", listen=["sim://owner"],
                   transports=[transport], gc=gc or GcConfig(
                       gc_call_timeout=0.3, clean_retry_interval=0.02,
                       clean_max_retries=100,
                   ))
    client = Space("client", listen=["sim://client"],
                   transports=[transport], gc=gc or GcConfig(
                       gc_call_timeout=0.3, clean_retry_interval=0.02,
                       clean_max_retries=100,
                   ))
    return transport, server, client


class TestLossyCleanCalls:
    @pytest.mark.benchmark(group="E6-fault-tolerance")
    @pytest.mark.parametrize("drop", [0.0, 0.2, 0.4])
    def test_reclamation_survives_loss(self, benchmark, report, drop):
        """Clean/ack traffic dropped with probability ``drop``; the
        object must still be reclaimed, via retries."""

        def run():
            transport, server, client = lossy_spaces(drop, seed=1234)
            try:
                vault_impl = Vault()
                server.serve("vault", vault_impl)
                vault = client.import_object("sim://owner", "vault")
                token = vault.issue()
                assert token.poke()
                assert vault_impl.live() == 1
                del token
                pygc.collect()
                reclaimed = wait_for(lambda: vault_impl.live() == 0)
                retries = client.cleanup_daemon.retries
                return reclaimed, retries
            finally:
                client.shutdown()
                server.shutdown()
                transport.shutdown()

        reclaimed, retries = benchmark.pedantic(run, rounds=1, iterations=1)
        assert reclaimed, f"object never reclaimed at drop={drop}"
        report("E6 fault tolerance",
               f"drop={drop:.0%}: reclaimed=True, clean retries={retries}")
        if drop == 0.0:
            assert retries == 0


class TestCrashedClient:
    @pytest.mark.benchmark(group="E6-fault-tolerance")
    def test_pinger_purges_dead_client(self, benchmark, report):
        gc_config = GcConfig(ping_interval=0.05, ping_timeout=0.3,
                             ping_max_failures=2)

        def run():
            server = Space("owner", listen=["inproc://e6-owner"],
                           gc=gc_config)
            client = Space("client")
            try:
                vault_impl = Vault()
                server.serve("vault", vault_impl)
                vault = client.import_object("inproc://e6-owner", "vault")
                token = vault.issue()
                assert token.poke()
                start = time.time()
                client.shutdown()  # crash: no clean calls
                assert wait_for(lambda: vault_impl.live() == 0)
                return time.time() - start, server.pinger.clients_purged
            finally:
                client.shutdown()
                server.shutdown()

        elapsed, purged = benchmark.pedantic(run, rounds=1, iterations=1)
        assert purged >= 1
        report("E6 fault tolerance",
               f"crashed client purged in {elapsed * 1000:.0f} ms "
               f"(ping interval 50 ms, 2 failures allowed)")

    @pytest.mark.benchmark(group="E6-fault-tolerance")
    def test_live_client_never_purged_under_load(self, benchmark, report):
        gc_config = GcConfig(ping_interval=0.05, ping_timeout=1.0,
                             ping_max_failures=2)

        def run():
            server = Space("owner", listen=["inproc://e6-owner-2"],
                           gc=gc_config)
            client = Space("client")
            try:
                vault_impl = Vault()
                server.serve("vault", vault_impl)
                vault = client.import_object("inproc://e6-owner-2", "vault")
                token = vault.issue()
                for _ in range(20):
                    assert token.poke()
                    time.sleep(0.02)
                return server.pinger.clients_purged, vault_impl.live()
            finally:
                client.shutdown()
                server.shutdown()

        purged, live = benchmark.pedantic(run, rounds=1, iterations=1)
        assert purged == 0
        assert live == 1
        report("E6 fault tolerance",
               "live client survived 8+ ping rounds: purges=0")


class TestTransientPinExpiry:
    @pytest.mark.benchmark(group="E6-fault-tolerance")
    def test_lost_copy_ack_recovered_by_ttl(self, benchmark, report):
        """The gap Birrell left open: a receiver that never
        acknowledges a copy pins the sender's transient entry forever.
        Our transient_ttl extension bounds the leak; measured: time
        from loss to reclamation."""
        from repro.wire import protocol

        gc_config = GcConfig(transient_ttl=0.2,
                             transient_sweep_interval=0.05)

        def run():
            transport = SimTransport(NetworkModel(
                latency=0.0005, drop_probability=1.0,
                drop_tags=frozenset({protocol.COPY_ACK}), seed=5,
            ))
            server = Space("owner", listen=["sim://owner"],
                           transports=[transport], gc=gc_config)
            client = Space("client", listen=["sim://client"],
                           transports=[transport], gc=gc_config)
            try:
                vault_impl = Vault()
                server.serve("vault", vault_impl)
                vault = client.import_object("sim://owner", "vault")
                token = vault.issue()
                assert token.poke()
                start = time.time()
                del token
                pygc.collect()
                client.cleanup_daemon.wait_idle()
                ok = wait_for(lambda: vault_impl.live() == 0)
                return ok, time.time() - start, server.transient.expired_total
            finally:
                client.shutdown()
                server.shutdown()
                transport.shutdown()

        ok, elapsed, expired = benchmark.pedantic(run, rounds=1, iterations=1)
        assert ok and expired >= 1
        report("E6 fault tolerance",
               f"lost copy_ack: pin expired and object reclaimed in "
               f"{elapsed * 1000:.0f} ms (ttl 200 ms)")


class TestSequenceNumbers:
    @pytest.mark.benchmark(group="E6-fault-tolerance")
    def test_duplicate_and_stale_calls_harmless(self, benchmark, report):
        """Replay a client's clean/dirty traffic out of order at the
        owner table level: stale operations are ignored."""
        from repro.core.objtable import ObjectTable
        from repro.dgc.owner import DgcOwner
        from repro.wire.ids import fresh_space_id

        def run():
            table = ObjectTable(fresh_space_id("owner"))
            owner = DgcOwner(table)
            client_a = fresh_space_id("a")
            client_b = fresh_space_id("b")
            entry = table.export(object())
            rep = table.wirerep_for(entry)
            owner.handle_dirty(client_b, rep, 1)   # keeps the entry live
            # A's in-order life, then replayed/late traffic from A.
            owner.handle_dirty(client_a, rep, 1)
            owner.handle_clean(client_a, rep, 2, strong=False)
            owner.handle_clean(client_a, rep, 2, strong=False)  # dup
            owner.handle_dirty(client_a, rep, 1)                # late
            resurrection = client_a in owner.dirty_set(rep.index)
            # Finally B leaves; the object must drop despite the replays.
            owner.handle_clean(client_b, rep, 2, strong=False)
            return (owner.stale_calls_ignored, resurrection,
                    table.exported_entry(rep.index))

        stale, resurrection, entry = benchmark.pedantic(
            run, rounds=1, iterations=1
        )
        assert not resurrection, "late dirty resurrected the client!"
        assert entry is None
        assert stale == 2
        report("E6 fault tolerance",
               f"seqno guard: {stale} stale/duplicate calls ignored, "
               "no resurrection, entry reclaimed")
