"""E7 — third-party transfer: correctness and cost of reference handoff.

The paper's transmission-race machinery exists so that a reference can
be passed between two clients (neither of them the owner) safely, even
when the sender drops its copy the instant the send completes.  This
benchmark measures handoff latency, runs the Figure-1 race repeatedly
(the object must survive every time), and shows the receiver talking
to the owner directly afterwards.
"""

import gc as pygc
import time
import weakref

import pytest

from repro import NetObj, Space


class Vault(NetObj):
    def __init__(self):
        self.issued = []

    def issue(self):
        token = Token()
        self.issued.append(weakref.ref(token))
        return token

    def live(self) -> int:
        pygc.collect()
        return sum(1 for ref in self.issued if ref() is not None)


class Token(NetObj):
    def poke(self) -> bool:
        return True


class Shelf(NetObj):
    def __init__(self):
        self.items = []

    def put(self, item) -> int:
        self.items.append(item)
        return len(self.items)

    def poke_last(self) -> bool:
        return self.items[-1].poke()

    def clear(self):
        self.items.clear()
        pygc.collect()


@pytest.fixture()
def triangle(request):
    suffix = request.node.name
    owner = Space("owner", listen=[f"inproc://e7-owner-{suffix}"])
    courier = Space("courier", listen=[f"inproc://e7-courier-{suffix}"])
    keeper = Space("keeper", listen=[f"inproc://e7-keeper-{suffix}"])
    owner.serve("vault", Vault())
    keeper.serve("shelf", Shelf())
    yield owner, courier, keeper
    keeper.shutdown()
    courier.shutdown()
    owner.shutdown()


class TestThirdParty:
    @pytest.mark.benchmark(group="E7-third-party")
    def test_handoff_latency(self, benchmark, triangle):
        """One handoff: courier passes an owner-owned token to keeper."""
        owner, courier, keeper = triangle
        vault = courier.import_object(owner.endpoints[0], "vault")
        shelf = courier.import_object(keeper.endpoints[0], "shelf")
        token = vault.issue()

        benchmark(shelf.put, token)

    @pytest.mark.benchmark(group="E7-third-party")
    def test_figure_one_race_repeated(self, benchmark, report, triangle):
        """The Figure-1 race, 25 times: pass then drop immediately;
        the object must survive every single time."""
        owner, courier, keeper = triangle
        vault = courier.import_object(owner.endpoints[0], "vault")
        shelf = courier.import_object(keeper.endpoints[0], "shelf")
        vault_impl = owner.agent.get("vault")

        def run():
            survived = 0
            for _ in range(25):
                token = vault.issue()
                shelf.put(token)
                del token            # drop the instant the send is done
                pygc.collect()
                if shelf.poke_last():
                    survived += 1
            # keeper still holds everything: all 25 alive at the owner.
            alive = vault_impl.live()
            shelf.clear()
            return survived, alive

        survived, alive = benchmark.pedantic(run, rounds=1, iterations=1)
        assert survived == 25
        assert alive == 25
        report("E7 third party",
               f"figure-1 race x25: survived={survived}/25, "
               f"alive-at-owner before release={alive}")

    @pytest.mark.benchmark(group="E7-third-party")
    def test_receiver_talks_to_owner_directly(self, benchmark, report,
                                              triangle):
        """After the handoff, the keeper invokes via its own connection
        to the owner; the courier can disappear entirely."""
        owner, courier, keeper = triangle
        vault = courier.import_object(owner.endpoints[0], "vault")
        shelf = courier.import_object(keeper.endpoints[0], "shelf")
        token = vault.issue()
        shelf.put(token)
        del token, vault, shelf
        pygc.collect()
        courier.cleanup_daemon.wait_idle()
        courier.shutdown()           # the middleman is gone

        shelf_impl = keeper.agent.get("shelf")

        def poke():
            return shelf_impl.items[-1].poke()

        assert benchmark(poke)
        report("E7 third party",
               "receiver invoked owner-owned object after the courier "
               "space shut down (direct keeper->owner connection)")

    @pytest.mark.benchmark(group="E7-third-party")
    def test_reclamation_after_chain(self, benchmark, report, triangle):
        """owner -> courier -> keeper, then both drop: reclaimed."""
        owner, courier, keeper = triangle
        vault_impl = owner.agent.get("vault")

        def run():
            vault = courier.import_object(owner.endpoints[0], "vault")
            shelf = courier.import_object(keeper.endpoints[0], "shelf")
            token = vault.issue()
            shelf.put(token)
            del token
            pygc.collect()
            shelf.clear()
            pygc.collect()
            deadline = time.time() + 10
            while time.time() < deadline and vault_impl.live() > 0:
                pygc.collect()
                time.sleep(0.02)
            return vault_impl.live()

        live = benchmark.pedantic(run, rounds=1, iterations=1)
        assert live == 0
        report("E7 third party",
               "full chain handoff reclaimed after both holders dropped")
