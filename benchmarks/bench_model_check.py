"""E5 — the safety/liveness claims, checked exhaustively.

The paper argues safety and liveness; the formalisation proves them.
This benchmark *enumerates every reachable configuration* of bounded
instances and evaluates all fourteen invariant checks in each — the
executable counterpart of the proof — and, as the negative control,
lets the same explorer find the naive-counting race.

Reported: state/transition counts, exploration rate, and the length
of the naive counterexample.
"""

import pytest

from repro.model import Machine, explore, initial_configuration
from repro.model.variants import (
    FifoMachine,
    NaiveMachine,
    fifo_violations,
    initial_fifo,
    initial_naive,
    naive_violations,
)

INSTANCES = [
    ("2p-2c", 2, 2),
    ("2p-3c", 2, 3),
    ("3p-2c", 3, 2),
    ("3p-3c", 3, 3),
]


class TestExhaustiveSafety:
    @pytest.mark.parametrize("label,nprocs,copies", INSTANCES)
    @pytest.mark.benchmark(group="E5-model-check")
    def test_birrell_instance(self, benchmark, report, label, nprocs, copies):
        config = initial_configuration(
            nprocs=nprocs, nrefs=1, copies_left=copies
        )
        result = benchmark.pedantic(
            explore, args=(config,),
            kwargs={"keep_traces": False},
            rounds=1, iterations=1,
        )
        assert result.ok, result.violations[0].messages
        report("E5 model check",
               f"birrell {label}: {result.summary()}")

    @pytest.mark.benchmark(group="E5-model-check")
    def test_fifo_variant(self, benchmark, report):
        result = benchmark.pedantic(
            explore,
            args=(initial_fifo(nprocs=3, copies_left=3),),
            kwargs={
                "machine": FifoMachine(),
                "checker": fifo_violations,
                "keep_traces": False,
            },
            rounds=1, iterations=1,
        )
        assert result.ok
        report("E5 model check", f"fifo 3p-3c: {result.summary()}")

    @pytest.mark.benchmark(group="E5-model-check")
    def test_naive_counterexample(self, benchmark, report):
        result = benchmark.pedantic(
            explore,
            args=(initial_naive(nprocs=3, copies_left=2),),
            kwargs={
                "machine": NaiveMachine(),
                "checker": naive_violations,
                "keep_traces": True,
            },
            rounds=1, iterations=1,
        )
        assert not result.ok, "naive counting should be unsafe!"
        trace = result.violations[0].trace
        report("E5 model check",
               f"naive RC: race found after {result.states} states, "
               f"counterexample length {len(trace)}:")
        for step in trace:
            report("E5 model check", f"    {step}")

    @pytest.mark.benchmark(group="E5-model-check")
    def test_faulty_model_with_seqnos(self, benchmark, report):
        """Section-6 extension: under message loss, spurious timeouts
        and clean retries, sequence numbers keep the algorithm safe
        and leak-free across every reachable configuration."""
        from repro.model.variants import (
            FaultyMachine,
            faulty_leak_violations,
            faulty_safety_violations,
            initial_faulty,
        )

        def checks(config):
            return (faulty_safety_violations(config)
                    + faulty_leak_violations(config))

        result = benchmark.pedantic(
            explore,
            args=(initial_faulty(nprocs=2, copies_left=2,
                                 losses_left=2, timeouts_left=2),),
            kwargs={"machine": FaultyMachine(), "checker": checks,
                    "keep_traces": False, "max_states": 3_000_000},
            rounds=1, iterations=1,
        )
        assert result.ok
        report("E5 model check",
               f"faulty+seqnos 2p-2c-2loss-2timeout: {result.summary()}")

    @pytest.mark.benchmark(group="E5-model-check")
    def test_faulty_model_without_seqnos(self, benchmark, report):
        """Negative control: drop the sequence numbers and the
        explorer finds both the leak and the duplicated-clean safety
        violation Birrell's §2 guard exists to prevent."""
        from repro.model.variants import (
            FaultyMachine,
            faulty_leak_violations,
            faulty_safety_violations,
            initial_faulty,
        )

        def run():
            leak = explore(
                initial_faulty(nprocs=2, copies_left=1, losses_left=1,
                               timeouts_left=1, use_seqnos=False),
                machine=FaultyMachine(),
                checker=faulty_leak_violations, keep_traces=True,
            )
            unsafe = explore(
                initial_faulty(nprocs=2, copies_left=2, losses_left=0,
                               timeouts_left=1, use_seqnos=False),
                machine=FaultyMachine(),
                checker=faulty_safety_violations, keep_traces=True,
            )
            return leak, unsafe

        leak, unsafe = benchmark.pedantic(run, rounds=1, iterations=1)
        assert not leak.ok and not unsafe.ok
        report("E5 model check",
               f"no-seqnos: leak found after {leak.states} states "
               f"(trace length {len(leak.violations[0].trace)}); "
               f"safety violation after {unsafe.states} states "
               f"(trace length {len(unsafe.violations[0].trace)})")

    @pytest.mark.benchmark(group="E5-model-check")
    def test_owner_opt_analysis(self, benchmark, report):
        """Section-5.2 analysis: the literal owner optimisation is
        unsafe even over FIFO channels (parallel sends to one client);
        the ack-promoting repair is safe over FIFO and still exhibits
        the paper's §5.2.2 race without ordering."""
        from repro.model.variants import (
            OwnerOptMachine,
            initial_owner_opt,
            owner_opt_violations,
        )

        def run():
            literal = explore(
                initial_owner_opt(nprocs=2, copies_left=2,
                                  ordered=True, repaired=False),
                machine=OwnerOptMachine(),
                checker=owner_opt_violations, keep_traces=True,
            )
            repaired = explore(
                initial_owner_opt(nprocs=3, copies_left=3,
                                  ordered=True, repaired=True),
                machine=OwnerOptMachine(),
                checker=owner_opt_violations, keep_traces=False,
                max_states=3_000_000,
            )
            unordered = explore(
                initial_owner_opt(nprocs=2, copies_left=2,
                                  ordered=False, repaired=True),
                machine=OwnerOptMachine(),
                checker=owner_opt_violations, keep_traces=True,
            )
            return literal, repaired, unordered

        literal, repaired, unordered = benchmark.pedantic(
            run, rounds=1, iterations=1
        )
        assert not literal.ok and repaired.ok and not unordered.ok
        report("E5 model check",
               f"owner-opt: literal spec UNSAFE even with FIFO "
               f"(counterexample length "
               f"{len(literal.violations[0].trace)}); ack-promoting "
               f"repair safe over {repaired.states} states; unordered "
               f"repair exhibits the §5.2.2 race (length "
               f"{len(unordered.violations[0].trace)})")

    @pytest.mark.benchmark(group="E5-model-check")
    @pytest.mark.parametrize("label,kwargs", [
        ("2p-2g-2w", dict(nprocs=2, grants_left=2, writes_left=2)),
        ("3p-2g-1w", dict(nprocs=3, grants_left=2, writes_left=1)),
    ])
    def test_leased_variant(self, benchmark, report, label, kwargs):
        """Protocol v4 read leases over the dirty sets: across every
        grant/invalidate/expire/CLEAN/crash interleaving, no replica
        is ever stale once the write completes, every lease holder is
        in pdirty, and quiescence leaves no leaked dirty-set entry."""
        from repro.model.variants import (
            LeasedMachine,
            initial_leased,
            leased_violations,
        )

        result = benchmark.pedantic(
            explore,
            args=(initial_leased(**kwargs),),
            kwargs={"machine": LeasedMachine(),
                    "checker": leased_violations, "keep_traces": False},
            rounds=1, iterations=1,
        )
        assert result.ok
        report("E5 model check", f"leased {label}: {result.summary()}")

    @pytest.mark.benchmark(group="E5-model-check")
    def test_leased_without_dead_ids(self, benchmark, report):
        """Negative control: forget the dead-id set (invalidations
        that overtake an in-flight grant) and the explorer finds the
        orphaned-replica race mechanically — proof the runtime's
        ``LeaseCache._dead_ids`` is load-bearing, not defensive."""
        from repro.model.variants import (
            LeasedMachine,
            initial_leased,
            leased_violations,
        )

        result = benchmark.pedantic(
            explore,
            args=(initial_leased(nprocs=2, grants_left=1, writes_left=1,
                                 use_dead_ids=False),),
            kwargs={"machine": LeasedMachine(),
                    "checker": leased_violations, "keep_traces": True},
            rounds=1, iterations=1,
        )
        assert not result.ok
        report("E5 model check",
               f"leased, no dead-id set: race found after "
               f"{result.states} states (trace length "
               f"{len(result.violations[0].trace)})")

    @pytest.mark.benchmark(group="E5-model-check")
    def test_liveness_drain(self, benchmark, report):
        """Liveness: from 50 random mid-run states, collector-only
        transitions always drain to quiescence with empty dirty
        tables (Theorem 21)."""
        machine = Machine()

        def run():
            drained = 0
            for seed in range(50):
                config = initial_configuration(
                    nprocs=3, nrefs=1, copies_left=3
                )
                partial = machine.run_random(
                    config, seed=seed, max_steps=25,
                    require_quiescence=False,
                )
                # Drop everything, then drain.
                final = machine.run_random(partial, seed=seed)
                assert not final.tdirty
                assert not final.msgs
                drained += 1
            return drained

        drained = benchmark.pedantic(run, rounds=1, iterations=1)
        assert drained == 50
        report("E5 model check",
               f"liveness: {drained}/50 random schedules drained to "
               "quiescence with empty dirty tables")
