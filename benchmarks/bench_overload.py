"""E12 — overload behaviour of the bounded ingress pipeline.

The claim under test: a server driven at ~10x its capacity by ~1k
pipelined clients stays *bounded* — memory does not grow with offered
load, worker threads stay at their cap, and a well-behaved probe
client sees finite tail latency (BUSY + retry) instead of an unbounded
queueing delay.  Without admission control every overload frame would
buffer somewhere: the dispatcher queue, the reactor corks, the kernel
— and RSS/p99 would track offered load instead of capacity.

Topology: one small-capacity server (few dispatcher workers, tight
global queue, per-connection inflight budgets) and N client spaces
each keeping a window of W pipelined calls in flight — N x W
simulated clients.  A separate probe space issues sequential
idempotent calls through ``retry_busy`` and records end-to-end
latency, overloaded vs unloaded.

``TestOverloadGate`` is the CI smoke variant: hardware-adaptive sizes,
assertions loose enough for a 2-core runner, done in seconds.
"""

import os
import threading
import time

import pytest

from repro import NetObj, Space, async_call
from repro.errors import NetObjError, ServerBusy
from repro.rpc.admission import AdmissionConfig, retry_busy
from benchmarks.conftest import peak_rss_bytes, percentile

#: Server capacity knobs: 4 workers x ~1ms of work ~= 4k calls/s.
SERVER_WORKERS = 4
WORK_SECONDS = 0.001

#: Per-connection read throttle; the global queue cap is sized per
#: run so the offered inflight (connections x this) always exceeds it
#: — otherwise read-pausing alone can absorb a small storm and the
#: shed path would go unexercised.
INFLIGHT_BUDGET = 32


class Worker(NetObj):
    def work(self) -> int:
        time.sleep(WORK_SECONDS)
        return 1


def _pump(surrogate, window: int, stop: threading.Event, out: dict):
    """One flood client: keep ``window`` calls in flight until told to
    stop, counting completions and sheds (a flood client does *not*
    retry — it re-offers new load immediately, which is the worst
    case admission control must absorb)."""
    inflight = []
    done = sheds = failures = 0
    try:
        while not stop.is_set():
            while len(inflight) < window and not stop.is_set():
                inflight.append(async_call(surrogate.work))
            if not inflight:
                break
            future = inflight.pop(0)
            try:
                future.result(60)
                done += 1
            except ServerBusy:
                sheds += 1
            except NetObjError:
                failures += 1
    finally:
        for future in inflight:
            try:
                future.result(60)
                done += 1
            except ServerBusy:
                sheds += 1
            except NetObjError:
                failures += 1
        out["done"] = done
        out["sheds"] = sheds
        out["failures"] = failures


def _probe(surrogate, stop: threading.Event, samples: list):
    """The well-behaved client: sequential calls, jittered BUSY
    retries, end-to-end latency per logical operation."""
    while not stop.is_set():
        start = time.perf_counter()
        try:
            retry_busy(lambda: surrogate.work(), attempts=4)
        except NetObjError:
            continue
        samples.append(time.perf_counter() - start)


def _run_overload(n_spaces: int, window: int, seconds: float):
    """Drive the flood + probe topology; returns everything the
    assertions and report rows need."""
    # Half the worst-case admitted inflight: the storm always fills
    # the queue past its cap, so BUSY shedding is exercised at every
    # topology size (including the 2-space CI gate).
    max_queued = max(8, n_spaces * INFLIGHT_BUDGET // 2)
    server = Space(
        "e12-server", listen=["tcp://127.0.0.1:0"], shm="off",
        dispatcher_max_workers=SERVER_WORKERS,
        admission=AdmissionConfig(
            max_inflight_frames=INFLIGHT_BUDGET,
            max_queued=max_queued,
            shard_queue_max=INFLIGHT_BUDGET,
            retry_after_ms=20,
        ),
    )
    endpoint = server.endpoints[0]
    server.serve("worker", Worker())
    clients = [Space(f"e12-client-{i}", shm="off") for i in range(n_spaces)]
    probe_space = Space("e12-probe", shm="off")
    rss_before = peak_rss_bytes()
    threads_baseline = threading.active_count()
    result = {}
    try:
        # Unloaded probe first: the comparison baseline.
        probe_target = probe_space.import_object(endpoint, "worker")
        unloaded = []
        for _ in range(100):
            start = time.perf_counter()
            probe_target.work()
            unloaded.append(time.perf_counter() - start)

        stop = threading.Event()
        tallies = [dict() for _ in clients]
        pumps = []
        for client, tally in zip(clients, tallies):
            surrogate = client.import_object(endpoint, "worker")
            pumps.append(threading.Thread(
                target=_pump, args=(surrogate, window, stop, tally),
                daemon=True,
            ))
        loaded = []
        prober = threading.Thread(
            target=_probe, args=(probe_target, stop, loaded), daemon=True,
        )
        for thread in pumps:
            thread.start()
        prober.start()
        time.sleep(seconds / 2)
        threads_mid_a = threading.active_count()
        workers_mid = server.dispatcher.stats()["workers"]
        time.sleep(seconds / 2)
        threads_mid_b = threading.active_count()
        stop.set()
        for thread in pumps:
            thread.join(120)
            assert not thread.is_alive(), "flood pump hung"
        prober.join(120)
        assert not prober.is_alive(), "probe hung"

        result.update(
            server_stats=server.stats(),
            tallies=tallies,
            unloaded=unloaded,
            loaded=loaded,
            rss_growth=peak_rss_bytes() - rss_before,
            threads_baseline=threads_baseline,
            threads_mid=(threads_mid_a, threads_mid_b),
            workers_mid=workers_mid,
        )
    finally:
        probe_space.shutdown()
        for client in clients:
            client.shutdown()
        server.shutdown()
    return result


def _assert_bounded(result, n_spaces: int, window: int):
    """The always-on E12 invariants, sized for any-hardware CI."""
    done = sum(t["done"] for t in result["tallies"])
    sheds = sum(t["sheds"] for t in result["tallies"])
    admission = result["server_stats"]["admission"]
    # The server made progress AND visibly refused the excess load.
    assert done > 0, "no flood call ever completed"
    assert admission["shed"] > 0, "10x overload but nothing was shed"
    assert sheds > 0, "no flood client ever observed a BUSY"
    # Inflight budgets actually throttled reads at least once.
    assert admission["read_pauses"] > 0
    # Worker threads sit at their cap, not at offered load.
    assert result["workers_mid"] <= SERVER_WORKERS
    mid_a, mid_b = result["threads_mid"]
    assert abs(mid_b - mid_a) <= 2, (
        f"thread count moved under steady overload: {mid_a} -> {mid_b}"
    )
    # Memory bounded: the whole topology (server + every client space
    # + N x W pickled frames in flight) stays far below what queueing
    # the raw overload would cost.
    assert result["rss_growth"] < 512 * 1024 * 1024, (
        f"RSS grew {result['rss_growth'] / 2**20:.0f} MiB under overload"
    )
    # The probe made progress throughout the storm.
    assert len(result["loaded"]) > 0, "well-behaved probe starved"


class TestOverloadGate:
    def test_overload_gate(self, report):
        """CI smoke: a scaled-down storm, bounded in seconds, asserts
        the shape of the result (sheds happened, threads flat, RSS
        bounded, probe alive) without latency numerology."""
        n_spaces = max(2, min(4, os.cpu_count() or 1))
        window = 32
        result = _run_overload(n_spaces, window, seconds=2.0)
        _assert_bounded(result, n_spaces, window)
        admission = result["server_stats"]["admission"]
        report(
            "E12 overload (gate)",
            f"{n_spaces * window:4d} clients: "
            f"shed={admission['shed']} "
            f"pauses={admission['read_pauses']} "
            f"rss_growth={result['rss_growth'] / 2**20:.0f}MiB",
        )


class TestOverloadE12:
    def test_overload_1k_clients(self, report):
        """The full E12 row: ~1k simulated clients at ~10x capacity."""
        n_spaces, window = 16, 64      # 1024 pipelined clients
        result = _run_overload(n_spaces, window, seconds=6.0)
        _assert_bounded(result, n_spaces, window)

        admission = result["server_stats"]["admission"]
        done = sum(t["done"] for t in result["tallies"])
        sheds = sum(t["sheds"] for t in result["tallies"])
        p99_unloaded = percentile(result["unloaded"], 0.99)
        p50_loaded = percentile(result["loaded"], 0.50)
        p99_loaded = percentile(result["loaded"], 0.99)
        if (os.cpu_count() or 1) >= 4:
            # The tail-latency claim needs real parallelism: on a 1-2
            # core host the flood and the server timeshare one CPU and
            # the probe measures the scheduler, not the pipeline.
            assert p99_loaded < 5.0, (
                f"probe p99 {p99_loaded:.2f}s — overload latency is "
                "unbounded, admission control is not shedding early"
            )
        report(
            "E12 overload",
            f"{n_spaces * window:4d} clients x {WORK_SECONDS * 1e3:.0f}ms "
            f"work vs {SERVER_WORKERS} workers: "
            f"done={done} shed(client)={sheds} shed(server)="
            f"{admission['shed']} pauses={admission['read_pauses']}",
            overload_clients=n_spaces * window,
            overload_done_calls=done,
            overload_server_sheds=admission["shed"],
            overload_read_pauses=admission["read_pauses"],
            overload_rss_growth_bytes=result["rss_growth"],
            overload_p99_unloaded_s=p99_unloaded,
            overload_p50_loaded_s=p50_loaded,
            overload_p99_loaded_s=p99_loaded,
        )
        report(
            "E12 overload",
            f"probe latency: unloaded p99 {p99_unloaded * 1e3:7.1f} ms | "
            f"loaded p50 {p50_loaded * 1e3:7.1f} ms, "
            f"p99 {p99_loaded * 1e3:7.1f} ms | "
            f"rss growth {result['rss_growth'] / 2**20:.0f} MiB",
        )


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
