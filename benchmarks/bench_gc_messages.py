"""E4 — Table 3: distributed-GC message overhead across algorithms.

For each workload (one import/drop cycle, the triangular third-party
handoff, fan-out to N clients, repeated churn), count the collector
messages each algorithm sends:

* Birrell base (counts straight off the abstract machine),
* the FIFO-channel variant (Section 5.1),
* the owner-optimised variant (Section 5.2),
* Lermen–Maurer, Weighted RC and Indirect RC (the related work of
  the comparison section).

The asserted shape: base ≥ FIFO ≥ owner-opt; decrement-only schemes
(WRC, IRC) cheapest; every algorithm collects the object at the end.
"""

import pytest

from repro.model.scenario import churn, fan_out, import_and_drop, third_party
from repro.model.variants import all_models

WORKLOADS = {
    "import+drop": (import_and_drop(), 2),
    "third-party": (third_party(), 3),
    "fan-out-8": (fan_out(8), 9),
    "churn-10": (churn(10), 2),
}


def count_messages(events, nprocs):
    rows = {}
    for model in all_models(nprocs):
        model.run(events)
        assert model.collected(), model.name
        rows[model.name] = (
            model.total_gc_messages(), dict(model.messages)
        )
    return rows


class TestGcMessageTable:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.benchmark(group="E4-gc-messages")
    def test_workload(self, benchmark, report, workload):
        events, nprocs = WORKLOADS[workload]
        rows = benchmark.pedantic(
            count_messages, args=(events, nprocs), rounds=1, iterations=1
        )
        report("E4 GC messages", f"[{workload}]")
        for name, (total, breakdown) in rows.items():
            report("E4 GC messages",
                   f"  {name:22s} {total:4d}  {breakdown}")

        base = rows["birrell"][0]
        fifo = rows["birrell-fifo"][0]
        opt = rows["birrell-owner-opt"][0]
        assert base >= fifo >= opt
        assert rows["weighted"][0] <= rows["lermen-maurer"][0]
        assert rows["indirect"][0] <= rows["lermen-maurer"][0]

    @pytest.mark.benchmark(group="E4-gc-messages")
    def test_per_cycle_costs(self, benchmark, report):
        """Per import/drop cycle: Birrell 5, FIFO 4, L&M 3 messages."""

        def run():
            rows = count_messages(import_and_drop(), 2)
            return {name: total for name, (total, _b) in rows.items()}

        totals = benchmark.pedantic(run, rounds=1, iterations=1)
        assert totals["birrell"] == 5
        assert totals["birrell-fifo"] == 4
        assert totals["lermen-maurer"] == 3
        assert totals["birrell-owner-opt"] == 1
        assert totals["weighted"] == 1
        assert totals["indirect"] == 1
        report("E4 GC messages",
               "per-cycle totals: " + str(totals))


class TestResurrectionAblation:
    @pytest.mark.benchmark(group="E4-gc-messages")
    def test_note4_cancellation_saves_a_full_cycle(self, benchmark, report):
        """Ablation of the Note-4 optimisation: a copy that arrives
        while the clean call is merely *scheduled* cancels it — the
        re-import costs one copy_ack instead of a clean/clean_ack/
        dirty/dirty_ack/copy_ack quintet."""
        from repro.model.scenario import ScenarioRun

        def run():
            # With cancellation: drop, then re-copy before the clean
            # daemon runs.
            fast = ScenarioRun(2)
            fast.copy(0, 1)
            baseline = fast.total_gc_messages()
            fast.drop(1, drain=False)     # clean scheduled, not sent
            fast.copy(0, 1)               # cancels it (resurrection)
            resurrect_cost = fast.total_gc_messages() - baseline

            # Without the window: the clean completes first, so the
            # re-import runs a full new life cycle.
            slow = ScenarioRun(2)
            slow.copy(0, 1)
            baseline = slow.total_gc_messages()
            slow.drop(1)                  # clean fully drains
            slow.copy(0, 1)
            full_cost = slow.total_gc_messages() - baseline
            return resurrect_cost, full_cost

        resurrect_cost, full_cost = benchmark.pedantic(
            run, rounds=1, iterations=1
        )
        assert resurrect_cost == 1   # just the copy_ack
        assert full_cost == 5        # clean, clean_ack, dirty, dirty_ack, copy_ack
        report("E4 GC messages",
               f"Note-4 ablation: re-import costs {resurrect_cost} msg "
               f"with cancellation vs {full_cost} without")


class TestBatchedCleans:
    @pytest.mark.benchmark(group="E4-gc-messages")
    def test_batched_vs_unit_clean_frames(self, benchmark, report):
        """100 surrogates dropped at once toward one owner: a protocol
        v3 client folds the clean calls into CLEAN_BATCH frames, a v2
        client (batching negotiated off) ships one CLEAN + CLEAN_ACK
        per reclamation.  Batching must cut collector frames by ≥5x."""
        import gc as pygc
        import time

        from repro import NetObj, Space
        from repro.sim.network import NetworkModel
        from repro.transport.simulated import SimTransport
        from repro.wire import protocol

        class Maker(NetObj):
            def make(self, count: int):
                return [Token() for _ in range(count)]

        class Token(NetObj):
            def poke(self):
                return True

        def reclaim_frames(version):
            transport = SimTransport(NetworkModel(latency=0.0001))
            server = Space("owner", listen=["sim://owner"],
                           transports=[transport])
            client = Space("client", listen=["sim://client"],
                           transports=[transport],
                           protocol_version=version)
            try:
                server.serve("maker", Maker())
                agent = client.import_object("sim://owner")
                maker = agent.get("maker")
                tokens = maker.make(100)
                assert all(t.poke() for t in tokens[:3])
                exported = server.stats()["gc"]["exported"]
                transport.network.reset_stats()
                del tokens
                pygc.collect()
                assert client.cleanup_daemon.wait_idle(30)
                deadline = time.time() + 10
                while time.time() < deadline:
                    if server.stats()["gc"]["exported"] == exported - 100:
                        break
                    time.sleep(0.01)
                assert server.stats()["gc"]["exported"] == exported - 100
                assert agent is not None and maker is not None
                tags = transport.stats.by_tag
                return sum(
                    tags.get(tag, 0)
                    for tag in (protocol.CLEAN, protocol.CLEAN_ACK,
                                protocol.CLEAN_BATCH,
                                protocol.CLEAN_BATCH_ACK)
                )
            finally:
                client.shutdown()
                server.shutdown()
                transport.shutdown()

        def run():
            return reclaim_frames(2), reclaim_frames(None)

        unit, batched = benchmark.pedantic(run, rounds=1, iterations=1)
        reduction = unit / batched
        report("E4 GC messages",
               f"100 reclamations to one owner: {unit} clean frames at "
               f"v2 (unit), {batched} at v3 (batched) — "
               f"{reduction:.1f}x fewer",
               unit_clean_frames_per_100=unit,
               batched_clean_frames_per_100=batched,
               clean_frame_reduction_x=round(reduction, 1))
        assert reduction >= 5.0


class TestRuntimeAgreement:
    @pytest.mark.benchmark(group="E4-gc-messages")
    def test_real_runtime_matches_model(self, benchmark, report):
        """The *actual* runtime (threads + sockets) sends exactly the
        message counts the abstract machine predicts for one
        import/drop cycle: 1 dirty, 1 dirty_ack, 1 copy_ack, 1 clean,
        1 clean_ack on the wire."""
        import gc as pygc
        import time

        from repro import NetObj, Space
        from repro.sim.network import NetworkModel
        from repro.transport.simulated import SimTransport
        from repro.wire import protocol

        class Maker(NetObj):
            def make(self):
                return Token()

        class Token(NetObj):
            def poke(self):
                return True

        def run():
            transport = SimTransport(NetworkModel(latency=0.0001))
            server = Space("owner", listen=["sim://owner"],
                           transports=[transport])
            client = Space("client", listen=["sim://client"],
                           transports=[transport])
            try:
                server.serve("maker", Maker())
                # Hold the agent surrogate explicitly so its own clean
                # call does not land inside the measurement window.
                agent = client.import_object("sim://owner")
                maker = agent.get("maker")
                transport.network.reset_stats()  # ignore bootstrap
                token = maker.make()
                assert token.poke()
                del token
                pygc.collect()
                client.cleanup_daemon.wait_idle()
                deadline = time.time() + 5
                while time.time() < deadline:
                    tags = transport.stats.by_tag
                    if tags.get(protocol.CLEAN_ACK, 0) >= 1:
                        break
                    time.sleep(0.01)
                assert agent is not None and maker is not None
                return dict(transport.stats.by_tag)
            finally:
                client.shutdown()
                server.shutdown()
                transport.shutdown()

        tags = benchmark.pedantic(run, rounds=1, iterations=1)
        gc_counts = {
            "dirty": tags.get(protocol.DIRTY, 0),
            "dirty_ack": tags.get(protocol.DIRTY_ACK, 0),
            "copy_ack": tags.get(protocol.COPY_ACK, 0),
            "clean": tags.get(protocol.CLEAN, 0),
            "clean_ack": tags.get(protocol.CLEAN_ACK, 0),
        }
        report("E4 GC messages",
               f"runtime-on-the-wire (one cycle): {gc_counts}")
        assert gc_counts == {
            "dirty": 1, "dirty_ack": 1, "copy_ack": 1,
            "clean": 1, "clean_ack": 1,
        }
