"""Smoke benchmarks: the hot path at tiny iteration counts.

CI runs this module on every PR (see .github/workflows/ci.yml) so a
hot-path regression — a reintroduced copy, a broken fast path, a
stalled dispatcher — fails mechanically within seconds instead of
surfacing as a mysteriously slower E1/E3 table three PRs later.

These are *sanity* gates, not measurements: iteration counts are tiny
and the assertions are loose enough to pass on a loaded CI runner.
The real numbers come from the full E1..E8 suite and from
``measure_hotpath.py``.
"""

import os
import threading
import time

import pytest

from repro import Space
from repro.marshal import dumps, loads
from repro.transport.reactor import default_reactor_shards
from repro.transport.tcp import TcpTransport
from benchmarks.bench_concurrency import handshake_idle_socket, io_thread_count
from benchmarks.conftest import Echo, _machine_stamp

#: Deliberately tiny: the whole module must finish in a few seconds.
SMOKE_CALLS = 50
SMOKE_PAYLOAD = 64 * 1024

#: Generous wall-clock ceilings (seconds) — an order of magnitude above
#: expected cost, tight enough to catch a stall or an O(n) blowup.
NULL_CALL_BUDGET = 5.0
THROUGHPUT_BUDGET = 5.0


def _timed_calls(fn, count=SMOKE_CALLS):
    fn()  # warm: dials the connection, primes the pools
    start = time.perf_counter()
    for _ in range(count):
        fn()
    return time.perf_counter() - start


class TestSmokeNullCall:
    def test_inproc(self, inproc_pair, report):
        server, client = inproc_pair
        echo = client.import_object(server.endpoints[0], "echo")
        elapsed = _timed_calls(echo.nothing)
        per_call_us = elapsed / SMOKE_CALLS * 1e6
        report("smoke", f"null call inproc : {per_call_us:9.1f} us",
               smoke_null_inproc_ns=per_call_us * 1e3)
        assert elapsed < NULL_CALL_BUDGET

    def test_tcp(self, tcp_pair, report):
        server, client = tcp_pair
        echo = client.import_object(server.endpoints[0], "echo")
        elapsed = _timed_calls(echo.nothing)
        per_call_us = elapsed / SMOKE_CALLS * 1e6
        report("smoke", f"null call tcp    : {per_call_us:9.1f} us",
               smoke_null_tcp_ns=per_call_us * 1e3)
        assert elapsed < NULL_CALL_BUDGET

    def test_fast_lane_engaged(self, tcp_pair, report):
        """Mechanical v5 regression gate: a run of null calls on an
        ``@quick`` scalar method must actually ride the fast lane —
        one CALL_BIND, then CALL_FAST frames served inline on the
        reactor with zero pickle fallbacks.  This catches a silently
        broken fast path on any hardware; the *speed* gate below only
        binds where the cores exist to show it."""
        server, client = tcp_pair
        echo = client.import_object(server.endpoints[0], "echo")
        echo.nothing()  # bind call
        fast0 = client.fastlane_calls
        inline0 = server.reactor.stats()["inline_dispatches"]
        for _ in range(SMOKE_CALLS):
            echo.nothing()
        fast = client.fastlane_calls - fast0
        inlined = server.reactor.stats()["inline_dispatches"] - inline0
        assert fast >= SMOKE_CALLS, client.stats()["fastlane"]
        # Inline dispatch must engage; the exact count may fall short
        # of SMOKE_CALLS on a loaded runner (a preemption mid-call can
        # legitimately demote the binding — that is the budget doing
        # its job, not a regression).
        assert inlined >= 1, server.stats()["fastlane"]
        assert client.fastlane_fallbacks == 0
        report("smoke",
               f"fast lane gate: {fast} typed calls, {inlined} inline",
               smoke_fastlane_calls=fast,
               smoke_inline_dispatches=inlined)

    def test_null_call_overhead_vs_raw(self, tcp_pair, report):
        """E1 acceptance gate in miniature: a same-machine netobj null
        call must land within x3 of a raw framed echo on the same
        transport.  The strict ratio only binds with >= 4 cores — on
        fewer, the client-side thread handoff (caller -> client
        reactor) serialises through one CPU and scheduler latency, not
        the object layer, dominates; single-core CI keeps a loose
        sanity ceiling."""
        transport = TcpTransport()

        def raw_echo_server(channel):
            while True:
                frame = channel.recv()
                if frame is None:
                    return
                channel.send(frame)

        listener = transport.listen(
            "tcp://127.0.0.1:0", lambda chan: raw_echo_server(chan)
        )
        raw_chan = transport.connect(listener.endpoint)

        def raw_call():
            raw_chan.send(b"\x00")
            raw_chan.recv(timeout=5)

        try:
            raw_s = _timed_calls(raw_call, count=200) / 200
        finally:
            raw_chan.close()
            listener.close()

        server, client = tcp_pair
        echo = client.import_object(server.endpoints[0], "echo")
        netobj_s = _timed_calls(echo.nothing, count=200) / 200
        ratio = netobj_s / raw_s
        report("smoke",
               f"null call vs raw : x{ratio:.1f} "
               f"({netobj_s * 1e6:.1f} us vs {raw_s * 1e6:.1f} us raw)",
               smoke_null_overhead_vs_raw_x=round(ratio, 2))
        assert ratio < 20
        if (os.cpu_count() or 1) >= 4:
            assert ratio <= 3.0, (
                f"null-call overhead regressed to x{ratio:.1f} raw"
            )


class TestBenchStampHygiene:
    def test_ci_numbers_come_from_committed_code(self):
        """A BENCH_*.json stamped from a dirty worktree names a commit
        whose code never produced those numbers.  Local runs may
        iterate dirty; CI runs must not."""
        stamp = _machine_stamp()
        if os.environ.get("CI"):
            assert stamp["dirty"] is not True, (
                "refusing to record benchmark numbers from a dirty "
                f"worktree in CI: {stamp}"
            )


class TestSmokeThroughput:
    def test_tcp_64k_echo(self, tcp_pair, report):
        server, client = tcp_pair
        echo = client.import_object(server.endpoints[0], "echo")
        payload = b"\xab" * SMOKE_PAYLOAD
        echo.echo(payload)  # warm
        start = time.perf_counter()
        for _ in range(SMOKE_CALLS):
            result = echo.echo(payload)
        elapsed = time.perf_counter() - start
        assert result == payload
        rate = 2 * SMOKE_PAYLOAD * SMOKE_CALLS / elapsed / 1e6
        report("smoke", f"throughput 64KiB : {rate:9.1f} MB/s",
               smoke_throughput_64KiB_mbps=rate)
        assert elapsed < THROUGHPUT_BUDGET


class TestSmokeFanIn:
    def test_many_idle_connections_few_io_threads(self, report):
        """Reactor gate: 32 idle inbound connections must not spawn 32
        reader threads.  A tiny replica of E8's fan-in row — breaking
        the shared-selector path fails here in under a second."""
        idle = 32
        with Space("smoke-fan-in", listen=["tcp://127.0.0.1:0"]) as server:
            socks = [
                handshake_idle_socket(server.endpoints[0])
                for _ in range(idle)
            ]
            try:
                deadline = time.monotonic() + 5.0
                while (server.reactor.active_connections < idle
                       and time.monotonic() < deadline):
                    time.sleep(0.01)
                assert server.reactor.active_connections >= idle
                threads = io_thread_count()
            finally:
                for sock in socks:
                    sock.close()
        report("smoke", f"fan-in {idle} idle conns: {threads} I/O threads",
               smoke_fan_in_io_threads=threads)
        # O(shards), never O(connections): one reactor and one accept
        # thread per shard, plus the shm side door and slack.
        assert threads <= 2 * default_reactor_shards() + 2


class TestSmokeMulticore:
    def test_four_shard_fan_in_no_deadlock(self, report):
        """Multicore gate: a 4-shard server under concurrent fan-in
        must (a) finish every call — no cross-shard deadlock between
        reactor threads, shard deques and stealing workers — and (b)
        keep resident thread counts O(shards + clients), not
        O(calls)."""
        shards, nclients, calls = 4, 8, 25
        with Space("smoke-mc", listen=["tcp://127.0.0.1:0"],
                   reactor_shards=shards, shm="off") as server:
            server.serve("echo", Echo())
            clients = [
                Space(f"smoke-mc-c{i}", reactor_shards=1, shm="off")
                for i in range(nclients)
            ]
            try:
                echoes = [
                    client.import_object(server.endpoints[0], "echo")
                    for client in clients
                ]
                failures = []

                def caller(echo, seed):
                    try:
                        for i in range(calls):
                            assert echo.echo(seed * calls + i) \
                                == seed * calls + i
                    except Exception as exc:  # noqa: BLE001 - gate
                        failures.append(exc)

                threads = [
                    threading.Thread(target=caller, args=(echo, seed))
                    for seed, echo in enumerate(echoes)
                ]
                start = time.perf_counter()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=30)
                elapsed = time.perf_counter() - start
                hung = [t for t in threads if t.is_alive()]
                assert not hung, "cross-shard deadlock: callers hung"
                assert not failures, failures[:3]
                io_threads = io_thread_count()
                stats = server.stats()
                spread = [
                    s["active_connections"]
                    for s in stats["reactor"]["per_shard"]
                ]
            finally:
                for client in clients:
                    client.shutdown()
        # Thread bound: server = shards reactors + shards accept
        # threads; each client = one reactor; plus slack for threads
        # mid-teardown.
        assert io_threads <= 2 * shards + nclients + 2
        assert sum(spread) == nclients
        assert stats["dispatcher"]["workers"] <= server.dispatcher.max_workers
        rate = nclients * calls / elapsed
        report("smoke",
               f"multicore {shards}-shard fan-in: {rate:9.0f} calls/s, "
               f"conns/shard {spread}, {io_threads} I/O threads",
               smoke_multicore_calls_per_s=round(rate),
               smoke_multicore_io_threads=io_threads)


class TestSmokeLeases:
    def test_read_lease_hit_rate_and_thread_hygiene(self, report):
        """Lease gate (E10 in miniature): a ``@reads`` method served
        under a read lease must actually hit the replica, survive a
        write invalidation, and leave no timer/helper threads behind —
        the lease layer is advertised as thread-free."""
        from repro import NetObj, reads

        class Dial(NetObj):
            def __init__(self):
                self.n = 0

            @reads
            def read(self):
                return self.n

            def write(self):
                self.n += 1
                return self.n

        threads_before = threading.active_count()
        with Space("smoke-lease-owner", listen=["tcp://127.0.0.1:0"],
                   shm="off") as server:
            server.serve("dial", Dial())
            with Space("smoke-lease-client", shm="off") as client:
                dial = client.import_object(server.endpoints[0], "dial")
                assert dial.read() == 0
                for _ in range(SMOKE_CALLS):
                    assert dial.read() == 0
                assert dial.write() == 1
                assert dial.read() == 1    # invalidated, re-leased
                holder = client.lease_stats()
                owner = server.lease_stats()
        hits = holder["lease_hits"]
        assert hits >= SMOKE_CALLS, holder
        assert owner["leases_granted"] >= 1
        assert owner["invalidations_sent"] >= 1
        # No thread growth: leases ride the existing reactor and
        # dispatcher; expiry is lazy (checked on read), not timed.
        deadline = time.monotonic() + 5.0
        while (threading.active_count() > threads_before
               and time.monotonic() < deadline):
            time.sleep(0.05)
        assert threading.active_count() <= threads_before
        report("smoke",
               f"lease gate: {hits} replica hits, "
               f"{owner['invalidations_sent']} invalidations, "
               "no thread growth",
               smoke_lease_hits=hits)


class TestSmokeFailover:
    def test_mesh_bootstrap_survives_replica_kill(self, report):
        """Naming-mesh gate (E11 in miniature): with a 3-replica mesh,
        killing one replica must not cost a client its bootstrap — a
        fresh :class:`ReplicatedAgent` discovers the survivors and
        resolves a name within its retry budget — and the mesh must
        not leak threads (gossip rides the reactor timer and the
        dispatcher, never its own thread)."""
        from repro import GcConfig
        from repro.naming.discovery import ReplicatedAgent
        from repro.naming.mesh import MeshAgent, MeshConfig

        threads_before = threading.active_count()
        spaces, agents, seeds = [], [], []
        client = Space("smoke-mesh-cli", shm="off",
                       gc=GcConfig(ping_interval=None))
        try:
            for rid in (1, 2, 3):
                agent = MeshAgent(rid, config=MeshConfig(
                    gossip_interval=0.1, election_timeout=0.5,
                ))
                space = Space(
                    f"smoke-mesh-r{rid}", listen=["tcp://127.0.0.1:0"],
                    gc=GcConfig(ping_interval=None), agent=agent,
                    shm="off",
                )
                agent.activate(join=list(seeds))
                seeds.append(space.endpoints[0])
                spaces.append(space)
                agents.append(agent)
            agents[0].put("svc", "value")
            deadline = time.monotonic() + 10
            while (not all("svc" in a.list() for a in agents)
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            assert all("svc" in a.list() for a in agents)

            spaces[1].shutdown()    # kill one replica
            start = time.perf_counter()
            agent = ReplicatedAgent(client, seeds, backoff=0.02)
            assert agent.get("svc") == "value"
            elapsed = time.perf_counter() - start
            assert elapsed < 10, "bootstrap blew the retry budget"
        finally:
            client.shutdown()
            for space in spaces:
                space.shutdown()
        deadline = time.monotonic() + 5.0
        while (threading.active_count() > threads_before
               and time.monotonic() < deadline):
            time.sleep(0.05)
        assert threading.active_count() <= threads_before, (
            "naming mesh leaked threads"
        )
        report("smoke",
               f"failover gate: bootstrap with 1/3 replicas dead in "
               f"{elapsed * 1000:6.1f} ms, no thread growth",
               smoke_failover_bootstrap_ms=round(elapsed * 1000, 1))


class TestSmokeMarshal:
    @pytest.mark.parametrize("value", [
        list(range(100)),
        "x" * 1000,
        b"\x00" * SMOKE_PAYLOAD,
        {"nested": [(1, 2.5), {"deep": None}], "flags": {True, False}},
    ], ids=["ints", "str-1k", "bytes-64k", "nested"])
    def test_round_trip(self, value):
        assert loads(dumps(value)) == value
