"""E2 — Table 2: marshaling cost by argument type and size.

The paper's second performance table breaks invocation cost down by
the type of data marshaled (integers, text, arrays of various
element types, linked structures, network object references).  We
benchmark our pickle subsystem on the same type families, plus the
graph-preserving cases the pickles are famous for (shared and cyclic
structures), and assert the expected shape: costs scale roughly
linearly in size and references marshal in O(1).
"""

import time

import pytest

from repro.marshal import dumps, loads


def round_trip(value):
    return loads(dumps(value))


def make_linked_list(n):
    head = None
    for i in range(n):
        head = {"value": i, "next": head}
    return head


PAYLOADS = {
    "int": 123456789,
    "float": 3.14159,
    "short-str": "hello world",
    "str-1k": "x" * 1000,
    "bytes-64k": bytes(64 * 1024),
    "ints-1k": list(range(1000)),
    "floats-1k": [float(i) for i in range(1000)],
    "strs-1k": [f"item-{i}" for i in range(1000)],
    "dict-1k": {f"key-{i}": i for i in range(1000)},
    "nested": {"a": [1, [2, [3, [4, {"b": (5, 6)}]]]], "c": {7, 8}},
    "linked-200": make_linked_list(200),
}


class TestMarshalByType:
    @pytest.mark.parametrize("kind", sorted(PAYLOADS))
    @pytest.mark.benchmark(group="E2-marshal")
    def test_round_trip(self, benchmark, kind):
        value = PAYLOADS[kind]
        result = benchmark(round_trip, value)
        if kind != "nested":  # sets compare fine; just sanity check
            assert result == value


class TestMarshalShape:
    @pytest.mark.benchmark(group="E2-shape")
    def test_scaling_and_sharing(self, benchmark, report):
        def measure(value, n=50):
            start = time.perf_counter()
            for _ in range(n):
                loads(dumps(value))
            return (time.perf_counter() - start) / n * 1e6

        def run():
            rows = {}
            for size in (100, 1000, 10000):
                rows[f"ints-{size}"] = measure(list(range(size)))
            shared = ["payload" * 50] * 100          # one string, 100 refs
            distinct = ["payload" * 50 + str(i) for i in range(100)]
            rows["shared-100"] = measure(shared)
            rows["distinct-100"] = measure(distinct)
            rows["bytes-1k"] = measure(bytes(1000))
            rows["bytes-100k"] = measure(bytes(100_000))
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        for kind, micros in rows.items():
            report("E2 marshal", f"{kind:15s}: {micros:9.1f} us/round-trip",
                   **{f"marshal_{kind}_ns": micros * 1e3})

        # Linear-ish scaling: 100x the elements should cost no more
        # than ~2x linear (per-pickle overhead amortises away).
        assert rows["ints-10000"] < 200 * rows["ints-100"]
        # Sharing pays: 100 aliases of one string beat 100 distinct.
        assert rows["shared-100"] < rows["distinct-100"]
        # Bulk bytes are near-memcpy: 100x size < 100x time.
        assert rows["bytes-100k"] < 120 * rows["bytes-1k"]

    @pytest.mark.benchmark(group="E2-shape")
    def test_wire_size_accounting(self, benchmark, report):
        def run():
            sizes = {}
            sizes["int"] = len(dumps(2**31))
            sizes["ints-1k"] = len(dumps(list(range(1000))))
            sizes["str-1k"] = len(dumps("x" * 1000))
            shared = ["y" * 1000] * 100
            sizes["shared-100x1k"] = len(dumps(shared))
            return sizes

        sizes = benchmark.pedantic(run, rounds=1, iterations=1)
        for kind, nbytes in sizes.items():
            report("E2 marshal", f"wire size {kind:15s}: {nbytes:8d} B")
        assert sizes["int"] <= 6
        assert sizes["str-1k"] <= 1010
        # Sharing: 100 aliases of a 1 KiB string fit in ~1.3 KiB.
        assert sizes["shared-100x1k"] < 1400


class TestAgainstStdlibPickle:
    @pytest.mark.benchmark(group="E2-shape")
    def test_cost_relative_to_stdlib(self, benchmark, report):
        """Context for the absolute numbers: our type-checked,
        graph-preserving format vs CPython's C-accelerated pickle.
        We accept a constant-factor penalty (pure Python vs C) —
        asserted bounded — in exchange for never executing remote
        data and for the explicit struct registry."""
        import pickle
        import time

        def measure(fn, value, n=30):
            fn(value)
            start = time.perf_counter()
            for _ in range(n):
                fn(value)
            return (time.perf_counter() - start) / n * 1e6

        def run():
            rows = {}
            for kind, value in (
                ("ints-1k", list(range(1000))),
                ("dict-1k", {f"k{i}": i for i in range(1000)}),
                ("bytes-100k", bytes(100_000)),
            ):
                ours = measure(lambda v: loads(dumps(v)), value)
                stdlib = measure(
                    lambda v: pickle.loads(pickle.dumps(v)), value
                )
                rows[kind] = (ours, stdlib)
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        for kind, (ours, stdlib) in rows.items():
            ratio = ours / stdlib if stdlib else float("inf")
            report("E2 marshal",
                   f"vs stdlib pickle {kind:12s}: ours {ours:8.1f} us, "
                   f"stdlib {stdlib:8.1f} us (x{ratio:.1f})")
        # Pure-Python penalty must stay a constant factor, and bulk
        # bytes (the throughput path) must be within ~10x of C.
        assert rows["bytes-100k"][0] < 10 * max(rows["bytes-100k"][1], 1.0)
        assert rows["ints-1k"][0] < 200 * max(rows["ints-1k"][1], 0.5)


class TestReferenceMarshalling:
    @pytest.mark.benchmark(group="E2-marshal")
    def test_netobj_reference_o1(self, benchmark, report):
        """Marshaling a network object is O(1): the wireRep crosses,
        not the object state."""
        from repro import NetObj, Space

        class Big(NetObj):
            def __init__(self):
                self.blob = bytes(10_000_000)  # 10 MB of state

            def poke(self):
                return len(self.blob)

        with Space("srv", listen=["inproc://e2-ref"]) as server, \
                Space("cli") as client:
            server.serve("big", Big())
            big = client.import_object(server.endpoints[0], "big")
            echo_back = benchmark(big.poke)
            assert echo_back == 10_000_000
        report("E2 marshal",
               "netobj ref marshal is O(1): a 10 MB object invokes at "
               "null-call speed (see E2-marshal test_netobj_reference_o1)")
