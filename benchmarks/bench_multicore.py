"""E9 — multi-core scale-out: sharded reactors under fan-in load.

PR 6 splits the single selector thread into a ``ReactorPool`` (one
selector per shard, SO_REUSEPORT-sharded accept path, per-shard
dispatcher deques with stealing).  The claim to verify: aggregate
call throughput at a 4-shard server beats the 1-shard server once
enough concurrent clients pile on, because inbound connections — and
their frame processing — spread across shards instead of serialising
behind one selector thread.

Hardware honesty: the scaling assertion (>= 2x from 1 -> 4 shards at
16 clients) only binds when ``os.cpu_count() >= 4``.  On fewer cores
the four selector threads time-slice one CPU and can only add context
switches; there the test still runs both configurations and asserts
the *structural* properties (connections spread across every shard,
no throughput collapse), so the machinery is exercised everywhere and
the speedup is measured wherever it is physically possible.
"""

import os
import threading
import time

import pytest

from repro import Space

from conftest import Echo

NCLIENTS = 16
CALLS_PER_CLIENT = 50


def _fan_in_rate(shards):
    """Aggregate calls/s of NCLIENTS concurrent callers against a
    ``shards``-reactor server, plus the per-shard connection spread."""
    with Space("e9-srv", listen=["tcp://127.0.0.1:0"],
               reactor_shards=shards, shm="off") as server:
        server.serve("echo", Echo())
        clients = [
            Space(f"e9-cli-{shards}-{i}", reactor_shards=1, shm="off")
            for i in range(NCLIENTS)
        ]
        try:
            echoes = [
                client.import_object(server.endpoints[0], "echo")
                for client in clients
            ]
            for echo in echoes:
                assert echo.echo(0) == 0  # dial + warm every connection

            def caller(echo):
                for i in range(CALLS_PER_CLIENT):
                    assert echo.echo(i) == i

            threads = [
                threading.Thread(target=caller, args=(echo,))
                for echo in echoes
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
            spread = [
                s["active_connections"]
                for s in server.stats()["reactor"]["per_shard"]
            ]
            stolen = server.stats()["dispatcher"]["stolen_tasks"]
        finally:
            for client in clients:
                client.shutdown()
    return NCLIENTS * CALLS_PER_CLIENT / elapsed, spread, stolen


class TestMulticoreScaling:
    @pytest.mark.benchmark(group="E9-multicore")
    def test_throughput_1_vs_4_shards(self, benchmark, report):
        def run():
            solo_rate, solo_spread, _ = _fan_in_rate(1)
            quad_rate, quad_spread, stolen = _fan_in_rate(4)
            return solo_rate, solo_spread, quad_rate, quad_spread, stolen

        (solo_rate, solo_spread, quad_rate,
         quad_spread, stolen) = benchmark.pedantic(run, rounds=1, iterations=1)
        ratio = quad_rate / solo_rate
        cores = os.cpu_count() or 1
        report("E9 multicore",
               f"{NCLIENTS} clients, 1 shard : {solo_rate:9.0f} calls/s "
               f"(conns/shard {solo_spread})",
               e9_calls_per_s_1shard=round(solo_rate))
        report("E9 multicore",
               f"{NCLIENTS} clients, 4 shards: {quad_rate:9.0f} calls/s "
               f"(conns/shard {quad_spread}, {stolen} stolen tasks)",
               e9_calls_per_s_4shard=round(quad_rate))
        report("E9 multicore",
               f"scaling 1 -> 4 shards: x{ratio:.2f} on {cores} core(s)"
               + ("" if cores >= 4 else
                  " — structural run only; scaling needs >= 4 cores"),
               e9_scaling_x=round(ratio, 2),
               e9_cpu_count=cores)

        # Structural, everywhere: every shard carries connections and
        # the sharded configuration does not collapse.
        assert solo_spread == [NCLIENTS]
        assert len(quad_spread) == 4
        assert sum(quad_spread) == NCLIENTS
        assert all(count >= 1 for count in quad_spread)
        assert ratio > 0.5
        # Scaling, where the hardware can express it.
        if cores >= 4:
            assert ratio >= 2.0
