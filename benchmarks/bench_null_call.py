"""E1 — Table 1: latency of a null method invocation.

The paper's headline performance table: elapsed time for a null call,
by placement (same address space / same machine / network) and by
system (Network Objects vs the raw RPC baseline without the object
layer).  We reproduce the *shape*: the object layer adds modest
overhead over raw framed messaging, and placement dominates cost.

Baseline substitution (see DESIGN.md): the paper's SRC RPC baseline is
replaced by a minimal framed echo loop on the same transports, with no
pickles, no object table and no GC.
"""

import threading

import pytest

from repro import Space
from repro.transport.inprocess import channel_pair
from repro.transport.tcp import TcpTransport

from conftest import Echo


def raw_echo_server(channel):
    while True:
        frame = channel.recv()
        if frame is None:
            return
        channel.send(frame)


class TestSameSpace:
    @pytest.mark.benchmark(group="E1-null-call")
    def test_netobj_same_space(self, benchmark, report):
        """A reference that comes home is the concrete object: a null
        'remote' call in the same space is a direct method call."""
        with Space("solo", listen=["inproc://solo-e1"]) as space:
            echo = Echo()
            space.serve("echo", echo)
            local = space.import_object(space.endpoints[0], "echo")
            assert local is echo  # concrete, not a surrogate
            result = benchmark(local.nothing)
            assert result is None
        report("E1 null call", f"same-space  netobj    : see benchmark table")


class TestSameMachine:
    @pytest.mark.benchmark(group="E1-null-call")
    def test_raw_inproc(self, benchmark):
        client, server = channel_pair()
        thread = threading.Thread(
            target=raw_echo_server, args=(server,), daemon=True
        )
        thread.start()

        def call():
            client.send(b"\x00")
            return client.recv(timeout=5)

        benchmark(call)
        client.close()

    @pytest.mark.benchmark(group="E1-null-call")
    def test_netobj_inproc(self, benchmark, inproc_pair):
        server, client = inproc_pair
        echo = client.import_object(server.endpoints[0], "echo")
        benchmark(echo.nothing)

    @pytest.mark.benchmark(group="E1-null-call")
    def test_raw_shm(self, benchmark, tmp_path):
        """Raw framed echo over the shared-memory ring (blocking
        mode): the same-machine floor once the kernel socket path is
        out of the picture."""
        from repro.transport.shm import ShmTransport

        transport = ShmTransport()
        listener = transport.listen(
            f"shm://{tmp_path}/e1-raw-shm.sock",
            lambda chan: raw_echo_server(chan),
        )
        client = transport.connect(listener.endpoint)

        def call():
            client.send(b"\x00")
            return client.recv(timeout=5)

        benchmark(call)
        client.close()
        listener.close()

    @pytest.mark.benchmark(group="E1-null-call")
    def test_netobj_shm(self, benchmark, shm_pair, report):
        """The full object layer over the shm ring: a loopback-TCP
        endpoint whose dial upgraded to shared memory (the fixture
        asserts the upgrade happened)."""
        server, client = shm_pair
        echo = client.import_object(server.endpoints[0], "echo")
        benchmark(echo.nothing)
        report("E1 null call",
               "same-machine netobj-over-shm: see E1-null-call benchmark "
               "group (test_netobj_shm vs test_raw_shm / test_raw_tcp)")

    @pytest.mark.benchmark(group="E1-shape")
    def test_shm_overhead_shape(self, benchmark, report, tmp_path):
        """Acceptance gate for the shm path: a same-machine netobj
        null call through the ring must land within 3x the raw framed
        loopback baseline.  Both ratios (vs raw-shm and vs raw-tcp)
        are reported.  The strict x3 gate only binds with >= 4 cores:
        on fewer, the four thread handoffs per call (caller ->
        server reactor -> dispatcher worker -> client reactor) are
        serialised through one CPU and scheduler latency — not the
        object layer — dominates, so single-core CI gets the same
        loose sanity ceiling the inproc/tcp shapes above use."""
        import os
        import time

        from repro.transport.shm import ShmTransport

        def time_it(fn, n=300):
            fn()  # warm
            start = time.perf_counter()
            for _ in range(n):
                fn()
            return (time.perf_counter() - start) / n * 1e6  # µs

        def run():
            transport = ShmTransport()
            listener = transport.listen(
                f"shm://{tmp_path}/e1-shape-shm.sock",
                lambda chan: raw_echo_server(chan),
            )
            raw_chan = transport.connect(listener.endpoint)

            def raw_shm_call():
                raw_chan.send(b"\x00")
                raw_chan.recv(timeout=5)

            raw_shm_us = time_it(raw_shm_call)
            raw_chan.close()
            listener.close()

            tcp = TcpTransport()
            tcp_listener = tcp.listen(
                "tcp://127.0.0.1:0", lambda chan: raw_echo_server(chan)
            )
            raw_tcp_chan = tcp.connect(tcp_listener.endpoint)

            def raw_tcp_call():
                raw_tcp_chan.send(b"\x00")
                raw_tcp_chan.recv(timeout=5)

            raw_tcp_us = time_it(raw_tcp_call)
            raw_tcp_chan.close()
            tcp_listener.close()

            with Space("shm-shape-srv",
                       listen=["tcp://127.0.0.1:0"]) as server, \
                    Space("shm-shape-cli") as client:
                server.serve("echo", Echo())
                echo = client.import_object(server.endpoints[0], "echo")
                netobj_us = time_it(echo.nothing)
                assert client.cache.stats()["upgraded_dials"] >= 1
            return raw_shm_us, raw_tcp_us, netobj_us

        raw_shm_us, raw_tcp_us, netobj_us = benchmark.pedantic(
            run, rounds=1, iterations=1
        )
        report("E1 null call",
               f"same-machine raw shm    : {raw_shm_us:9.1f} us",
               null_call_raw_shm_ns=raw_shm_us * 1e3)
        report("E1 null call",
               f"same-machine netobj shm : {netobj_us:9.1f} us "
               f"(x{netobj_us / raw_shm_us:.1f} raw shm, "
               f"x{netobj_us / raw_tcp_us:.1f} raw tcp)",
               null_call_shm_ns=netobj_us * 1e3,
               shm_overhead_vs_raw_tcp_x=round(netobj_us / raw_tcp_us, 2))
        assert netobj_us < 20 * raw_shm_us
        if (os.cpu_count() or 1) >= 4:
            assert netobj_us <= 3.0 * raw_tcp_us


class TestNetwork:
    @pytest.mark.benchmark(group="E1-null-call")
    def test_raw_tcp(self, benchmark):
        transport = TcpTransport()
        listener = transport.listen(
            "tcp://127.0.0.1:0",
            lambda chan: raw_echo_server(chan),
        )
        client = transport.connect(listener.endpoint)

        def call():
            client.send(b"\x00")
            return client.recv(timeout=5)

        benchmark(call)
        client.close()
        listener.close()

    @pytest.mark.benchmark(group="E1-null-call")
    def test_netobj_tcp(self, benchmark, tcp_pair):
        server, client = tcp_pair
        echo = client.import_object(server.endpoints[0], "echo")
        benchmark(echo.nothing)


class TestSimulatedWan:
    @pytest.mark.benchmark(group="E1-shape")
    def test_wan_latency_dominates(self, benchmark, report):
        """On a realistic network (1 ms one-way, simulated; measured
        in virtual time) the wire dwarfs the object layer: a null call
        costs ~1 RTT for netobj and raw alike — the paper's argument
        for why the abstraction is affordable where it matters."""
        from repro.sim.network import NetworkModel
        from repro.transport.simulated import SimTransport

        def run():
            transport = SimTransport(NetworkModel(latency=0.001))
            server = Space("wan-srv", listen=["sim://wan-srv"],
                           transports=[transport])
            client = Space("wan-cli", transports=[transport])
            try:
                server.serve("echo", Echo())
                echo = client.import_object("sim://wan-srv", "echo")
                echo.nothing()  # warm
                start = transport.clock.now()
                rounds = 20
                for _ in range(rounds):
                    echo.nothing()
                virtual = (transport.clock.now() - start) / rounds
                return virtual * 1e3  # ms of virtual time per call
            finally:
                client.shutdown()
                server.shutdown()
                transport.shutdown()

        virtual_ms = benchmark.pedantic(run, rounds=1, iterations=1)
        report("E1 null call",
               f"simulated WAN (1 ms one-way): {virtual_ms:.2f} ms/call "
               "virtual time — exactly one RTT; object layer invisible")
        assert 1.9 <= virtual_ms <= 2.5  # ~1 request + 1 reply


class TestShape:
    @pytest.mark.benchmark(group="E1-shape")
    def test_placement_and_overhead_shape(self, benchmark, report):
        """The paper's qualitative claims, asserted numerically:
        same-space ≪ cross-space, and the object layer costs less
        than ~20x raw messaging on the same transport."""
        import time

        def time_it(fn, n=300):
            fn()  # warm
            start = time.perf_counter()
            for _ in range(n):
                fn()
            return (time.perf_counter() - start) / n * 1e6  # µs

        def run():
            # shm="off": the "network" rows must measure sockets, not
            # the same-machine shm upgrade.
            with Space("shape-srv", listen=["inproc://shape-e1",
                                            "tcp://127.0.0.1:0"],
                       shm="off") as server:
                echo_impl = Echo()
                server.serve("echo", echo_impl)
                local = server.import_object("inproc://shape-e1", "echo")
                same_space = time_it(local.nothing)

                with Space("shape-cli", shm="off") as client:
                    via_inproc = client.import_object(
                        "inproc://shape-e1", "echo"
                    )
                    inproc_us = time_it(via_inproc.nothing)
                    via_tcp = client.import_object(
                        server.endpoints[1], "echo"
                    )
                    tcp_us = time_it(via_tcp.nothing)
                    fastlane = dict(client.stats()["fastlane"])
                fastlane["inline_dispatches"] = \
                    server.stats()["fastlane"]["inline_dispatches"]
                fastlane["inline_demotions"] = server.inline_demotions

            # Raw baselines.
            client_chan, server_chan = channel_pair()
            threading.Thread(
                target=raw_echo_server, args=(server_chan,), daemon=True
            ).start()

            def raw_inproc_call():
                client_chan.send(b"\x00")
                client_chan.recv(timeout=5)

            raw_inproc_us = time_it(raw_inproc_call)
            client_chan.close()

            transport = TcpTransport()
            listener = transport.listen(
                "tcp://127.0.0.1:0", lambda c: raw_echo_server(c)
            )
            raw_tcp_chan = transport.connect(listener.endpoint)

            def raw_tcp_call():
                raw_tcp_chan.send(b"\x00")
                raw_tcp_chan.recv(timeout=5)

            raw_tcp_us = time_it(raw_tcp_call)
            raw_tcp_chan.close()
            listener.close()
            return (same_space, raw_inproc_us, inproc_us, raw_tcp_us,
                    tcp_us, fastlane)

        (same_space, raw_inproc_us, inproc_us, raw_tcp_us,
         tcp_us, fastlane) = benchmark.pedantic(run, rounds=1, iterations=1)

        report("E1 null call", f"same-space   netobj : {same_space:9.1f} us",
               null_call_same_space_ns=same_space * 1e3)
        report("E1 null call", f"same-machine raw    : {raw_inproc_us:9.1f} us",
               null_call_raw_inproc_ns=raw_inproc_us * 1e3)
        report("E1 null call", f"same-machine netobj : {inproc_us:9.1f} us",
               null_call_inproc_ns=inproc_us * 1e3)
        report("E1 null call", f"network      raw    : {raw_tcp_us:9.1f} us",
               null_call_raw_tcp_ns=raw_tcp_us * 1e3)
        report("E1 null call", f"network      netobj : {tcp_us:9.1f} us",
               null_call_tcp_ns=tcp_us * 1e3)
        report("E1 null call",
               f"object-layer overhead: x{inproc_us / raw_inproc_us:.1f} "
               f"(same machine), x{tcp_us / raw_tcp_us:.1f} (network)",
               overhead_same_machine_x=round(inproc_us / raw_inproc_us, 2),
               overhead_network_x=round(tcp_us / raw_tcp_us, 2))
        report("E1 null call",
               "fast lane: "
               f"{fastlane['methods_bound']} bound, "
               f"{fastlane['fastlane_calls']} typed calls, "
               f"{fastlane['fastlane_fallbacks']} pickle fallbacks, "
               f"{fastlane['inline_dispatches']} inline dispatches, "
               f"{fastlane['inline_demotions']} demotions",
               **fastlane)

        assert same_space < inproc_us, "direct call must beat cross-space"
        assert same_space < tcp_us
        assert inproc_us < 100 * raw_inproc_us
        assert tcp_us < 20 * raw_tcp_us
