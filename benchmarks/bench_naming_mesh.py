"""E11 — naming-mesh failover: cold bootstraps against replica death.

The claim under test: with the naming service replicated across three
``netobjd``-style replicas, killing one replica mid-run costs clients
nothing after the failure settles — every cold bootstrap (discover the
roster from a seed, resolve a name) still succeeds, and the name table
converges across the survivors within two gossip periods.

Three phases:

* **E11_baseline** — sustained cold bootstraps against a single
  (unreplicated) agent: the pre-mesh configuration, for rate context
  and to show its failure mode (kill the agent and every bootstrap
  fails).
* **E11_failover** — the headline: a 3-replica mesh under a sustained
  bootstrap loop; one replica (the leader, the worst case) is killed
  mid-run.  Bootstraps started more than ``SETTLE`` seconds after the
  kill must *all* succeed.
* **E11_convergence** — after the kill, a write through one survivor
  must be visible on the other within two gossip periods.

Honesty notes: the bootstrap client reuses one Space (so TCP
connections to surviving replicas come from the connection cache —
"cold" means a fresh :class:`ReplicatedAgent` doing real discovery +
resolution RPCs, not a fresh process), and it runs ``leases="off"``
so every ``get`` is a real RPC rather than a lease-cache hit.
"""

import time

from repro import GcConfig, NameServiceError, Space
from repro.naming.discovery import ReplicatedAgent
from repro.naming.mesh import MeshAgent, MeshConfig
from tests.helpers import Counter, wait_until

#: Mesh gossip period for this experiment (the convergence bound is
#: asserted in units of this).
GOSSIP_S = 0.2
#: Failures inside this window after the kill are "during failover"
#: and tolerated; afterwards the mesh has settled and none are.
SETTLE_S = 1.0

RUN_BEFORE_KILL_S = 1.5
RUN_AFTER_KILL_S = 4.0


def _mesh_replica(rid: int, tag: str, join):
    agent = MeshAgent(
        rid,
        config=MeshConfig(gossip_interval=GOSSIP_S, suspect_after=2,
                          election_timeout=0.5),
    )
    space = Space(
        f"e11-r{rid}-{tag}", listen=["tcp://127.0.0.1:0"],
        gc=GcConfig(ping_interval=None), agent=agent, shm="off",
    )
    agent.activate(join=join)
    return space, agent


def _bootstrap_once(client, seeds, name):
    """One cold bootstrap: fresh discovery, then a name resolution."""
    agent = ReplicatedAgent(client, seeds, backoff=0.02)
    return agent.get(name)


class TestE11NamingMesh:
    def test_baseline_single_agent(self, report):
        with Space("e11-single", listen=["tcp://127.0.0.1:0"],
                   gc=GcConfig(ping_interval=None), shm="off") as lone, \
                Space("e11-cli0", leases="off", shm="off") as client:
            lone.serve("svc", Counter(1))
            endpoint = lone.endpoints[0]
            _bootstrap_once(client, [endpoint], "svc")  # warm the dial
            start = time.perf_counter()
            count = 0
            while time.perf_counter() - start < 1.0:
                _bootstrap_once(client, [endpoint], "svc")
                count += 1
            elapsed = time.perf_counter() - start
            rate = count / elapsed
        report("E11_naming_mesh",
               f"single-agent cold bootstraps: {rate:7.0f}/s "
               "(and one SIGKILL away from zero)",
               e11_single_bootstraps_per_s=round(rate))

    def test_failover_mid_run_kill(self, report):
        tag = "kill"
        spaces, agents = [], []
        join = []
        for rid in (1, 2, 3):
            space, agent = _mesh_replica(rid, tag, join=list(join))
            join.append(space.endpoints[0])
            spaces.append(space)
            agents.append(agent)
        owner = Space("e11-owner", listen=["tcp://127.0.0.1:0"],
                      gc=GcConfig(ping_interval=None), shm="off")
        client = Space("e11-cli", leases="off", shm="off",
                       gc=GcConfig(ping_interval=None))
        try:
            owner.import_object(join[0]).put("svc", Counter(7))
            assert wait_until(
                lambda: all(
                    "svc" in agent.list() for agent in agents
                ), timeout=10,
            )
            # Kill the leader mid-run: the worst case (writes must
            # re-elect; the roster every client discovers shrinks).
            assert wait_until(
                lambda: agents[0]._leader is not None, timeout=10
            )
            victim_id = agents[0]._leader
            victim_index = victim_id - 1
            seeds = [ep for i, ep in enumerate(join)
                     if i != victim_index]

            outcomes = []   # (t_since_kill or None, ok)
            kill_at = None

            def run_for(seconds):
                deadline = time.perf_counter() + seconds
                while time.perf_counter() < deadline:
                    begun = time.perf_counter()
                    try:
                        _bootstrap_once(client, seeds, "svc")
                        ok = True
                    except (NameServiceError, Exception):  # noqa: BLE001
                        ok = False
                    since_kill = (None if kill_at is None
                                  else begun - kill_at)
                    outcomes.append((since_kill, ok))

            run_for(RUN_BEFORE_KILL_S)
            kill_at = time.perf_counter()
            spaces[victim_index].shutdown()
            run_for(RUN_AFTER_KILL_S)

            before = [ok for since, ok in outcomes if since is None]
            settling = [ok for since, ok in outcomes
                        if since is not None and since <= SETTLE_S]
            settled = [ok for since, ok in outcomes
                       if since is not None and since > SETTLE_S]
            assert before and all(before), (
                f"{before.count(False)} bootstraps failed pre-kill"
            )
            assert settled, "run too short: no post-settle bootstraps"
            failed_settled = settled.count(False)
            assert failed_settled == 0, (
                f"{failed_settled}/{len(settled)} bootstraps failed "
                f"after the {SETTLE_S}s settle window"
            )
            total = len(outcomes)
            rate = total / (RUN_BEFORE_KILL_S + RUN_AFTER_KILL_S)
            survivor = [a for a in agents
                        if a.replica_id != victim_id][0]
            stats = survivor.naming_stats()
            report(
                "E11_naming_mesh",
                f"3-replica mesh, leader killed mid-run: "
                f"{total} bootstraps at {rate:5.0f}/s, "
                f"{settling.count(False)} failures in the "
                f"{SETTLE_S}s settle window, "
                f"{failed_settled}/{len(settled)} after settle "
                f"(elections {stats['elections']}, "
                f"failovers {stats['failovers']})",
                e11_mesh_bootstraps_total=total,
                e11_mesh_bootstraps_per_s=round(rate),
                e11_post_settle_failures=failed_settled,
                e11_post_settle_bootstraps=len(settled),
                e11_settle_window_failures=settling.count(False),
            )

            # -- convergence across the survivors after the kill -----
            survivors = [a for a in agents if a.replica_id != victim_id]
            writer, reader = survivors[0], survivors[1]
            converged_in = []
            for i in range(5):
                name = f"post-kill-{i}"
                t0 = time.perf_counter()
                writer.put(name, i)
                assert wait_until(
                    lambda: name in reader.list(),
                    timeout=GOSSIP_S * 10,
                ), f"{name} never reached the other survivor"
                converged_in.append(time.perf_counter() - t0)
            worst = max(converged_in)
            assert worst <= 2 * GOSSIP_S, (
                f"convergence took {worst:.3f}s "
                f"(> 2 gossip periods of {GOSSIP_S}s)"
            )
            report(
                "E11_naming_mesh",
                f"survivor convergence: worst {worst * 1000:6.1f} ms "
                f"over 5 writes (bound: 2 x {GOSSIP_S * 1000:.0f} ms "
                "gossip)",
                e11_convergence_worst_ms=round(worst * 1000, 1),
                e11_convergence_bound_ms=2 * GOSSIP_S * 1000,
            )
        finally:
            client.shutdown()
            owner.shutdown()
            for space in spaces:
                space.shutdown()
