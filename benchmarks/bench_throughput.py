"""E3 — Figure: data transfer throughput vs payload size.

The paper reports bulk-transfer performance of marshaled data; the
figure's shape is the classic one — per-call overhead dominates small
payloads, then throughput climbs and plateaus as the payload grows.
We reproduce the curve on both transports and assert the shape (the
large-payload rate beats the small-payload rate by a wide margin).
"""

import time

import pytest

SIZES = [2**10, 2**14, 2**17, 2**20]  # 1 KiB .. 1 MiB


def transfer_rate(echo, size: int, repeats: int = 8) -> float:
    """Round-trip MB/s for one payload size (payload travels twice)."""
    payload = b"\xab" * size
    echo.echo(payload)  # warm
    start = time.perf_counter()
    for _ in range(repeats):
        result = echo.echo(payload)
    elapsed = time.perf_counter() - start
    assert len(result) == size
    return 2 * size * repeats / elapsed / 1e6


class TestThroughputCurve:
    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.benchmark(group="E3-throughput-tcp")
    def test_tcp_echo(self, benchmark, tcp_pair, size):
        server, client = tcp_pair
        echo = client.import_object(server.endpoints[0], "echo")
        payload = b"\xab" * size
        result = benchmark(echo.echo, payload)
        assert len(result) == size

    @pytest.mark.benchmark(group="E3-shape")
    def test_curve_shape(self, benchmark, tcp_pair, report):
        server, client = tcp_pair
        echo = client.import_object(server.endpoints[0], "echo")

        def run():
            return {size: transfer_rate(echo, size) for size in SIZES}

        rates = benchmark.pedantic(run, rounds=1, iterations=1)
        for size, rate in rates.items():
            report("E3 throughput",
                   f"payload {size:8d} B : {rate:8.1f} MB/s round-trip",
                   **{f"throughput_{size}B_mbps": rate})
        # Shape: throughput grows with payload then flattens; the
        # megabyte payload must beat the kilobyte payload by >= 10x.
        assert rates[2**20] > 10 * rates[2**10]
        report("E3 throughput",
               f"amortisation factor 1MiB/1KiB: "
               f"x{rates[2**20] / rates[2**10]:.0f}")
