"""The network object layer: the paper's programming model.

Applications subclass :class:`NetObj` to declare remote interfaces and
implementations; a :class:`Space` hosts objects, serves invocations and
imports references from other spaces.  Everything else in this package
(object tables, surrogates, typecodes, marshal contexts) is runtime
machinery behind those two names.
"""

from repro.core.netobj import NetObj, quick, reads, remote_methods_of
from repro.core.surrogate import Surrogate
from repro.core.typecodes import (
    TypeRegistry, global_types, typechain, wiretypes,
)
from repro.core.objtable import ObjectTable
from repro.core.space import GcConfig, Space, async_call

__all__ = [
    "GcConfig",
    "async_call",
    "NetObj",
    "ObjectTable",
    "Space",
    "Surrogate",
    "TypeRegistry",
    "global_types",
    "quick",
    "reads",
    "remote_methods_of",
    "typechain",
    "wiretypes",
]
