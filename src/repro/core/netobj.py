"""The NetObj base class.

Subclassing :class:`NetObj` declares a network object type: every
public method (name not starting with ``_``) becomes remotely
invocable, and the subclass is registered in the global type registry
under its typecode so importing spaces can build surrogates for it.

A class can serve as a pure *interface* (methods raising
``NotImplementedError``) with concrete implementations subclassing it;
clients that only register the interface still narrow marshaled
references to it — that is the paper's stub-distribution story.
"""

from __future__ import annotations

from abc import ABCMeta
from typing import Tuple, Type

from repro.core.typecodes import global_types, typecode_of


#: Per-class remote surface, computed once — ``remote_methods_of`` sits
#: on the per-call dispatch path, and the MRO walk plus sort costs more
#: than the rest of method resolution combined.  Keyed by the class
#: object itself: a remote interface is fixed at class-definition time
#: (methods added to a class after definition are not remotely
#: callable, matching the stub-generation model of the paper).
_METHODS_CACHE: dict = {}
_METHOD_SET_CACHE: dict = {}
_READS_CACHE: dict = {}
_QUICK_CACHE: dict = {}


def reads(func):
    """Mark a method as a pure read of the object's lease-safe state.

    Surrogates may serve a ``@reads`` method from a lease-cached
    snapshot of the object's state with zero network traffic (see
    DESIGN.md, "Read leases").  The method must not mutate the object
    and must depend only on state captured by the lease snapshot.

    Alternatively a class can declare ``_lease_reads_ = ("get", ...)``
    to register read methods without decorating them (useful when the
    interface class is shared and the decorator would be intrusive).
    """
    func._netobj_reads_ = True
    return func


def reads_method_set(cls: Type) -> frozenset:
    """Remote methods of ``cls`` that are declared lease-safe reads.

    The union of ``@reads``-decorated methods and the names listed in
    ``_lease_reads_`` anywhere in the MRO, intersected with the remote
    surface.  Empty for classes that declare no reads — such classes
    never participate in leasing at all.
    """
    cached = _READS_CACHE.get(cls)
    if cached is not None:
        return cached
    names = set()
    for klass in cls.__mro__:
        if klass is object:
            continue
        names.update(klass.__dict__.get("_lease_reads_", ()))
        for name, member in klass.__dict__.items():
            if getattr(member, "_netobj_reads_", False):
                names.add(name)
    result = frozenset(names & remote_method_set(cls))
    _READS_CACHE[cls] = result
    return result


def quick(func):
    """Declare a method safe to run inline on the reactor I/O thread.

    A ``@quick`` method promises it never blocks: no I/O, no lock
    waits, no nested remote calls, sub-millisecond CPU.  On protocol
    v5 connections the server then executes it directly on the reactor
    shard that read the frame, skipping both thread handoffs (reactor →
    dispatcher → worker) of a normal dispatch — see DESIGN.md, "The
    call fast lane".  The promise is *checked*: a per-shard inline
    budget (time + count) demotes a binding whose calls overrun back
    to the dispatcher, so a mis-marked method degrades throughput
    instead of stalling every connection on its shard.

    A class may also declare ``_quick_methods_ = ("get", ...)`` to mark
    methods without decorating them (e.g. on a shared interface class).
    """
    func._netobj_quick_ = True
    return func


def quick_method_set(cls: Type) -> frozenset:
    """Remote methods of ``cls`` declared inline-safe with ``@quick``
    (or via ``_quick_methods_``), computed once per class like
    :func:`reads_method_set`."""
    cached = _QUICK_CACHE.get(cls)
    if cached is not None:
        return cached
    names = set()
    for klass in cls.__mro__:
        if klass is object:
            continue
        names.update(klass.__dict__.get("_quick_methods_", ()))
        for name, member in klass.__dict__.items():
            if getattr(member, "_netobj_quick_", False):
                names.add(name)
    result = frozenset(names & remote_method_set(cls))
    _QUICK_CACHE[cls] = result
    return result


def remote_methods_of(cls: Type) -> Tuple[str, ...]:
    """Public methods of ``cls``, i.e. its remote surface.

    Walks the class's own MRO rather than ``dir`` so that metaclass
    attributes (ABCMeta's ``register`` etc.) do not leak into the
    remote interface.
    """
    cached = _METHODS_CACHE.get(cls)
    if cached is not None:
        return cached
    names = set()
    for klass in cls.__mro__:
        if klass is object:
            continue
        for name in klass.__dict__:
            if name.startswith("_") or name in names:
                continue
            if callable(getattr(cls, name, None)):
                names.add(name)
    result = tuple(sorted(names))
    _METHODS_CACHE[cls] = result
    return result


def remote_method_set(cls: Type) -> frozenset:
    """``remote_methods_of`` as a frozenset, for membership tests."""
    cached = _METHOD_SET_CACHE.get(cls)
    if cached is None:
        cached = _METHOD_SET_CACHE[cls] = frozenset(remote_methods_of(cls))
    return cached


class NetObj(metaclass=ABCMeta):
    """Base class for network objects.

    Instances are *concrete objects* in the space that creates them
    (their owner).  Passing one through a remote invocation marshals
    it by wireRep; the receiving space obtains a surrogate whose
    methods invoke back to the owner.

    Class attributes:

    ``_typecode_``
        Optional stable wire name for the type; defaults to the
        class qualname.  Set it when refactoring moves a class, so
        old peers still narrow correctly.
    """

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        global_types.register(typecode_of(cls), cls, remote_methods_of(cls))
