"""Read leases: owner-granted cached object state (protocol v4).

The paper's invocation model charges every remote read a full RPC.
For read-mostly objects this module adds the classic lease
optimisation on top of the existing surrogate machinery: the owner
grants a client a *time-bounded read lease* together with a snapshot
of the object's lease-safe state; the client rebuilds a local replica
and serves ``@reads`` methods from it with zero network traffic until
the lease expires or the owner invalidates it on a write.

Two halves, mirroring the dirty/clean split of the collector:

* :class:`LeaseTable` — the owner half.  Leases live on the object's
  :class:`~repro.core.objtable.ExportedEntry` (``entry.leases``), so an
  entry drop discards them; this class owns the single lease lock, the
  id counter and the owner-side counters.  The core invariant is
  *lease holders ⊆ pdirty*: a grant requires the holder to be in the
  entry's dirty set, and both CLEAN and the pinger's purge retire the
  holder's lease — so under the formal GC model leases add no new
  liveness edges and can never leak a dirty-set entry.

* :class:`LeaseCache` — the client half: held replicas keyed by
  wireRep, plus the bookkeeping that makes the asynchronous protocol
  safe (dead-id set for invalidations racing grant registration, the
  unleasable set for types that cannot replicate client-side).

Clock discipline: the *holder* starts its expiry clock when it sends
the request, the *owner* when it grants — so the holder's deadline is
always strictly earlier than the owner's.  A writer that cannot reach
a holder may therefore simply wait out the owner-side deadline and be
certain the replica is no longer being served.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, Optional, Set, Tuple

from repro.wire.ids import SpaceID
from repro.wire.wirerep import WireRep


class Lease:
    """One owner-side lease: who holds it, until when, at what version."""

    __slots__ = ("lease_id", "holder", "deadline", "version")

    def __init__(self, lease_id: int, holder: SpaceID, deadline: float,
                 version: int):
        self.lease_id = lease_id
        self.holder = holder
        self.deadline = deadline
        self.version = version

    def remaining(self, now: Optional[float] = None) -> float:
        return self.deadline - (time.monotonic() if now is None else now)

    def __repr__(self) -> str:
        return (f"Lease(id={self.lease_id}, holder={self.holder}, "
                f"remaining={self.remaining():.3f}s, v{self.version})")


class LeaseTable:
    """Owner half: grant, retire and collect leases on exported entries.

    All mutation of ``entry.leases`` happens under this table's single
    lock.  Lock order is *lease lock → DgcOwner lock* only: the grant
    path pickles a snapshot under the lease lock (which may record
    reference copies, taking the owner lock), so the collector must
    never call in here while holding its own lock — DgcOwner retires
    leases after releasing it.
    """

    def __init__(self, max_ttl: float):
        self.max_ttl = max_ttl
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self.leases_granted = 0
        self.leases_denied = 0
        self.leases_released = 0
        self.invalidations_sent = 0
        self.expired_leases = 0

    @property
    def lock(self) -> threading.Lock:
        """The lease lock — grant/collect critical sections run under it."""
        return self._lock

    def grant(self, entry, holder: SpaceID, requested_ttl: float,
              snapshot) -> Lease:
        """Register a lease for ``holder`` on ``entry``.

        Caller MUST hold :attr:`lock` and have verified ``holder in
        entry.pdirty``.  ``snapshot(lease)`` runs inside the critical
        section — the pickled state and the registered lease are atomic
        with respect to writes (a write either sees the lease and
        invalidates it, or the snapshot captures the post-write state).
        If it raises, nothing is registered.  Replaces any prior lease
        the holder had (counted as expired or released accordingly).
        """
        prior = entry.leases.get(holder)
        if prior is not None:
            if prior.remaining() <= 0:
                self.expired_leases += 1
            else:
                self.leases_released += 1
        ttl = min(requested_ttl, self.max_ttl)
        lease = Lease(next(self._ids), holder,
                      time.monotonic() + ttl, entry.lease_version)
        snapshot(lease)
        entry.leases[holder] = lease
        self.leases_granted += 1
        return lease

    def retire(self, entry, holder: SpaceID,
               lease: Optional[Lease] = None) -> Optional[Lease]:
        """Drop ``holder``'s lease on ``entry`` (CLEAN, purge, release,
        or post-invalidation).  With ``lease`` given, retires only that
        exact lease — a stale retirement cannot kill a re-grant."""
        with self._lock:
            current = entry.leases.get(holder)
            if current is None:
                return None
            if lease is not None and current is not lease:
                return None
            del entry.leases[holder]
            if current.remaining() <= 0:
                self.expired_leases += 1
            else:
                self.leases_released += 1
            return current

    def retire_by_id(self, entry, holder: SpaceID, lease_id: int) -> None:
        """Retire by wire identity (LEASE_RELEASE carries the id)."""
        with self._lock:
            current = entry.leases.get(holder)
            if current is not None and current.lease_id == lease_id:
                del entry.leases[holder]
                if current.remaining() <= 0:
                    self.expired_leases += 1
                else:
                    self.leases_released += 1

    def begin_write(self, entry) -> "list[Lease]":
        """Write-path collect: bump the entry's lease version and take
        every outstanding lease.  Expired ones are retired on the spot
        (their holders already stopped serving the replica — holder
        clocks run ahead of ours); live ones are returned for the
        caller to invalidate, and stay registered until the writer
        confirms the ack (or waits out the deadline) via
        :meth:`retire`."""
        with self._lock:
            entry.lease_version += 1
            if not entry.leases:
                return []
            live = []
            now = time.monotonic()
            for holder, lease in list(entry.leases.items()):
                if lease.remaining(now) <= 0:
                    del entry.leases[holder]
                    self.expired_leases += 1
                else:
                    live.append(lease)
            self.invalidations_sent += len(live)
            return live

    def stats(self) -> dict:
        with self._lock:
            return {
                "leases_granted": self.leases_granted,
                "leases_denied": self.leases_denied,
                "leases_released": self.leases_released,
                "invalidations_sent": self.invalidations_sent,
                "expired_leases": self.expired_leases,
            }


class HeldLease:
    """One client-side lease: the local replica and its expiry."""

    __slots__ = ("lease_id", "replica", "deadline", "version")

    def __init__(self, lease_id: int, replica, deadline: float, version: int):
        self.lease_id = lease_id
        self.replica = replica
        self.deadline = deadline
        self.version = version


#: Bound on the remembered dead-lease ids (invalidations that raced
#: grant registration).  Tiny: the race window is one in-flight grant.
_DEAD_IDS_MAX = 256


class LeaseCache:
    """Client half: replicas held under lease, keyed by wireRep.

    Thread-safe.  The subtle part is the *invalidate-before-grant*
    race: the owner's LEASE_INVALIDATE is dispatched by a worker thread
    and may overtake the requester thread that is still unpickling the
    grant's snapshot.  An invalidation for a lease we do not hold yet
    is therefore remembered by id, and :meth:`register` refuses a grant
    whose id is already dead.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._held: Dict[WireRep, HeldLease] = {}
        self._last_ids: Dict[WireRep, int] = {}
        self._dead_ids: Set[Tuple[WireRep, int]] = set()
        self._acquiring: Set[WireRep] = set()
        self._no_lease: set = set()       # typecodes that cannot replicate
        self.lease_requests = 0
        self.lease_hits = 0
        self.lease_misses = 0
        self.invalidations_received = 0
        self.replica_expiries = 0

    def replica_for(self, wirerep: WireRep):
        """The live replica for ``wirerep``, or None (counts hit/miss).

        An expired entry is dropped here — client-side expiry needs no
        timer thread because every read passes through this check.
        """
        with self._lock:
            held = self._held.get(wirerep)
            if held is None:
                self.lease_misses += 1
                return None
            if held.deadline <= time.monotonic():
                del self._held[wirerep]
                self.replica_expiries += 1
                self.lease_misses += 1
                return None
            self.lease_hits += 1
            return held.replica

    def register(self, wirerep: WireRep, lease_id: int, replica,
                 deadline: float, version: int) -> bool:
        """Install a granted lease; False if it was already invalidated
        (the invalidation overtook the grant) or superseded.

        Owner lease ids are monotone, and a fresh grant replaces the
        holder's prior lease in the owner's table — so a grant whose id
        is not strictly newer than what we hold is one the owner has
        already forgotten.  Installing it would leave us serving a
        replica no future invalidation can name; refuse it instead.
        """
        with self._lock:
            if self._last_ids.get(wirerep, 0) < lease_id:
                self._last_ids[wirerep] = lease_id
            if (wirerep, lease_id) in self._dead_ids:
                self._dead_ids.discard((wirerep, lease_id))
                return False
            held = self._held.get(wirerep)
            if held is not None and held.lease_id >= lease_id:
                return False
            self._held[wirerep] = HeldLease(lease_id, replica, deadline,
                                            version)
            return True

    def begin_acquire(self, wirerep: WireRep) -> bool:
        """Single-flight guard: True if this thread should go ask the
        owner for a lease on ``wirerep``; False while another thread's
        request is already in flight (the caller falls back to one RPC
        and hits the fresh replica on its next read).  Pair every True
        with :meth:`end_acquire`."""
        with self._lock:
            if wirerep in self._acquiring:
                return False
            self._acquiring.add(wirerep)
            return True

    def end_acquire(self, wirerep: WireRep) -> None:
        with self._lock:
            self._acquiring.discard(wirerep)

    def invalidate(self, wirerep: WireRep, lease_id: int) -> None:
        """Owner-sent invalidation: drop the replica if we hold that
        lease, else remember the id so a late grant registration dies."""
        with self._lock:
            self.invalidations_received += 1
            held = self._held.get(wirerep)
            if held is not None and held.lease_id == lease_id:
                del self._held[wirerep]
                return
            if len(self._dead_ids) >= _DEAD_IDS_MAX:
                self._dead_ids.clear()
            self._dead_ids.add((wirerep, lease_id))

    def drop(self, wirerep: WireRep) -> Optional[HeldLease]:
        """Forget any held lease for ``wirerep`` (surrogate going away,
        CLEAN about to be sent, connection lost).  Returns what was
        held so the caller can send LEASE_RELEASE."""
        with self._lock:
            self._last_ids.pop(wirerep, None)
            return self._held.pop(wirerep, None)

    def last_lease_id(self, wirerep: WireRep) -> Optional[int]:
        """The most recent lease id seen for ``wirerep`` (for RENEW)."""
        with self._lock:
            return self._last_ids.get(wirerep)

    def mark_unleasable(self, typecode: str) -> None:
        with self._lock:
            self._no_lease.add(typecode)

    def leasable(self, typecode: str) -> bool:
        with self._lock:
            return typecode not in self._no_lease

    def held_count(self) -> int:
        with self._lock:
            now = time.monotonic()
            return sum(1 for h in self._held.values() if h.deadline > now)

    def stats(self) -> dict:
        with self._lock:
            return {
                "lease_requests": self.lease_requests,
                "lease_hits": self.lease_hits,
                "lease_misses": self.lease_misses,
                "invalidations_received": self.invalidations_received,
                "replica_expiries": self.replica_expiries,
                "held_leases": len(self._held),
            }
