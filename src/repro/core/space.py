"""The Space: one address space of the distributed system.

A ``Space`` owns every per-process structure of the paper's runtime —
object table, connection cache, dispatcher, the two halves of the
distributed collector, the cleanup daemon, the optional pinger and the
agent — and exposes the user-facing API:

    with Space("server", listen=["tcp://127.0.0.1:0"]) as server:
        server.serve("bank", BankImpl())

    with Space("client") as client:
        bank = client.import_object(server.endpoints[0], "bank")
        bank.deposit("alice", 100)

Everything a surrogate does funnels through :meth:`_invoke_remote`;
everything a peer asks of us funnels through :meth:`_handle_request`.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
import weakref
from types import FunctionType
from typing import Dict, List, Optional, Sequence

from repro.core.leases import LeaseCache, LeaseTable
from repro.core.marshalctx import MarshalContext, decode_ref
from repro.core.netobj import (
    NetObj, quick_method_set, reads_method_set, remote_method_set,
)
from repro.core.objtable import ObjectTable
from repro.core.surrogate import Surrogate
from repro.core.typecodes import (
    TypeRegistry,
    decode_scalar_args,
    decode_scalar_result,
    encode_scalar_args_into,
    encode_scalar_result_into,
    global_types,
    typechain,
)
from repro.dgc.client import DgcClient, TransientTable
from repro.dgc.config import GcConfig
from repro.dgc.daemon import CleanupDaemon
from repro.dgc.owner import DgcOwner
from repro.dgc.pinger import Pinger
from repro.errors import (
    CommFailure,
    ConnectionClosed,
    NameServiceError,
    NarrowingError,
    NetObjError,
    NoSuchMethodError,
    NoSuchObjectError,
    ProtocolError,
    RemoteError,
    ServerBusy,
    SpaceShutdownError,
    UnmarshalError,
)
from repro.dgc.states import RefState
from repro.marshal import tags
from repro.marshal.pickler import EMPTY_ARGS_PICKLE, NONE_PICKLE
from repro.marshal.snapshot import build_replica, snapshot_state
from repro.marshal.pool import MarshalPool
from repro.marshal.registry import StructRegistry, global_registry
from repro.marshal.unpickler import scan_netobj_payloads
from repro.naming.agent import Agent
from repro.rpc import messages
from repro.rpc.admission import (
    AdmissionConfig, AdmissionController, busy_backoff, retry_busy,
)
from repro.rpc.cache import ConnectionCache
from repro.rpc.connection import Connection
from repro.rpc.dispatcher import Dispatcher
from repro.rpc.futures import RemoteFuture
from repro.rpc.hotpath import HotpathProfile
from repro.transport.base import Transport, TransportRegistry, split_endpoint
from repro.transport.inprocess import InProcessTransport
from repro.transport.reactor import ReactorPool, default_reactor_shards
from repro.transport.shm import ShmTransport, rendezvous_path
from repro.transport.tcp import TcpTransport
from repro.wire import protocol as wire_protocol
from repro.wire.ids import SpaceID, fresh_space_id, intern_existing
from repro.wire.wirerep import SPECIAL_OBJECT_INDEX, WireRep

#: Fault kinds translated back into our exception types at the caller.
_FAULT_KINDS = {
    "NoSuchObjectError": NoSuchObjectError,
    "NoSuchMethodError": NoSuchMethodError,
    "NameServiceError": NameServiceError,
    "NarrowingError": NarrowingError,
    "UnmarshalError": UnmarshalError,
    "CommFailure": CommFailure,
}

#: First byte of :data:`NONE_PICKLE`; a one-byte result pickle with
#: this tag short-circuits the reply unpickle in ``_invoke_remote``.
_NONE_TAG = tags.NONE

#: Pickles shorter than this cannot hold two reference payloads, so the
#: dirty-prefetch scan is skipped without looking at them (keeps the
#: null-call hot path untouched).
_PREFETCH_MIN_BYTES = 64


class _MethodBinding:
    """The server half of one interned ``(object, method)`` pair.

    Registered in ``connection.bound_methods`` when a CALL_BIND frame
    arrives (protocol v5); every later CALL_BOUND/CALL_FAST carrying
    the same method id skips wirerep decode, the owner check, the
    object-table lookup, the remote-surface check and the method-name
    string entirely.  The binding caches the *entry* only weakly and
    the method as the plain function from the class dict: a strong
    entry (or bound method) would pin the object against the
    distributed collector for the life of the peer's connection, which
    would break the clean/drop story.  ``func`` is None for exotic
    descriptors (staticmethods, callable instance attributes) — those
    fall back to per-call ``getattr``.

    ``fault`` records a bind-time resolution failure as an
    ``(exception_class, message)`` pair replayed on every call — the
    same answer per-call resolution would keep giving.  ``demoted``
    flips once when an inline run of a mis-marked ``@quick`` method
    overran its budget; the binding then dispatches normally forever.
    """

    __slots__ = ("entry_ref", "method", "func", "quick", "invalidates",
                 "fault", "demoted")

    def __init__(self, method: str):
        self.entry_ref = _dead_ref
        self.method = method
        self.func = None
        self.quick = False
        self.invalidates = False
        self.fault = None
        self.demoted = False


def _dead_ref():
    """Stands in for a weakref whose entry never resolved."""
    return None


class Space:
    """One address space: objects, connections and collector state."""

    def __init__(
        self,
        nickname: str = "",
        listen: Sequence[str] = (),
        transports: Optional[Sequence[Transport]] = None,
        types: Optional[TypeRegistry] = None,
        structs: Optional[StructRegistry] = None,
        gc: Optional[GcConfig] = None,
        call_timeout: float = 30.0,
        protocol_version: Optional[int] = None,
        conn_idle_ttl: Optional[float] = None,
        reactor_shards: Optional[int] = None,
        dispatcher_max_workers: int = 256,
        dispatcher_idle_timeout: float = 5.0,
        shm: str = "auto",
        marshal_max_per_thread: int = 4,
        leases: str = "on",
        hotpath_profile: bool = False,
        agent: Optional[Agent] = None,
        admission=None,
    ):
        """``reactor_shards`` picks the I/O shard count (default
        ``min(4, cpu_count)``); ``dispatcher_max_workers`` and
        ``dispatcher_idle_timeout`` size the task pool; ``shm`` is
        ``"auto"`` (same-machine peers upgrade to the shared-memory
        transport when both sides run one) or ``"off"``;
        ``marshal_max_per_thread`` caps the per-thread codec stacks;
        ``leases`` is ``"on"`` (read leases granted and used on v4
        connections, for types that declare ``@reads`` methods) or
        ``"off"`` (every read is an RPC, as before v4);
        ``hotpath_profile`` turns on per-stage call-pipeline timing
        (see :mod:`repro.rpc.hotpath` — costs a few hundred ns per
        call, so it defaults to off); ``agent`` substitutes the name
        server exported at the special index (a
        :class:`~repro.naming.mesh.MeshAgent` turns this space into a
        naming-mesh replica); ``admission`` configures the bounded
        ingress pipeline — ``None`` enables it with the default
        :class:`~repro.rpc.admission.AdmissionConfig` budgets,
        ``"off"`` disables it entirely (pre-v6 unbounded behaviour),
        and an :class:`~repro.rpc.admission.AdmissionConfig` (or a
        ready :class:`~repro.rpc.admission.AdmissionController`)
        customises the budgets."""
        self.space_id = fresh_space_id(nickname)
        # Wire decodes of our own identity (the owner field of every
        # incoming call target) then return this very instance, making
        # the serve path's owner check an ``is`` hit.
        intern_existing(self.space_id)
        self.nickname = nickname
        self.call_timeout = call_timeout
        # The highest protocol version this space announces at HELLO;
        # lowering it (tests, staged rollouts) yields a well-formed
        # "old" peer that never sees v3 frames.
        self._protocol_version = (
            protocol_version if protocol_version is not None
            else wire_protocol.PROTOCOL_VERSION
        )
        self.gc_config = gc if gc is not None else GcConfig()
        self.types = types if types is not None else global_types
        self.structs = structs if structs is not None else global_registry

        shards = (max(1, reactor_shards) if reactor_shards is not None
                  else default_reactor_shards())
        self.reactor_shards = shards
        self._shm_mode = shm

        self.transports = TransportRegistry()
        if transports is None:
            transports = [
                InProcessTransport.default(),
                TcpTransport(listener_shards=shards),
            ]
            if shm != "off":
                transports = [*transports, ShmTransport()]
        for transport in transports:
            self.transports.add(transport)

        # The bounded ingress pipeline: one controller shared by every
        # connection of this space, so the budgets are per-space, not
        # per-channel.  ``"off"`` restores the pre-v6 unbounded paths.
        if admission == "off":
            self.admission: Optional[AdmissionController] = None
        elif isinstance(admission, AdmissionController):
            self.admission = admission
        elif isinstance(admission, AdmissionConfig):
            self.admission = AdmissionController(admission)
        elif admission is None:
            self.admission = AdmissionController(AdmissionConfig())
        else:  # pragma: no cover - misuse
            raise TypeError(
                "admission must be None, 'off', an AdmissionConfig or "
                f"an AdmissionController (got {type(admission).__name__})"
            )
        admission_config = (
            self.admission.config if self.admission is not None else None
        )

        self.dispatcher = Dispatcher(
            name=nickname or str(self.space_id),
            max_workers=dispatcher_max_workers,
            idle_timeout=dispatcher_idle_timeout,
            shards=shards if shards > 1 else 0,
            max_queued=(admission_config.max_queued
                        if admission_config is not None else None),
            shard_queue_max=(admission_config.shard_queue_max
                             if admission_config is not None else None),
        )
        self._marshal = MarshalPool(
            self.structs, max_per_thread=marshal_max_per_thread
        )
        self.object_table = ObjectTable(self.space_id)
        self.transient = TransientTable()
        self.dgc_owner = DgcOwner(self.object_table)
        # Read leases (protocol v4): the owner half lives on exported
        # entries via ``lease_table``; the client half caches replicas
        # in ``lease_cache``.  The collector retires a holder's lease
        # whenever it leaves a dirty set (CLEAN or pinger purge) — the
        # lease ⊆ pdirty invariant.
        self._leases_enabled = (
            leases != "off" and self._protocol_version >= 4
        )
        self.lease_table = LeaseTable(self.gc_config.lease_ttl)
        self.lease_cache = LeaseCache()
        self.dgc_owner.lease_retire = self.lease_table.retire
        self.dgc_client = DgcClient(
            self.object_table, self.types, self._gc_request,
            self._invoke_remote, self.gc_config,
        )
        self.cleanup_daemon = CleanupDaemon(
            self.dgc_client, self.gc_config,
            name=f"gc-cleanup-{nickname or self.space_id.short()}",
        )

        #: CLEAN_BATCH frames actually sent (v3 connections only);
        #: the daemon's ``batches_sent`` counts logical batch attempts.
        self.clean_batch_frames = 0

        # v5 call-fast-lane counters (surfaced as stats()["fastlane"];
        # inline_dispatches lives on the reactor shards).
        self.methods_bound = 0
        self.fastlane_calls = 0
        self.fastlane_fallbacks = 0
        self.inline_demotions = 0

        #: Per-stage hot-path buckets; instrumentation sites fire only
        #: when ``_hotpath`` is non-None (i.e. profiling was requested).
        self.hotpath = HotpathProfile()
        self._hotpath = self.hotpath if hotpath_profile else None

        self._listeners: List = []
        #: Same-machine side doors (shm rendezvous sockets), one per
        #: TCP listener.  Deliberately *not* in ``endpoints``: a
        #: marshaled reference must carry addresses any machine can
        #: dial, and shm discovery happens by convention
        #: (``rendezvous_path(port)``) instead.
        self._shm_listeners: List = []
        self._connections: set = set()
        self._conns_by_peer: Dict[SpaceID, List[Connection]] = {}
        self._conn_lock = threading.Lock()
        self._closed = threading.Event()

        # The space's I/O plane: ``reactor_shards`` selector threads,
        # started before any listener can accept.  Connections register
        # their channels with the pool, which pins each to the least
        # loaded shard; the cache's idle sweep rides shard 0's timer.
        self.reactor = ReactorPool(
            shards=shards, name=nickname or self.space_id.short()
        )
        self.reactor.start()

        self.cache = ConnectionCache(
            self._dial, idle_ttl=conn_idle_ttl,
            upgrade=self._shm_upgrade if shm != "off" else None,
        )
        if admission_config is not None:
            self.cache.busy_strike_limit = admission_config.busy_strikes
        if conn_idle_ttl is not None:
            # The tick only schedules; the sweep itself runs on a
            # dispatcher worker because its orderly goodbyes wait for
            # output to flush, which must never stall the I/O loop.
            self.reactor.add_timer(
                max(conn_idle_ttl / 4.0, 0.05),
                lambda: self.dispatcher.submit(self.cache.sweep_idle),
            )

        # The agent is the special object: pinned at index 0 so any
        # peer can bootstrap from just our endpoint.
        self.agent = agent if agent is not None else Agent()
        self.object_table.export(self.agent, pinned=True)
        bind_space = getattr(self.agent, "_bind_space", None)
        if bind_space is not None:
            bind_space(self)

        for endpoint in listen:
            self.add_listener(endpoint)

        self.pinger: Optional[Pinger] = None
        if self.gc_config.ping_interval is not None:
            self.pinger = Pinger(
                self.dgc_owner, self._ping_client, self.gc_config,
                name=f"gc-pinger-{nickname or self.space_id.short()}",
                on_purge=self._on_client_purged,
            )

        self._sweeper: Optional[threading.Thread] = None
        if self.gc_config.transient_ttl is not None:
            self._sweeper = threading.Thread(
                target=self._sweep_transients,
                name=f"gc-sweeper-{nickname or self.space_id.short()}",
                daemon=True,
            )
            self._sweeper.start()

    # -- lifecycle ---------------------------------------------------------------

    def __enter__(self) -> "Space":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Stop serving, close connections orderly, stop the daemons.

        Connections get a negotiated goodbye first: Bye, flush of any
        corked output, half-close — so peers observe our Bye and a
        clean end-of-stream rather than a reset that can destroy
        frames (including the Bye itself) still in kernel buffers.
        The wait for the peers' answering closes is bounded; whatever
        has not torn down by then is force-closed.  The reactor stops
        last, after every channel it owns is gone.
        """
        if self._closed.is_set():
            return
        self._closed.set()
        agent_shutdown = getattr(self.agent, "_shutdown", None)
        if agent_shutdown is not None:
            agent_shutdown()
        if self.pinger is not None:
            self.pinger.stop()
        self.cleanup_daemon.stop()
        for listener in (*self._listeners, *self._shm_listeners):
            listener.close()
        # Drain the dispatcher *before* the connection goodbyes: a
        # space quitting under overload must not execute its whole
        # backlog first, and each discarded task's on_shed hook sends
        # its waiting caller a BUSY reply — which only reaches the
        # peer while the connections are still open.  Tasks already
        # running keep their workers and reply normally.
        self.dispatcher.shutdown(discard_pending=True)
        with self._conn_lock:
            connections = list(self._connections)
        for connection in connections:
            connection.begin_close()
        deadline = time.monotonic() + 1.0
        for connection in connections:
            connection.await_closed(max(0.0, deadline - time.monotonic()))
        self.cache.close_all()
        for connection in connections:
            connection.close(notify_peer=False)
        self.reactor.stop()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    # -- listening ---------------------------------------------------------------

    def add_listener(self, endpoint: str) -> str:
        """Start listening on ``endpoint``; returns the concrete address.

        A TCP listener also opens the same-machine shm side door (a
        rendezvous socket derived from its port) when shm is enabled;
        failure to open it is non-fatal — the space simply stays
        TCP-only for local peers.
        """
        listener = self.transports.listen(endpoint, self._on_accept)
        self._listeners.append(listener)
        if self._shm_mode != "off" and "shm" in self.transports:
            try:
                scheme, rest = split_endpoint(listener.endpoint)
                if scheme == "tcp":
                    port = int(rest.rpartition(":")[2])
                    self._shm_listeners.append(self.transports.listen(
                        f"shm://{rendezvous_path(port)}", self._on_accept
                    ))
            except (CommFailure, ValueError):
                pass
        return listener.endpoint

    @property
    def endpoints(self) -> List[str]:
        return [listener.endpoint for listener in self._listeners]

    @property
    def public_endpoints(self) -> List[str]:
        """Endpoints embedded in marshaled references we own."""
        return self.endpoints

    # -- connections ---------------------------------------------------------------

    def _on_accept(self, channel) -> None:
        try:
            connection = Connection(
                channel, self.space_id, self.dispatcher,
                self._handle_request, on_close=self._on_conn_close,
                outbound=False, max_version=self._protocol_version,
                reactor=self.reactor, inline_handler=self._try_inline,
                profile=self._hotpath, admission=self.admission,
            )
        except (CommFailure, ProtocolError):
            return
        self._track(connection)

    def _shm_upgrade(self, endpoint: str) -> Optional[str]:
        """Map a loopback TCP endpoint to the peer's shm rendezvous
        socket, if one is parked at the conventional path.  Returns
        None when the endpoint isn't same-machine (or the side door
        isn't there) — the cache then dials the endpoint as given."""
        if "shm" not in self.transports:
            return None
        try:
            scheme, rest = split_endpoint(endpoint)
        except CommFailure:
            return None
        if scheme != "tcp":
            return None
        host, _, port_text = rest.rpartition(":")
        if host not in ("localhost", "::1") and not host.startswith("127."):
            return None
        try:
            int(port_text)
        except ValueError:
            return None
        path = rendezvous_path(int(port_text))
        if not os.path.exists(path):
            return None
        return f"shm://{path}"

    def _dial(self, endpoint: str) -> Connection:
        if self._closed.is_set():
            raise SpaceShutdownError("space is shut down")
        channel = self.transports.connect(endpoint)
        connection = Connection(
            channel, self.space_id, self.dispatcher,
            self._handle_request, on_close=self._on_conn_close,
            outbound=True, max_version=self._protocol_version,
            reactor=self.reactor, inline_handler=self._try_inline,
            profile=self._hotpath, admission=self.admission,
        )
        self._track(connection)
        return connection

    def _track(self, connection: Connection) -> None:
        with self._conn_lock:
            self._connections.add(connection)
            peers = self._conns_by_peer.setdefault(connection.peer_id, [])
            peers.append(connection)
        if self._closed.is_set():
            # An accept (or a dial raced by shutdown) landed after the
            # shutdown snapshot walked ``_connections``; nobody else
            # will ever close this connection, so do it here.  Closing
            # triggers ``_on_conn_close`` via the teardown hook.
            connection.close()
        if connection.closed:
            # Lost a race with teardown; make sure it is untracked
            # (teardown may have fired before we were in the set).
            self._on_conn_close(connection)

    def _on_conn_close(self, connection: Connection) -> None:
        with self._conn_lock:
            self._connections.discard(connection)
            peers = self._conns_by_peer.get(connection.peer_id)
            if peers is not None:
                if connection in peers:
                    peers.remove(connection)
                if not peers:
                    del self._conns_by_peer[connection.peer_id]
        self.cache.evict(connection)

    def connection_to(self, peer: SpaceID) -> Optional[Connection]:
        """Any live connection to ``peer`` (used by the pinger)."""
        with self._conn_lock:
            for connection in self._conns_by_peer.get(peer, ()):
                if not connection.closed:
                    return connection
        return None

    def _conn_for_endpoints(self, endpoints: Sequence[str]) -> Connection:
        failure: Exception = CommFailure("reference carries no endpoints")
        # Endpoints that keep answering BUSY are tried last, so a
        # reference with replica choice prefers healthy replicas.
        for endpoint in self.cache.healthy_order(endpoints):
            try:
                return self.cache.get(endpoint)
            except (CommFailure, SpaceShutdownError) as exc:
                failure = exc
        raise failure

    def _codec_ctx(self, connection: Connection) -> MarshalContext:
        """The codec context for ``connection``, created once per
        connection — it is stateless (space + connection only), so one
        instance serves every message on every thread."""
        ctx = connection.marshal_ctx
        if ctx is None:
            ctx = connection.marshal_ctx = MarshalContext(self, connection)
        return ctx

    # -- outgoing invocations ---------------------------------------------------------

    def _invoke_remote(self, wirerep: WireRep, endpoints: Sequence[str],
                       method: str, args: tuple, kwargs: dict,
                       fastlane: bool = False):
        """Entry point for every surrogate method call.

        The request is built in a single pooled frame buffer: envelope
        prefix first, then the args pickle (or, on the v5 fast lane,
        the typed scalar encoding) streamed directly after it (see
        DESIGN.md, "Hot path & copy discipline").  ``fastlane`` is the
        surrogate's build-time verdict that ``method`` declares a
        scalar-only signature; the actual arguments are still checked
        per call and fall back to the pickle lane when they do not
        conform.
        """
        if self._closed.is_set():
            raise SpaceShutdownError("space is shut down")
        profile = self._hotpath
        for retry in (False, True):
            connection = self._conn_for_endpoints(endpoints)
            call_id = connection.next_call_id()
            buffer, pending_bind = self._encode_call(
                connection, call_id, wirerep, method, args, kwargs, fastlane
            )
            try:
                reply = connection.call_buffer(call_id, buffer,
                                               timeout=self.call_timeout)
            except ConnectionClosed:
                # The idle sweep (or a peer goodbye) closed this
                # connection between the cache lookup and the send —
                # e.g. while a large argument was marshalling.  The
                # peer never saw the call, so one fresh dial is safe.
                if retry:
                    raise
                continue
            except ServerBusy:
                # Strike the endpoint so healthy_order demotes it; the
                # *caller* decides whether to retry — writes are never
                # auto-retried (the shed guarantee says the call did
                # not run, but policy stays with the invoking layer).
                self.cache.note_busy(connection.endpoint)
                raise
            if self.cache._busy_strikes:
                self.cache.note_ok(connection.endpoint)
            if pending_bind is not None:
                # The CALL_BIND frame is on the wire (its reply proves
                # it), so a bound call published now can never overtake
                # its bind on the stream.
                connection.method_ids.setdefault(*pending_bind)
            if profile is None:
                return self._decode_reply(connection, reply)
            start = time.perf_counter_ns()
            try:
                return self._decode_reply(connection, reply)
            finally:
                profile.decode_ns += time.perf_counter_ns() - start
                profile.decode_calls += 1

    def invoke_async(self, surrogate, method: str, *args, **kwargs
                     ) -> RemoteFuture:
        """Start ``surrogate.method(*args, **kwargs)`` without blocking.

        Returns a :class:`~repro.rpc.futures.RemoteFuture` whose
        ``result()`` yields the call's return value (or raises its
        exception).  Hundreds of invocations can be in flight on one
        connection — the reply frames complete the futures as they
        arrive, and the result pickle is decoded on the thread that
        first asks for it.  Most callers want :func:`repro.async_call`.
        """
        if not isinstance(surrogate, Surrogate):
            raise TypeError(
                "invoke_async needs a surrogate; local objects are "
                f"called directly (got {type(surrogate).__qualname__})"
            )
        if self._closed.is_set():
            raise SpaceShutdownError("space is shut down")
        for retry in (False, True):
            connection = self._conn_for_endpoints(surrogate._endpoints)
            call_id = connection.next_call_id()
            buffer, pending_bind = self._encode_call(
                connection, call_id, surrogate._wirerep, method, args,
                kwargs, method in surrogate._fastlane_methods_
            )
            try:
                future = connection.call_buffer_async(call_id, buffer)
            except ConnectionClosed:
                # See _invoke_remote: pre-send close, safe to redial.
                if retry:
                    raise
                continue
            if pending_bind is not None:
                # Published after the send, as in _invoke_remote.
                connection.method_ids.setdefault(*pending_bind)
            return RemoteFuture(
                future, lambda reply, c=connection: self._decode_reply(c, reply)
            )

    def _encode_call(self, connection: Connection, call_id: int,
                     wirerep: WireRep, method: str, args: tuple,
                     kwargs: dict, fastlane: bool = False):
        """Build one request frame in a pooled buffer (caller owns it).

        Returns ``(buffer, pending_bind)``: ``pending_bind`` is the
        ``((wirerep, method), method_id)`` pair the caller must publish
        into ``connection.method_ids`` once the frame has been sent
        (None when no new binding was announced).
        """
        profile = self._hotpath
        start = time.perf_counter_ns() if profile is not None else 0
        buffer = connection.new_send_buffer()
        pending_bind = None
        try:
            if connection.version >= 5:
                pending_bind = self._encode_call_v5(
                    connection, buffer, call_id, wirerep, method, args,
                    kwargs, fastlane,
                )
            else:
                messages.encode_call_prefix(buffer, call_id, wirerep, method)
                self._pickle_args_into(connection, buffer, args, kwargs)
        except BaseException:
            connection.discard_send_buffer(buffer)
            raise
        if profile is not None:
            profile.encode_ns += time.perf_counter_ns() - start
            profile.encode_calls += 1
        return buffer, pending_bind

    def _encode_call_v5(self, connection: Connection, buffer: bytearray,
                        call_id: int, wirerep: WireRep, method: str,
                        args: tuple, kwargs: dict, fastlane: bool):
        """The v5 request envelope: CALL_BIND on a binding's first
        call, CALL_FAST/CALL_BOUND afterwards.  Returns the pending
        bind publication (see :meth:`_encode_call`) or None."""
        key = (wirerep, method)
        method_id = connection.method_ids.get(key)
        if method_id is None:
            # First call through this binding: the METHOD_BIND
            # announcement rides the CALL frame itself, so interning
            # never costs an extra round trip.  Concurrent first calls
            # each announce their own id — the peer registers all of
            # them and ``method_ids`` settles on whichever send
            # publishes first.
            method_id = connection.next_method_id()
            self.methods_bound += 1
            messages.encode_bind_call_prefix(
                buffer, call_id, method_id, wirerep, method
            )
            self._pickle_args_into(connection, buffer, args, kwargs)
            return key, method_id
        if fastlane and not kwargs:
            base = len(buffer)
            messages.encode_fast_call_prefix(buffer, call_id, method_id)
            if encode_scalar_args_into(buffer, args):
                self.fastlane_calls += 1
                return None
            # The *signature* conforms but these arguments don't (a
            # surrogate where a scalar was annotated, an int beyond 64
            # bits, ...): rewind and take the pickle lane per call.
            del buffer[base:]
            self.fastlane_fallbacks += 1
        messages.encode_bound_call_prefix(buffer, call_id, method_id)
        self._pickle_args_into(connection, buffer, args, kwargs)
        return None

    def _pickle_args_into(self, connection: Connection, buffer: bytearray,
                          args: tuple, kwargs: dict) -> None:
        if not args and not kwargs:
            # Void-call fast path: ``((), {})`` has one canonical
            # encoding, so append it instead of running the pickler.
            buffer += EMPTY_ARGS_PICKLE
            return
        pickler = self._marshal.acquire_pickler(self._codec_ctx(connection))
        try:
            pickler.dump_into((args, kwargs), buffer)
        finally:
            self._marshal.release_pickler(pickler)

    def _decode_reply(self, connection: Connection,
                      reply: messages.Message):
        """Turn a reply message into the call's value (or exception)."""
        if type(reply) is messages.FastResult:
            # v5 typed scalar result: no pickle, no codec stack.
            return decode_scalar_result(reply.value_wire)
        if isinstance(reply, messages.Fault):
            raise self._fault_to_exception(reply)
        assert isinstance(reply, messages.Result)
        pickle = reply.result_pickle
        if len(pickle) == 1 and pickle[0] == _NONE_TAG:
            return None
        self._prefetch_refs(connection, pickle)
        unpickler = self._marshal.acquire_unpickler(self._codec_ctx(connection))
        try:
            return unpickler.loads(pickle)
        finally:
            self._marshal.release_unpickler(unpickler)

    @staticmethod
    def _fault_to_exception(fault: messages.Fault) -> Exception:
        known = _FAULT_KINDS.get(fault.kind)
        if known is not None:
            return known(fault.message)
        return RemoteError(fault.kind, fault.message, fault.remote_traceback)

    # -- read leases: client half ------------------------------------------------------

    def _invoke_read(self, surrogate: Surrogate, method: str, args: tuple,
                     kwargs: dict):
        """Invocation path of a ``@reads`` surrogate method.

        Serve from the lease-cached replica when one is held; acquire a
        lease on a miss; fall back to an ordinary remote invocation
        whenever leasing is off, denied, unavailable (pre-v4 peer) or
        the replica cannot run the method locally.
        """
        wirerep = surrogate._wirerep
        cache = self.lease_cache

        def remote_read():
            # @reads methods are idempotent by contract, so a BUSY shed
            # is retried after a jittered backoff (writes never are).
            return retry_busy(lambda: self._invoke_remote(
                wirerep, surrogate._endpoints, method, args, kwargs
            ))

        if (not self._leases_enabled
                or not cache.leasable(surrogate._surrogate_typecode_)):
            return remote_read()
        replica = cache.replica_for(wirerep)
        if replica is None:
            replica = self._acquire_lease(surrogate)
            if replica is None:
                return remote_read()
        try:
            return getattr(replica, method)(*args, **kwargs)
        except NotImplementedError:
            # The narrowed local class is a pure interface — its method
            # bodies are stubs.  This type cannot replicate here; stop
            # asking for leases on it and serve reads remotely.
            cache.mark_unleasable(surrogate._surrogate_typecode_)
            cache.drop(wirerep)
            return remote_read()

    def _acquire_lease(self, surrogate: Surrogate):
        """Ask the owner for a read lease; returns the replica or None.

        The holder-side expiry clock starts *before* the request is
        sent, so this replica always expires strictly earlier than the
        owner believes the lease does — an unreachable holder can be
        waited out safely by a writer.
        """
        if self._closed.is_set():
            return None
        cache = self.lease_cache
        wirerep = surrogate._wirerep
        if not cache.begin_acquire(wirerep):
            # Another reader's request is in flight; one RPC now beats
            # a duplicate grant (and the out-of-order registrations a
            # stampede of grants would produce).
            return None
        try:
            return self._request_lease(surrogate, wirerep)
        finally:
            cache.end_acquire(wirerep)

    def _request_lease(self, surrogate: Surrogate, wirerep: WireRep):
        cache = self.lease_cache
        try:
            connection = self._conn_for_endpoints(surrogate._endpoints)
        except (CommFailure, SpaceShutdownError):
            return None
        if connection.version < 4:
            # A pre-v4 peer never sees lease frames; every read on this
            # reference stays an RPC.
            return None
        cache.lease_requests += 1
        ttl_ms = max(1, int(self.gc_config.lease_ttl * 1000))
        sent_at = time.monotonic()
        call_id = connection.next_call_id()
        prior = cache.last_lease_id(wirerep)
        if prior is not None:
            request = messages.LeaseRenew(call_id, wirerep, prior, ttl_ms)
        else:
            request = messages.LeaseReq(call_id, wirerep, ttl_ms)
        try:
            reply = connection.call(request, timeout=self.call_timeout)
        except ServerBusy as busy:
            # A lease acquire is idempotent: one jittered retry, then
            # give up and let the read fall back to a plain RPC (which
            # carries its own busy-retry policy).
            time.sleep(busy_backoff(busy.retry_after, 0))
            try:
                reply = connection.call(request, timeout=self.call_timeout)
            except NetObjError:
                return None
        except NetObjError:
            return None
        if not isinstance(reply, messages.LeaseGrant) or not reply.ok:
            if isinstance(reply, messages.LeaseGrant) \
                    and reply.error == "unleasable":
                # The owner's class declares no @reads methods; asking
                # again for this type is pointless.
                cache.mark_unleasable(surrogate._surrogate_typecode_)
            return None
        unpickler = self._marshal.acquire_unpickler(self._codec_ctx(connection))
        try:
            state = unpickler.loads(reply.snapshot_pickle)
        except NetObjError:
            # UnmarshalError, or a CommFailure from the nested dirty
            # call a surrogate inside the snapshot makes if its owner
            # died — either way the read falls back to a plain RPC.
            return None
        finally:
            self._marshal.release_unpickler(unpickler)
        replica = build_replica(
            self.types.class_for(surrogate._surrogate_typecode_), state
        )
        deadline = sent_at + reply.ttl_ms / 1000.0
        if not cache.register(wirerep, reply.lease_id, replica, deadline,
                              reply.version):
            return None  # invalidated or superseded while in flight
        return replica

    def _release_lease(self, connection: Connection,
                       target: WireRep) -> None:
        """Drop any held lease on ``target`` and tell the owner — the
        clean path calls this so a resurrected surrogate can never be
        served defunct cached state, and so the owner retires the lease
        without waiting out its deadline."""
        held = self.lease_cache.drop(target)
        if held is not None and connection.version >= 4:
            try:
                connection.send(messages.LeaseRelease(target, held.lease_id))
            except CommFailure:
                pass  # owner gone; its lease dies with the connection

    # -- GC plumbing -------------------------------------------------------------------

    def _gc_request(self, endpoints: Sequence[str], kind: str, *,
                    target: Optional[WireRep] = None, seqno: int = 0,
                    strong: bool = False, entries: Sequence = ()):
        """Send collector traffic to an owner and await its ack(s).

        ``kind`` is "dirty", "clean" or "clean_batch".  A clean batch
        rides one CLEAN_BATCH frame when the connection negotiated
        protocol ≥ 3; toward a v2 peer it degrades to unit CLEAN
        frames here, so the cleanup daemon stays version-blind.
        """
        connection = self._conn_for_endpoints(endpoints)
        timeout = self.gc_config.gc_call_timeout
        if kind == "dirty":
            request = messages.Dirty(connection.next_call_id(), target, seqno)
            reply = connection.call(request, timeout=timeout)
            assert isinstance(reply, messages.DirtyAck)
            if not reply.ok:
                raise NoSuchObjectError(reply.error)
        elif kind == "clean":
            self._release_lease(connection, target)
            # Cleans are idempotent (the seqno dedups at the owner), so
            # a BUSY shed is retried with backoff; a dirty above is
            # not — its caller owns the must-not-lose-the-ack policy.
            retry_busy(lambda: connection.call(
                messages.Clean(
                    connection.next_call_id(), target, seqno, strong
                ),
                timeout=timeout,
            ))
        elif kind == "clean_batch":
            for entry_target, _seqno, _strong in entries:
                self._release_lease(connection, entry_target)
            if connection.version >= 3 and len(entries) > 1:
                self.clean_batch_frames += 1
                reply = retry_busy(lambda: connection.call(
                    messages.CleanBatch(
                        connection.next_call_id(), tuple(entries)
                    ),
                    timeout=timeout,
                ))
                assert isinstance(reply, messages.CleanBatchAck)
            else:
                for entry_target, entry_seqno, entry_strong in entries:
                    retry_busy(lambda t=entry_target, s=entry_seqno,
                               g=entry_strong: connection.call(
                        messages.Clean(connection.next_call_id(), t, s, g),
                        timeout=timeout,
                    ))
        else:  # pragma: no cover - internal misuse
            raise ValueError(f"unknown GC request kind {kind!r}")

    def _gc_dirty_async(self, endpoints: Sequence[str], target: WireRep,
                        seqno: int, on_done) -> None:
        """Send one dirty call without blocking.

        ``on_done(failure_or_None)`` runs exactly once when the ack
        lands (or the connection dies); an immediate send failure
        raises here instead and ``on_done`` is never invoked.  Used by
        the unmarshal path to pipeline the dirty calls of a message
        carrying several new references.
        """
        connection = self._conn_for_endpoints(endpoints)
        request = messages.Dirty(connection.next_call_id(), target, seqno)
        future = connection.call_async(request)

        def _finish(completed):
            failure = completed.exception(0)
            if failure is None:
                reply = completed.result(0)
                if isinstance(reply, messages.DirtyAck):
                    if not reply.ok:
                        failure = NoSuchObjectError(reply.error)
                elif isinstance(reply, messages.Fault):
                    failure = self._fault_to_exception(reply)
                else:
                    failure = ProtocolError(
                        "unexpected reply to dirty call: "
                        f"{type(reply).__name__}"
                    )
            on_done(failure)

        future.add_done_callback(_finish)

    def _prefetch_refs(self, connection: Connection, pickle) -> None:
        """Pipeline the dirty calls of a multi-reference message.

        Scans the still-encoded pickle for NETOBJ payloads; when it
        carries two or more references new to this space, their dirty
        calls are issued as futures *before* the sequential unpickle
        walks into them, collapsing k dirty round trips into ~1.  The
        unpickle then finds each entry already OK (or waits briefly on
        the in-flight dirty) and builds the surrogate as usual.  Dirty
        calls themselves stay synchronous per the formal model — only
        their mutual serialisation is removed.
        """
        if len(pickle) < _PREFETCH_MIN_BYTES:
            return
        payloads = scan_netobj_payloads(pickle)
        if len(payloads) < 2:
            return
        fresh = []
        seen = set()
        client = self.dgc_client
        for payload in payloads:
            try:
                wirerep, _copy_id, endpoints, chain = decode_ref(payload)
            except UnmarshalError:
                return  # corrupt; the real decode reports it properly
            if wirerep.owner == self.space_id or wirerep in seen:
                continue
            seen.add(wirerep)
            entry = client.entry(wirerep)
            if entry is not None and (
                entry.dirty_in_progress
                or entry.state not in (RefState.NONEXISTENT, RefState.NIL)
            ):
                continue  # already usable or busy; nothing to hide
            fresh.append((wirerep, endpoints, chain))
        if len(fresh) >= 2:
            client.prefetch_refs(fresh, self._gc_dirty_async)

    def _sweep_transients(self) -> None:
        """Expire transient pins whose copy_ack never came (the
        receiver presumably died mid-transfer); see
        GcConfig.transient_ttl."""
        ttl = self.gc_config.transient_ttl
        interval = self.gc_config.transient_sweep_interval
        while not self._closed.wait(interval):
            # One round per helper call: a sleeping thread's frame
            # locals must not pin the last expired object.
            self._release_expired(ttl)

    def _release_expired(self, ttl: float) -> None:
        for copy_id, pinned in self.transient.expire(ttl):
            entry = self.object_table.exported_entry_for(pinned)
            if entry is not None and copy_id in entry.tdirty:
                self.dgc_owner.release_copy(
                    self.object_table.wirerep_for(entry), copy_id
                )
            # Surrogate pins: dropping the strong reference is the
            # whole release; local collection does the rest.

    def _ping_client(self, client: SpaceID) -> bool:
        connection = self.connection_to(client)
        if connection is None:
            return False
        request = messages.Ping(connection.next_call_id())
        try:
            connection.call(request, timeout=self.gc_config.ping_timeout)
            return True
        except NetObjError:
            return False

    def _on_client_purged(self, client: SpaceID) -> None:
        """Pinger hook: a client space is dead and its dirty-set
        entries are purged.  Sweep the agent's third-party
        registrations whose objects that space owned — a ``get`` of
        such a name could only hand out a surrogate doomed to
        :class:`CommFailure` — and refresh any agent leases so
        clients' cached tables drop the names too."""
        sweep = getattr(self.agent, "_sweep_owner", None)
        if sweep is None:
            return
        removed = sweep(client)
        if removed:
            self._invalidate_after_write(self.agent, "remove")

    # -- serving -----------------------------------------------------------------------

    def _handle_request(self, connection: Connection,
                        message: messages.Message) -> None:
        # v5 steady-state call frames first: they are the hot path.
        mtype = type(message)
        if mtype is messages.FastCall:
            self._serve_fast_call(connection, message)
        elif mtype is messages.BoundCall:
            self._serve_bound_call(connection, message)
        elif isinstance(message, messages.Call):
            self._serve_call(connection, message)
        elif isinstance(message, messages.BindCall):
            # Register the binding, then serve the piggybacked call —
            # a BindCall carries the same fields a Call does.
            self._register_binding(connection, message)
            self._serve_call(connection, message)
        elif isinstance(message, messages.Dirty):
            ok, error = self._apply_dirty(connection.peer_id, message)
            self._reply(connection, messages.DirtyAck(message.call_id, ok, error))
        elif isinstance(message, messages.Clean):
            self.dgc_owner.handle_clean(
                connection.peer_id, message.target, message.seqno,
                message.strong,
            )
            self._reply(connection, messages.CleanAck(message.call_id))
        elif isinstance(message, messages.CleanBatch):
            for target, seqno, strong in message.entries:
                self.dgc_owner.handle_clean(
                    connection.peer_id, target, seqno, strong
                )
            self._reply(connection, messages.CleanBatchAck(
                message.call_id, len(message.entries)
            ))
        elif isinstance(message, messages.CopyAck):
            self._apply_copy_ack(message)
        elif isinstance(message, messages.Ping):
            self._reply(connection, messages.PingAck(message.call_id))
        elif isinstance(message, (messages.LeaseReq, messages.LeaseRenew)):
            self._serve_lease(connection, message)
        elif isinstance(message, messages.LeaseInvalidate):
            # Holder side: drop the replica, then ack.  Ack ordering
            # matters — the writer's result is withheld until this ack,
            # so a reader here can never see pre-write cached state
            # after the writer's call returned.
            self.lease_cache.invalidate(message.target, message.lease_id)
            self._reply(connection,
                        messages.LeaseInvalidateAck(message.call_id))
        elif isinstance(message, messages.LeaseRelease):
            self._apply_lease_release(connection.peer_id, message)
        # Unknown requests are dropped; replies are handled in Connection.

    def _apply_dirty(self, peer: SpaceID, message: messages.Dirty):
        if message.target.owner != self.space_id:
            return False, f"not the owner of {message.target}"
        return self.dgc_owner.handle_dirty(peer, message.target, message.seqno)

    def _apply_copy_ack(self, message: messages.CopyAck) -> None:
        pinned = self.transient.release(message.copy_id)
        if pinned is None:
            return
        if message.target.owner == self.space_id:
            self.dgc_owner.handle_copy_ack(message.target, message.copy_id)
        # For surrogate pins, dropping the strong reference is all the
        # release there is; local collection handles the rest.

    def _serve_call(self, connection: Connection, call: messages.Call) -> None:
        try:
            obj = self._resolve_target(call.target)
            method = self._resolve_method(obj, call.method)
            args, kwargs = self._decode_args(connection, call.args_pickle)
            profile = self._hotpath
            if profile is None:
                result = method(*args, **kwargs)
            else:
                start = time.perf_counter_ns()
                result = method(*args, **kwargs)
                profile.user_code_ns += time.perf_counter_ns() - start
                profile.user_code_calls += 1
            if self._leases_enabled:
                self._invalidate_after_write(obj, call.method)
            self._send_result(connection, call.call_id, result)
            return
        except NetObjError as exc:
            reply = messages.Fault(
                call.call_id, type(exc).__name__, str(exc), ""
            )
        except Exception as exc:  # noqa: BLE001 - application exception
            reply = messages.Fault(
                call.call_id, type(exc).__name__, str(exc),
                traceback.format_exc(),
            )
        self._reply(connection, reply)

    def _decode_args(self, connection: Connection, args_pickle):
        if args_pickle == EMPTY_ARGS_PICKLE:
            # Mirror of the void-call fast path in _invoke_remote.
            return (), {}
        profile = self._hotpath
        start = time.perf_counter_ns() if profile is not None else 0
        self._prefetch_refs(connection, args_pickle)
        unpickler = self._marshal.acquire_unpickler(
            self._codec_ctx(connection)
        )
        try:
            return unpickler.loads(args_pickle)
        finally:
            self._marshal.release_unpickler(unpickler)
            if profile is not None:
                profile.decode_ns += time.perf_counter_ns() - start
                profile.decode_calls += 1

    # -- the v5 call fast lane: serving bound calls ------------------------------------

    def _register_binding(self, connection: Connection,
                          message: messages.BindCall) -> None:
        """CALL_BIND: intern ``method_id`` for this connection.

        Resolution runs once, here; a failure is recorded in the
        binding and replayed as a fault on every call through it —
        the same answer per-call resolution would keep giving (a
        dropped object's index is never reused, and a class's remote
        surface is fixed at definition time).
        """
        binding = _MethodBinding(message.method)
        target = message.target
        if target.owner != self.space_id:
            binding.fault = (NoSuchObjectError, f"not the owner of {target}")
        else:
            entry = self.object_table.exported_entry(target.index)
            if entry is None:
                binding.fault = (NoSuchObjectError,
                                 f"no such object: {target}")
            else:
                cls = type(entry.obj)
                if message.method not in remote_method_set(cls):
                    binding.fault = (
                        NoSuchMethodError,
                        f"{cls.__qualname__} has no remote method "
                        f"{message.method!r}",
                    )
                else:
                    binding.entry_ref = weakref.ref(entry)
                    raw = getattr(cls, message.method, None)
                    if type(raw) is FunctionType:
                        # Ordinary def: calling ``func(obj, *args)``
                        # is exactly ``obj.method(*args)`` minus the
                        # per-call bound-method allocation.
                        binding.func = raw
                    binding.quick = message.method in quick_method_set(cls)
                    reads = reads_method_set(cls)
                    binding.invalidates = (
                        bool(reads) and message.method not in reads
                    )
        connection.bound_methods[message.method_id] = binding

    def _bound_target(self, connection: Connection, message):
        """Resolve a CALL_BOUND/CALL_FAST to ``(binding, obj)``.

        Raises the recorded bind-time fault, or NoSuchObjectError once
        the entry's weakref has died (the collector reclaimed the
        object after the peer's clean)."""
        binding = connection.bound_methods.get(message.method_id)
        if binding is None:
            raise NoSuchMethodError(
                f"unknown method binding {message.method_id} "
                "(bound call without a preceding CALL_BIND)"
            )
        if binding.fault is not None:
            raise binding.fault[0](binding.fault[1])
        entry = binding.entry_ref()
        if entry is None:
            raise NoSuchObjectError(
                f"object bound to method id {message.method_id} "
                "is no longer exported"
            )
        return binding, entry.obj

    def _serve_bound_call(self, connection: Connection,
                          call: messages.BoundCall) -> None:
        try:
            binding, obj = self._bound_target(connection, call)
            args, kwargs = self._decode_args(connection, call.args_pickle)
            func = binding.func
            profile = self._hotpath
            if profile is not None:
                start = time.perf_counter_ns()
            if func is not None:
                result = func(obj, *args, **kwargs)
            else:
                result = getattr(obj, binding.method)(*args, **kwargs)
            if profile is not None:
                profile.user_code_ns += time.perf_counter_ns() - start
                profile.user_code_calls += 1
            if self._leases_enabled and binding.invalidates:
                self._invalidate_after_write(obj, binding.method)
            self._send_result(connection, call.call_id, result)
            return
        except NetObjError as exc:
            reply = messages.Fault(
                call.call_id, type(exc).__name__, str(exc), ""
            )
        except Exception as exc:  # noqa: BLE001 - application exception
            reply = messages.Fault(
                call.call_id, type(exc).__name__, str(exc),
                traceback.format_exc(),
            )
        self._reply(connection, reply)

    def _serve_fast_call(self, connection: Connection,
                         call: messages.FastCall) -> None:
        """CALL_FAST: typed scalar args, typed scalar result when the
        value allows it.  May run on the frame-delivering thread (see
        :meth:`_try_inline`) — nothing here unpickles, so argument
        decode can never issue a nested dirty call."""
        try:
            binding, obj = self._bound_target(connection, call)
            args = decode_scalar_args(call.args_wire)
            func = binding.func
            profile = self._hotpath
            if profile is not None:
                start = time.perf_counter_ns()
            if func is not None:
                result = func(obj, *args)
            else:
                result = getattr(obj, binding.method)(*args)
            if profile is not None:
                profile.user_code_ns += time.perf_counter_ns() - start
                profile.user_code_calls += 1
            if self._leases_enabled and binding.invalidates:
                self._invalidate_after_write(obj, binding.method)
            self._send_fast_result(connection, call.call_id, result)
            return
        except NetObjError as exc:
            reply = messages.Fault(
                call.call_id, type(exc).__name__, str(exc), ""
            )
        except Exception as exc:  # noqa: BLE001 - application exception
            reply = messages.Fault(
                call.call_id, type(exc).__name__, str(exc),
                traceback.format_exc(),
            )
        self._reply(connection, reply)

    def _send_fast_result(self, connection: Connection, call_id: int,
                          result: object) -> None:
        """RESULT_FAST when the value is scalar, the classic pickled
        RESULT otherwise — the frames are self-describing, so the
        client needs no foreknowledge of which lane the result took."""
        buffer = connection.new_send_buffer()
        base = len(buffer)
        messages.encode_fast_result_prefix(buffer, call_id)
        if not encode_scalar_result_into(buffer, result):
            # Fast-lane method returned a non-scalar (a reference, a
            # struct...): rewind to the pickle lane for this result.
            del buffer[base:]
            pickler = self._marshal.acquire_pickler(
                self._codec_ctx(connection)
            )
            try:
                messages.encode_result_prefix(buffer, call_id)
                pickler.dump_into(result, buffer)
            except BaseException:
                connection.discard_send_buffer(buffer)
                raise
            finally:
                self._marshal.release_pickler(pickler)
        try:
            connection.send_buffer(buffer)
        except CommFailure:
            pass  # peer vanished; nothing to tell it

    def _try_inline(self, connection: Connection, message) -> bool:
        """Connection inline hook: run a ``@quick`` bound typed call
        directly on the thread that delivered its frame, skipping both
        dispatch hand-offs.  Budgeted per reactor shard (see
        transport.reactor); an overrunning call demotes its binding so
        a mis-marked blocking method stalls the shard at most once.
        Only CALL_FAST frames are eligible: their argument decode
        never unpickles, and lease-invalidating writers (which may
        block on holder acks) are excluded at bind time."""
        if type(message) is not messages.FastCall:
            return False
        binding = connection.bound_methods.get(message.method_id)
        if (binding is None or not binding.quick or binding.demoted
                or binding.fault is not None or binding.invalidates):
            return False
        reactor = connection._reactor
        if reactor is None or not reactor.try_acquire_inline():
            return False
        start = time.perf_counter_ns()
        self._serve_fast_call(connection, message)
        if reactor.record_inline(time.perf_counter_ns() - start):
            binding.demoted = True
            self.inline_demotions += 1
        return True

    def _send_result(self, connection: Connection, call_id: int,
                     result: object) -> None:
        """Encode and send a Result as one frame buffer (mirror image
        of the request path in :meth:`_invoke_remote`)."""
        buffer = connection.new_send_buffer()
        if result is None:
            messages.encode_result_prefix(buffer, call_id)
            buffer += NONE_PICKLE
        else:
            pickler = self._marshal.acquire_pickler(self._codec_ctx(connection))
            try:
                messages.encode_result_prefix(buffer, call_id)
                pickler.dump_into(result, buffer)
            except BaseException:
                connection.discard_send_buffer(buffer)
                raise
            finally:
                self._marshal.release_pickler(pickler)
        try:
            connection.send_buffer(buffer)
        except CommFailure:
            pass  # peer vanished; nothing to tell it

    # -- read leases: owner half -------------------------------------------------------

    def _serve_lease(self, connection: Connection, message) -> None:
        """Grant (or deny) a read lease: LEASE_REQ / LEASE_RENEW.

        The grant frame is built like a result frame — envelope prefix,
        then the state pickle streamed into the same buffer — but the
        snapshot runs *inside* the lease-table critical section, so it
        is atomic with respect to the write path's invalidation
        collect: a concurrent write either sees this lease registered
        (and invalidates it) or the snapshot captures the post-write
        state.  Never called under the collector's lock (lock order is
        lease lock → DgcOwner lock; the pickle may record copy pins).
        """
        holder = connection.peer_id
        target = message.target
        entry = None
        deny = None
        if not self._leases_enabled:
            deny = "leasing disabled"
        elif target.owner != self.space_id:
            deny = f"not the owner of {target}"
        else:
            entry = self.object_table.exported_entry(target.index)
            if entry is None:
                deny = f"no such object: {target}"
            elif not reads_method_set(type(entry.obj)):
                deny = "unleasable"
            elif holder not in entry.pdirty:
                # Lease ⊆ pdirty: a holder must be registered with the
                # collector first, so purge/CLEAN provably retire every
                # lease.  (Unlocked read: a racing clean is caught by
                # the retirement hook after the grant registers.)
                deny = "holder not in dirty set"
        if deny is not None:
            self.lease_table.leases_denied += 1
            self._reply(connection, messages.LeaseGrant(
                message.call_id, False, 0, 0, 0, deny, b""
            ))
            return
        if isinstance(message, messages.LeaseRenew):
            self.lease_table.retire_by_id(entry, holder, message.lease_id)
        ttl = min(message.ttl_ms / 1000.0, self.gc_config.lease_ttl)
        ttl_ms = max(1, int(ttl * 1000))
        buffer = connection.new_send_buffer()
        pickler = self._marshal.acquire_pickler(self._codec_ctx(connection))
        obj = entry.obj

        def snapshot(lease) -> None:
            messages.encode_lease_grant_prefix(
                buffer, message.call_id, lease.lease_id, ttl_ms,
                lease.version,
            )
            pickler.dump_into(snapshot_state(obj), buffer)

        try:
            with self.lease_table.lock:
                self.lease_table.grant(entry, holder, ttl, snapshot)
        except Exception as exc:  # noqa: BLE001 - unpicklable state etc.
            connection.discard_send_buffer(buffer)
            self.lease_table.leases_denied += 1
            self._reply(connection, messages.LeaseGrant(
                message.call_id, False, 0, 0, 0,
                f"snapshot failed: {exc}", b"",
            ))
            return
        finally:
            self._marshal.release_pickler(pickler)
        try:
            connection.send_buffer(buffer)
        except CommFailure:
            pass  # holder vanished; its lease expires on its own

    def _apply_lease_release(self, peer: SpaceID,
                             message: messages.LeaseRelease) -> None:
        if message.target.owner != self.space_id:
            return
        entry = self.object_table.exported_entry(message.target.index)
        if entry is not None:
            self.lease_table.retire_by_id(entry, peer, message.lease_id)

    def _invalidate_after_write(self, obj: NetObj, method_name: str) -> None:
        """Write-path invalidation: runs after the mutation, before its
        result frame is released.

        Every live lease holder gets a LEASE_INVALIDATE and the result
        is withheld until each has acked — or, for an unreachable
        holder, until the owner-side lease deadline has passed (the
        holder's own clock expired the replica strictly earlier, see
        :meth:`_acquire_lease`).  Either way, once the writer's call
        returns no reader anywhere can observe pre-write cached state.
        """
        reads = reads_method_set(type(obj))
        if not reads or method_name in reads:
            return  # not a leasable type, or a read — nothing to do
        entry = self.object_table.exported_entry_for(obj)
        if entry is None:
            return
        live = self.lease_table.begin_write(entry)
        if not live:
            return
        wirerep = self.object_table.wirerep_for(entry)
        version = entry.lease_version
        sends = []
        for lease in live:
            peer_conn = self.connection_to(lease.holder)
            future = None
            if peer_conn is not None and peer_conn.version >= 4:
                request = messages.LeaseInvalidate(
                    peer_conn.next_call_id(), wirerep, lease.lease_id,
                    version,
                )
                try:
                    future = peer_conn.call_async(request)
                except NetObjError:
                    future = None
            sends.append((lease, future))
        slack = self.gc_config.lease_invalidate_slack
        for lease, future in sends:
            if future is not None:
                budget = max(0.0, lease.remaining()) + slack
                if future.exception(budget) is None:
                    self.lease_table.retire(entry, lease.holder, lease)
                    continue
            # Unreachable (or unresponsive) holder: wait out the
            # owner-side deadline; the replica is already dead at the
            # holder by then.
            remaining = lease.remaining()
            if remaining > 0:
                time.sleep(remaining)
            self.lease_table.retire(entry, lease.holder, lease)

    def _resolve_target(self, target: WireRep) -> NetObj:
        if target.owner != self.space_id:
            raise NoSuchObjectError(f"not the owner of {target}")
        entry = self.object_table.exported_entry(target.index)
        if entry is None:
            raise NoSuchObjectError(f"no such object: {target}")
        return entry.obj

    def _resolve_method(self, obj: NetObj, name: str):
        if name not in remote_method_set(type(obj)):
            raise NoSuchMethodError(
                f"{type(obj).__qualname__} has no remote method {name!r}"
            )
        return getattr(obj, name)

    def _reply(self, connection: Connection, message) -> None:
        try:
            connection.send(message)
        except CommFailure:
            pass  # peer vanished; nothing to tell it

    # -- public API ----------------------------------------------------------------------

    def serve(self, name: str, obj: NetObj) -> None:
        """Publish ``obj`` under ``name`` in this space's agent."""
        if not isinstance(obj, NetObj):
            raise TypeError(
                f"serve() needs a NetObj, got {type(obj).__qualname__}"
            )
        self.agent.put(name, obj)
        # A local mutation bypasses the remote-call write path, so
        # clients holding a lease on the agent must be refreshed here.
        self._invalidate_after_write(self.agent, "put")

    def unserve(self, name: str) -> None:
        self.agent.remove(name)
        self._invalidate_after_write(self.agent, "remove")

    def import_object(self, endpoint: str, name: Optional[str] = None):
        """Bootstrap from a peer: its agent, or the object it serves
        under ``name``.

        This is the only way to obtain a first reference into another
        space; every further reference arrives through method calls.
        """
        if self._closed.is_set():
            raise SpaceShutdownError("space is shut down")
        connection = self.cache.get(endpoint)
        if connection.peer_id == self.space_id:
            return self.agent if name is None else self.agent.get(name)
        agent_rep = WireRep(connection.peer_id, SPECIAL_OBJECT_INDEX)
        agent_chain = tuple(typechain(Agent))
        agent_surrogate = self.dgc_client.acquire_ref(
            agent_rep, (endpoint,), agent_chain
        )
        if name is None:
            return agent_surrogate
        return agent_surrogate.get(name)

    # -- diagnostics ----------------------------------------------------------------------

    def stats(self) -> dict:
        """One snapshot of every subsystem's counters.

        The diagnostics front door: ``stats()["gc"]`` replaces direct
        ``gc_stats()`` access in tests and benchmarks, and the other
        sections expose the admission pipeline (``admission``: frames
        admitted/shed by stage, read pauses/resumes, backlog sheds —
        or ``{"enabled": False}`` with ``admission="off"``), the
        dispatcher pool, the connection cache, the reactor
        (``frames_in``/``frames_out``/``wakeups``/
        ``active_connections``/``paused_reads``), the v5 call fast lane
        (``fastlane``: methods bound, fast-lane calls and per-call
        fallbacks, inline dispatches/demotions), the per-stage
        hot-path profile (``hotpath``, all-zero unless the space was
        built with ``hotpath_profile=True``) and the name service
        (``naming``: ``mode`` single/mesh, entries; a mesh replica
        adds gossip rounds, entries synced, elections, failovers).
        """
        reactor = self.reactor.stats()
        return {
            "admission": (
                self.admission.stats() if self.admission is not None
                else {"enabled": False}
            ),
            "naming": self.agent.naming_stats(),
            "gc": self.gc_stats(),
            "dispatcher": self.dispatcher.stats(),
            "cache": self.cache.stats(),
            "reactor": reactor,
            "marshal": self._marshal.stats(),
            "leases": self.lease_stats(),
            "fastlane": {
                "methods_bound": self.methods_bound,
                "fastlane_calls": self.fastlane_calls,
                "fastlane_fallbacks": self.fastlane_fallbacks,
                "inline_dispatches": reactor["inline_dispatches"],
                "inline_demotions": self.inline_demotions,
            },
            "hotpath": self.hotpath.stats(
                enabled=self._hotpath is not None
            ),
        }

    def lease_stats(self) -> dict:
        """Owner- and client-side read-lease counters, merged (the two
        halves share no key names)."""
        return {**self.lease_table.stats(), **self.lease_cache.stats()}

    def gc_stats(self) -> dict:
        """A snapshot of collector counters (tests and benchmarks)."""
        return {
            "exported": self.object_table.exported_count(),
            "surrogates": self.dgc_client.live_surrogates(),
            "ref_entries": self.dgc_client.entry_count(),
            "transient_pins": len(self.transient),
            "dirty_calls_sent": self.dgc_client.dirty_calls_sent,
            "clean_calls_sent": self.dgc_client.clean_calls_sent,
            "dirty_calls_seen": self.dgc_owner.dirty_calls_seen,
            "clean_calls_seen": self.dgc_owner.clean_calls_seen,
            "objects_dropped": self.dgc_owner.objects_dropped,
            "resurrections": self.dgc_client.resurrections,
            "dropped_tasks": self.dispatcher.tasks_failed,
            "saturated_submits": self.dispatcher.saturated_submits,
            "failed_cleans": self.cleanup_daemon.cleans_failed,
            "clean_batches_sent": self.clean_batch_frames,
        }

    def __repr__(self) -> str:
        return f"<Space {self.space_id} endpoints={self.endpoints}>"


def async_call(method, *args, **kwargs) -> RemoteFuture:
    """Start ``surrogate.method(*args, **kwargs)`` without blocking.

    ``method`` must be a bound method of a surrogate::

        future = repro.async_call(bank.deposit, "alice", 100)
        ...
        future.result()

    Returns a :class:`~repro.rpc.futures.RemoteFuture`; see
    :meth:`Space.invoke_async`.  Calling it with anything but a bound
    surrogate method raises TypeError — local objects don't need it.
    """
    surrogate = getattr(method, "__self__", None)
    if not isinstance(surrogate, Surrogate):
        raise TypeError(
            "async_call needs a bound surrogate method, got "
            f"{method!r}"
        )
    space = getattr(surrogate._invoker, "__self__", None)
    if not isinstance(space, Space):
        raise TypeError(
            f"surrogate {surrogate!r} is not attached to a Space"
        )
    return space.invoke_async(surrogate, method.__name__, *args, **kwargs)


#: Re-exported for the package root.
__all__ = ["GcConfig", "Space", "async_call"]
