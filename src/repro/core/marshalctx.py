"""The marshal context: where object references meet the pickler.

One context is created per pickled message.  On the way out it turns
concrete objects and surrogates into wire payloads — exporting the
object if needed and pinning a transient dirty entry until the
receiver acknowledges.  On the way in it turns payloads back into the
local instance: the concrete object if we are the owner, otherwise the
(possibly freshly dirtied) surrogate, acknowledging the copy to the
sender only once the reference is safely registered.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.surrogate import Surrogate
from repro.errors import CommFailure, MarshalError, UnmarshalError
from repro.rpc import messages
from repro.wire.varint import read_uvarint, write_uvarint
from repro.wire.wirerep import WireRep


def _write_str(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    write_uvarint(out, len(raw))
    out += raw


def _read_str(data, offset: int):
    length, offset = read_uvarint(data, offset)
    end = offset + length
    if end > len(data):
        raise UnmarshalError("truncated reference payload")
    try:
        return str(data[offset:end], "utf-8"), end
    except UnicodeDecodeError as exc:
        raise UnmarshalError(f"invalid UTF-8 in reference payload: {exc}") from exc


def encode_ref(wirerep: WireRep, copy_id: int, endpoints: Tuple[str, ...],
               chain: Tuple[str, ...]) -> bytes:
    """Encode a reference payload (see PROTOCOL.md §4)."""
    out = bytearray()
    wirerep.to_wire(out)
    write_uvarint(out, copy_id)
    write_uvarint(out, len(endpoints))
    for endpoint in endpoints:
        _write_str(out, endpoint)
    write_uvarint(out, len(chain))
    for typecode in chain:
        _write_str(out, typecode)
    return bytes(out)


def decode_ref(payload):
    """Decode a reference payload; raises UnmarshalError on corruption.

    ``payload`` may be any bytes-like object — the zero-copy receive
    path hands this a ``memoryview`` slice of the frame buffer.
    """
    wirerep, offset = WireRep.from_wire(payload, 0)
    copy_id, offset = read_uvarint(payload, offset)
    count, offset = read_uvarint(payload, offset)
    endpoints = []
    for _ in range(count):
        endpoint, offset = _read_str(payload, offset)
        endpoints.append(endpoint)
    count, offset = read_uvarint(payload, offset)
    chain = []
    for _ in range(count):
        typecode, offset = _read_str(payload, offset)
        chain.append(typecode)
    if offset != len(payload):
        raise UnmarshalError("trailing bytes in reference payload")
    return wirerep, copy_id, tuple(endpoints), tuple(chain)


class MarshalContext:
    """NetObjHandler bound to one space and (optionally) one connection.

    ``connection`` is the channel the pickle travels on; copy
    acknowledgements for received references go back over it.  A
    context without a connection can marshal (tests, local pickles)
    but refuses to unmarshal references, since it could not ack them.
    """

    def __init__(self, space, connection=None):
        self._space = space
        self._connection = connection

    # -- NetObjHandler protocol --------------------------------------------------

    def recognizes(self, value: object) -> bool:
        from repro.core.netobj import NetObj

        return isinstance(value, (NetObj, Surrogate))

    def marshal(self, value: object) -> bytes:
        space = self._space
        if isinstance(value, Surrogate):
            wirerep = value._wirerep
            endpoints = value._endpoints
            chain = value._chain
            copy_id = space.transient.pin(value)
        else:
            entry = space.object_table.export(value)
            wirerep = space.object_table.wirerep_for(entry)
            endpoints = space.public_endpoints
            if not endpoints:
                raise MarshalError(
                    f"cannot marshal {type(value).__qualname__}: space "
                    f"{space.space_id} has no public endpoint for dirty "
                    "calls to reach"
                )
            from repro.core.typecodes import typechain

            chain = tuple(typechain(type(value)))
            copy_id = space.transient.pin(value)
            space.dgc_owner.record_copy_sent(entry, copy_id)
        return encode_ref(wirerep, copy_id, tuple(endpoints), tuple(chain))

    def unmarshal(self, payload) -> object:
        wirerep, copy_id, endpoints, chain = decode_ref(payload)
        space = self._space
        if self._connection is None:
            raise UnmarshalError(
                "reference received outside a connection context"
            )
        if wirerep.owner == space.space_id:
            # A reference to our own object comes home: the object
            # table resolves it to the concrete object, no surrogate.
            entry = space.object_table.exported_entry(wirerep.index)
            if entry is None:
                raise UnmarshalError(
                    f"received reference to reclaimed local object {wirerep}"
                )
            self._ack(wirerep, copy_id)
            return entry.obj
        surrogate = space.dgc_client.acquire_ref(wirerep, endpoints, chain)
        self._ack(wirerep, copy_id)
        return surrogate

    # -- internals ---------------------------------------------------------------

    def _ack(self, wirerep: WireRep, copy_id: int) -> None:
        if copy_id == 0:
            return  # bootstrap references carry no transient entry
        try:
            self._connection.send(messages.CopyAck(wirerep, copy_id))
        except CommFailure:
            # The sender vanished; its transient entry is now its
            # problem (connection-loss cleanup / pinger handles it).
            pass
