"""Typecodes and the narrowest-surrogate rule.

Every :class:`~repro.core.netobj.NetObj` subclass has a *typecode* — a
stable string naming the interface.  A marshaled reference carries the
owner's full typecode chain (most-derived first); the importing space
walks the chain and builds its surrogate from the first typecode it
knows.  This is the paper's type negotiation: the client gets "the
narrowest surrogate for which it has stubs", and a client lacking the
derived stubs can still talk to the object through a base interface.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Sequence, Tuple, Type

from repro.errors import NarrowingError


class TypeRegistry:
    """typecode → (class, remote method names, surrogate class).

    Registration happens automatically from ``NetObj.__init_subclass__``
    into :data:`global_types`; isolated registries exist only for tests.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, Tuple[Type, Tuple[str, ...]]] = {}
        self._surrogate_classes: Dict[str, Type] = {}

    def register(self, typecode: str, cls: Type, methods: Sequence[str]) -> None:
        with self._lock:
            existing = self._entries.get(typecode)
            if existing is not None and existing[0] is not cls:
                raise ValueError(
                    f"typecode {typecode!r} already registered for "
                    f"{existing[0].__qualname__}"
                )
            self._entries[typecode] = (cls, tuple(methods))
            # A stale surrogate class may exist from a previous
            # registration of the same typecode; rebuild lazily.
            self._surrogate_classes.pop(typecode, None)

    def knows(self, typecode: str) -> bool:
        with self._lock:
            return typecode in self._entries

    def class_for(self, typecode: str) -> Type:
        with self._lock:
            return self._entries[typecode][0]

    def methods_for(self, typecode: str) -> Tuple[str, ...]:
        with self._lock:
            return self._entries[typecode][1]

    def narrow(self, chain: Sequence[str]) -> str:
        """First typecode of ``chain`` registered locally.

        Raises :class:`NarrowingError` when no typecode is known —
        the client has no stubs at all for this object.
        """
        with self._lock:
            for typecode in chain:
                if typecode in self._entries:
                    return typecode
        raise NarrowingError(
            f"no registered stubs for any of {list(chain)!r}"
        )

    def surrogate_class(self, typecode: str) -> Type:
        """The (cached) generated surrogate class for ``typecode``."""
        from repro.core.surrogate import build_surrogate_class

        with self._lock:
            cached = self._surrogate_classes.get(typecode)
            if cached is not None:
                return cached
            cls, methods = self._entries[typecode]
            surrogate_cls = build_surrogate_class(typecode, cls, methods)
            self._surrogate_classes[typecode] = surrogate_cls
            return surrogate_cls


#: Registry used by default; NetObj subclasses self-register here.
global_types = TypeRegistry()


def typecode_of(cls: Type) -> str:
    """The typecode of a NetObj subclass (override with ``_typecode_``).

    Defaults to ``module.QualName`` so same-named interfaces in
    different modules cannot collide on the wire.  Peers must agree on
    typecodes, so refactorings that move a class should pin the old
    name via ``_typecode_``.
    """
    explicit = cls.__dict__.get("_typecode_")
    if explicit is not None:
        return explicit
    return f"{cls.__module__}.{cls.__qualname__}"


def typechain(cls: Type) -> List[str]:
    """Typecode chain of ``cls``: most-derived first, NetObj excluded."""
    from repro.core.netobj import NetObj

    chain = []
    for ancestor in cls.__mro__:
        if ancestor is NetObj:
            break
        if isinstance(ancestor, type) and issubclass(ancestor, NetObj):
            chain.append(typecode_of(ancestor))
    return chain
