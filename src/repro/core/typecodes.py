"""Typecodes, the narrowest-surrogate rule, and the typed-argument
wire codecs of the protocol v5 call fast lane.

Every :class:`~repro.core.netobj.NetObj` subclass has a *typecode* — a
stable string naming the interface.  A marshaled reference carries the
owner's full typecode chain (most-derived first); the importing space
walks the chain and builds its surrogate from the first typecode it
knows.  This is the paper's type negotiation: the client gets "the
narrowest surrogate for which it has stubs", and a client lacking the
derived stubs can still talk to the object through a base interface.

The second half of this module is the *typed argument fast lane*
(protocol v5): methods whose signatures are scalar-only — declared
with :func:`wiretypes` or inferred from ``typing`` annotations at
surrogate build time (:func:`fastlane_method_set`) — get their
arguments and scalar results struct-packed straight into the pooled
frame buffer, bypassing the pickler/unpickler entirely.  The encoding
is self-describing (each value carries a one-byte wire-type code), so
the server never needs the signature: eligibility only gates which
methods *attempt* the lane, and any non-conforming value at a call
site falls back to the v4 pickle path for that call.
"""

from __future__ import annotations

import inspect
import struct
import threading
from typing import Dict, List, Sequence, Tuple, Type

from repro.errors import NarrowingError, UnmarshalError
from repro.wire.varint import read_uvarint, write_uvarint


class TypeRegistry:
    """typecode → (class, remote method names, surrogate class).

    Registration happens automatically from ``NetObj.__init_subclass__``
    into :data:`global_types`; isolated registries exist only for tests.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, Tuple[Type, Tuple[str, ...]]] = {}
        self._surrogate_classes: Dict[str, Type] = {}

    def register(self, typecode: str, cls: Type, methods: Sequence[str]) -> None:
        with self._lock:
            existing = self._entries.get(typecode)
            if existing is not None and existing[0] is not cls:
                raise ValueError(
                    f"typecode {typecode!r} already registered for "
                    f"{existing[0].__qualname__}"
                )
            self._entries[typecode] = (cls, tuple(methods))
            # A stale surrogate class may exist from a previous
            # registration of the same typecode; rebuild lazily.
            self._surrogate_classes.pop(typecode, None)

    def knows(self, typecode: str) -> bool:
        with self._lock:
            return typecode in self._entries

    def class_for(self, typecode: str) -> Type:
        with self._lock:
            return self._entries[typecode][0]

    def methods_for(self, typecode: str) -> Tuple[str, ...]:
        with self._lock:
            return self._entries[typecode][1]

    def narrow(self, chain: Sequence[str]) -> str:
        """First typecode of ``chain`` registered locally.

        Raises :class:`NarrowingError` when no typecode is known —
        the client has no stubs at all for this object.
        """
        with self._lock:
            for typecode in chain:
                if typecode in self._entries:
                    return typecode
        raise NarrowingError(
            f"no registered stubs for any of {list(chain)!r}"
        )

    def surrogate_class(self, typecode: str) -> Type:
        """The (cached) generated surrogate class for ``typecode``."""
        from repro.core.surrogate import build_surrogate_class

        with self._lock:
            cached = self._surrogate_classes.get(typecode)
            if cached is not None:
                return cached
            cls, methods = self._entries[typecode]
            surrogate_cls = build_surrogate_class(typecode, cls, methods)
            self._surrogate_classes[typecode] = surrogate_cls
            return surrogate_cls


#: Registry used by default; NetObj subclasses self-register here.
global_types = TypeRegistry()


def typecode_of(cls: Type) -> str:
    """The typecode of a NetObj subclass (override with ``_typecode_``).

    Defaults to ``module.QualName`` so same-named interfaces in
    different modules cannot collide on the wire.  Peers must agree on
    typecodes, so refactorings that move a class should pin the old
    name via ``_typecode_``.
    """
    explicit = cls.__dict__.get("_typecode_")
    if explicit is not None:
        return explicit
    return f"{cls.__module__}.{cls.__qualname__}"


def typechain(cls: Type) -> List[str]:
    """Typecode chain of ``cls``: most-derived first, NetObj excluded."""
    from repro.core.netobj import NetObj

    chain = []
    for ancestor in cls.__mro__:
        if ancestor is NetObj:
            break
        if isinstance(ancestor, type) and issubclass(ancestor, NetObj):
            chain.append(typecode_of(ancestor))
    return chain


# -- typed argument fast lane (protocol v5) ----------------------------------
#
# One typed value is ``wire-type code (u8) ‖ payload``; a fast-lane
# argument tuple is ``argc (u8) ‖ argc × typed value``; a fast-lane
# result is a single typed value.  See PROTOCOL.md, "Call fast lane".

WT_NONE = 0x00   # no payload
WT_TRUE = 0x01   # no payload
WT_FALSE = 0x02  # no payload
WT_INT = 0x03    # zigzag varint (|n| < 2**63; larger ints fall back)
WT_FLOAT = 0x04  # 8 bytes IEEE-754 BE
WT_STR = 0x05    # varint length ‖ UTF-8
WT_BYTES = 0x06  # varint length ‖ raw

#: Python types the fast lane can carry.  Exact types only — subclasses
#: (IntEnum, numpy scalars...) fall back to the pickle path, which
#: round-trips them faithfully.
SCALAR_WIRE_TYPES = (type(None), bool, int, float, str, bytes)

#: Fast-lane args carry at most this many values (argc is one byte).
MAX_FASTLANE_ARGS = 255

_INT_BOUND = 1 << 63
_F8 = struct.Struct(">d")


def _encode_scalar_into(out: bytearray, value) -> bool:
    """Append one typed value; False (nothing written) if ``value``
    does not conform.  ``bool`` before ``int``: bool is an int
    subclass, and exact-type dispatch must not widen it."""
    kind = type(value)
    if kind is bool:
        out.append(WT_TRUE if value else WT_FALSE)
    elif kind is int:
        if not -_INT_BOUND <= value < _INT_BOUND:
            return False
        out.append(WT_INT)
        write_uvarint(out, (value << 1) ^ (value >> 63))
    elif kind is float:
        out.append(WT_FLOAT)
        out += _F8.pack(value)
    elif kind is str:
        try:
            raw = value.encode("utf-8")
        except UnicodeEncodeError:
            return False  # lone surrogates etc.: the pickler's problem
        out.append(WT_STR)
        write_uvarint(out, len(raw))
        out += raw
    elif kind is bytes:
        out.append(WT_BYTES)
        write_uvarint(out, len(value))
        out += value
    elif value is None:
        out.append(WT_NONE)
    else:
        return False
    return True


def encode_scalar_args_into(out: bytearray, args: tuple) -> bool:
    """Append a fast-lane argument tuple to ``out``.

    Returns True on success; on any non-conforming value everything
    written here is rolled back (``out`` is exactly as it was) and the
    caller re-encodes through the pickle path — fallback is per-call,
    never sticky.
    """
    if len(args) > MAX_FASTLANE_ARGS:
        return False
    start = len(out)
    out.append(len(args))
    for value in args:
        if not _encode_scalar_into(out, value):
            del out[start:]
            return False
    return True


def encode_scalar_result_into(out: bytearray, value) -> bool:
    """Append one fast-lane result value; False (and ``out`` is
    untouched) when the value must travel as a pickle instead."""
    start = len(out)
    if _encode_scalar_into(out, value):
        return True
    del out[start:]
    return False


def _decode_scalar(data, offset: int):
    if offset >= len(data):
        raise UnmarshalError("truncated fast-lane value")
    code = data[offset]
    offset += 1
    if code == WT_NONE:
        return None, offset
    if code == WT_TRUE:
        return True, offset
    if code == WT_FALSE:
        return False, offset
    if code == WT_INT:
        zigzag, offset = read_uvarint(data, offset)
        return (zigzag >> 1) ^ -(zigzag & 1), offset
    if code == WT_FLOAT:
        end = offset + 8
        if end > len(data):
            raise UnmarshalError("truncated fast-lane float")
        return _F8.unpack(data[offset:end])[0], end
    if code == WT_STR:
        length, offset = read_uvarint(data, offset)
        end = offset + length
        if end > len(data):
            raise UnmarshalError("truncated fast-lane string")
        try:
            return str(data[offset:end], "utf-8"), end
        except UnicodeDecodeError as exc:
            raise UnmarshalError(f"invalid UTF-8 in fast-lane string: {exc}") \
                from exc
    if code == WT_BYTES:
        length, offset = read_uvarint(data, offset)
        end = offset + length
        if end > len(data):
            raise UnmarshalError("truncated fast-lane bytes")
        return bytes(data[offset:end]), end
    raise UnmarshalError(f"unknown wire-type code 0x{code:02x}")


def decode_scalar_args(data) -> tuple:
    """Decode a fast-lane argument tuple (the trailing bytes of a
    CALL_FAST frame)."""
    if not len(data):
        raise UnmarshalError("empty fast-lane args")
    count = data[0]
    offset = 1
    values = []
    for _ in range(count):
        value, offset = _decode_scalar(data, offset)
        values.append(value)
    if offset != len(data):
        raise UnmarshalError("trailing garbage after fast-lane args")
    return tuple(values)


def decode_scalar_result(data):
    """Decode a fast-lane result (the trailing bytes of RESULT_FAST)."""
    value, offset = _decode_scalar(data, 0)
    if offset != len(data):
        raise UnmarshalError("trailing garbage after fast-lane result")
    return value


def wiretypes(*types):
    """Declare a method's argument types as fast-lane scalars.

    ::

        class Counter(NetObj):
            @wiretypes(int)
            def add(self, amount):
                ...

    Surrogates for the class then attempt the typed fast lane for this
    method regardless of annotations.  Each type must be one of
    ``None``/``bool``/``int``/``float``/``str``/``bytes``; the
    declaration is a *claim*, checked per call against the actual
    values — a non-conforming argument silently falls back to the
    pickle path for that call.
    """
    allowed = (bool, int, float, str, bytes, type(None))
    for entry in types:
        if entry is not None and entry not in allowed:
            raise TypeError(
                f"wiretypes accepts scalar wire types only, got {entry!r}"
            )

    def mark(func):
        func._netobj_wiretypes_ = tuple(types)
        return func

    return mark


#: Annotations (objects or the strings ``from __future__ import
#: annotations`` turns them into) that mark a parameter fast-lane safe.
_SCALAR_ANNOTATIONS = {
    bool, int, float, str, bytes, type(None), None,
    "bool", "int", "float", "str", "bytes", "None", "NoneType",
}

_FASTLANE_CACHE: dict = {}


def _scalar_signature(func) -> bool:
    """True when every declared parameter of ``func`` (self excluded)
    is annotated with a scalar wire type — the annotation-inference
    half of fast-lane eligibility.  ``*args``/``**kwargs`` disqualify;
    a zero-parameter method is trivially eligible (the null-call case
    the fast lane exists for)."""
    try:
        signature = inspect.signature(func)
    except (TypeError, ValueError):
        return False
    parameters = list(signature.parameters.values())[1:]  # drop self
    for parameter in parameters:
        if parameter.kind in (inspect.Parameter.VAR_POSITIONAL,
                              inspect.Parameter.VAR_KEYWORD):
            return False
        annotation = parameter.annotation
        if annotation is inspect.Parameter.empty:
            return False
        if isinstance(annotation, str):
            annotation = annotation.strip()
        try:
            if annotation not in _SCALAR_ANNOTATIONS:
                return False
        except TypeError:  # unhashable annotation object
            return False
    return True


def fastlane_method_set(cls: Type) -> frozenset:
    """Methods of ``cls`` eligible for the typed argument fast lane.

    The union of :func:`wiretypes`-declared methods and those whose
    ``typing`` annotations are scalar-only, computed once per class at
    surrogate build time.  The most-derived definition of a name
    decides (an override that widens a signature removes eligibility).
    Eligibility is a client-side concern only — the wire encoding is
    self-describing and the server accepts fast-lane frames for any
    method.
    """
    cached = _FASTLANE_CACHE.get(cls)
    if cached is not None:
        return cached
    eligible = set()
    decided = set()
    for klass in cls.__mro__:
        if klass is object:
            continue
        for name, member in klass.__dict__.items():
            if name.startswith("_") or name in decided or not callable(member):
                continue
            decided.add(name)
            declared = getattr(member, "_netobj_wiretypes_", None)
            if declared is not None or _scalar_signature(member):
                eligible.add(name)
    result = frozenset(eligible)
    _FASTLANE_CACHE[cls] = result
    return result
