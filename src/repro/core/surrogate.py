"""Surrogates: client-side proxies for remote network objects.

There is at most one surrogate per object per space (the object table
guarantees it).  A surrogate's generated methods forward to the
space's invocation machinery; its collection by the *local* garbage
collector is what eventually triggers a clean call to the owner, so a
surrogate must never secretly retain anything that keeps it alive.

The generated class is registered as a virtual subclass of the
interface it narrows to, so ``isinstance(ref, BankInterface)`` behaves
the same for surrogates as for local concrete objects.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Type

from repro.core.netobj import reads_method_set
from repro.core.typecodes import fastlane_method_set
from repro.wire.wirerep import WireRep


class Surrogate:
    """Common behaviour of all generated surrogate classes."""

    _surrogate_typecode_ = "<abstract>"
    #: Method names with scalar-only signatures (class-build verdict);
    #: the async path looks fastlane eligibility up here by name.
    _fastlane_methods_ = frozenset()

    def __init__(self, invoker, wirerep: WireRep, endpoints: Tuple[str, ...],
                 chain: Tuple[str, ...]):
        # ``invoker(wirerep, endpoints, method, args, kwargs)`` is the
        # space's invocation entry point; storing the bound method (and
        # not the space) keeps the surrogate's footprint obvious.
        self._invoker = invoker
        self._wirerep = wirerep
        self._endpoints = endpoints
        self._chain = chain

    def _invoke(self, method: str, args: tuple, kwargs: dict,
                fastlane: bool = False):
        return self._invoker(self._wirerep, self._endpoints, method, args,
                             kwargs, fastlane)

    def _invoke_read(self, method: str, args: tuple, kwargs: dict):
        """Invocation path for ``@reads`` methods: try the space's
        lease cache first, falling back to an ordinary remote call when
        leasing is off, denied, or the peer predates protocol v4."""
        space = getattr(self._invoker, "__self__", None)
        read = getattr(space, "_invoke_read", None)
        if read is None:
            return self._invoke(method, args, kwargs)
        return read(self, method, args, kwargs)

    def __repr__(self) -> str:
        return (
            f"<surrogate {self._surrogate_typecode_} for {self._wirerep}>"
        )

    def __reduce__(self):
        raise TypeError(
            "surrogates cross spaces via network-object marshaling, "
            "not via pickle"
        )


def _make_method(name: str, fastlane: bool = False):
    # ``fastlane`` is decided once per interface at class-build time
    # (scalar-only signature — see typecodes.fastlane_method_set), so
    # the per-call path carries it as a constant instead of
    # re-inspecting the signature.
    def method(self, *args, **kwargs):
        return self._invoke(name, args, kwargs, fastlane)

    method.__name__ = name
    method.__qualname__ = f"Surrogate.{name}"
    method.__doc__ = f"Remote invocation of {name!r} at the object's owner."
    return method


def _make_read_method(name: str):
    def method(self, *args, **kwargs):
        return self._invoke_read(name, args, kwargs)

    method.__name__ = name
    method.__qualname__ = f"Surrogate.{name}"
    method.__doc__ = (
        f"Lease-cached read of {name!r}: served from the local replica "
        f"when a read lease is held, remote invocation otherwise."
    )
    return method


def build_surrogate_class(typecode: str, interface: Type,
                          methods: Sequence[str]) -> Type:
    """Generate the surrogate class for one interface typecode."""
    read_methods = reads_method_set(interface)
    fast_methods = fastlane_method_set(interface)
    namespace = {
        "_surrogate_typecode_": typecode,
        "_fastlane_methods_": frozenset(fast_methods),
    }
    for name in methods:
        namespace[name] = (
            _make_read_method(name) if name in read_methods
            else _make_method(name, fastlane=name in fast_methods)
        )
    surrogate_cls = type(f"Surrogate[{typecode}]", (Surrogate,), namespace)
    register = getattr(interface, "register", None)
    if callable(register):
        # ABCMeta virtual subclassing: isinstance(surrogate, interface).
        register(surrogate_cls)
    return surrogate_cls
