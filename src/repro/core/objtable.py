"""The per-space object table.

From the paper: *"Each process maintains an object table, which maps a
wireRep w(a) to the local instance of the corresponding network object,
if there is one.  For the owner of an object, the table contains a
pointer to the concrete object.  A concrete object must be in the table
whenever another process has a surrogate for it."*

The owner half lives here (index allocation plus the strong reference
that makes the dirty tables a GC root); the imported half — surrogates
and their reference-state machine — is owned by
:class:`repro.dgc.client.DgcClient`, which registers surrogates here so
unmarshaling can find them.
"""

from __future__ import annotations

import itertools
import threading
import weakref
from typing import Dict, Optional

from repro.wire.ids import SpaceID
from repro.wire.wirerep import SPECIAL_OBJECT_INDEX, WireRep


class ExportedEntry:
    """Owner-side table entry: the concrete object plus GC bookkeeping.

    ``pdirty`` is the paper's dirty set: client SpaceIDs believed to
    hold surrogates.  ``seqnos`` retains the largest clean/dirty
    sequence number seen per client even after the client leaves the
    set, so a late, reordered dirty call cannot resurrect the entry.
    ``tdirty`` counts in-flight copies of this object sent *by the
    owner* (the transient dirty entries holding it alive during
    transmission).  ``pinned`` marks the special object, which is never
    dropped.

    ``leases`` maps holder SpaceID → live :class:`repro.core.leases.Lease`
    (protocol v4 read leases) and ``lease_version`` counts write-path
    invocations, versioning the snapshots shipped with grants.  A lease
    holder is always a member of ``pdirty`` (grants require it, CLEAN
    and purge retire it), so leases never extend an entry's lifetime —
    ``collectable()`` deliberately ignores them, and dropping the entry
    discards them.
    """

    # ``__weakref__``: v5 method bindings reference their entry weakly
    # (a strong reference would pin the object against the collector
    # for the life of the peer's connection — see space._MethodBinding).
    __slots__ = ("obj", "index", "pdirty", "seqnos", "tdirty", "pinned",
                 "leases", "lease_version", "__weakref__")

    def __init__(self, obj, index: int, pinned: bool = False):
        self.obj = obj
        self.index = index
        self.pdirty: set = set()          # SpaceIDs holding surrogates
        self.seqnos: Dict[SpaceID, int] = {}
        self.tdirty: set = set()          # copy_ids in flight from owner
        self.pinned = pinned
        self.leases: dict = {}            # holder SpaceID -> Lease
        self.lease_version = 0

    def collectable(self) -> bool:
        return not self.pinned and not self.pdirty and not self.tdirty


class ObjectTable:
    """The per-space wireRep → local instance map (owner + client halves)."""
    def __init__(self, space_id: SpaceID):
        self.space_id = space_id
        self._lock = threading.RLock()
        self._exported: Dict[int, ExportedEntry] = {}
        self._export_index_by_id: Dict[int, int] = {}
        self._indices = itertools.count(SPECIAL_OBJECT_INDEX + 1)
        self._surrogates: "Dict[WireRep, weakref.ref]" = {}

    # -- owner side -----------------------------------------------------------

    def export(self, obj, pinned: bool = False) -> ExportedEntry:
        """Ensure ``obj`` has a table entry; returns it (idempotent)."""
        with self._lock:
            index = self._export_index_by_id.get(id(obj))
            if index is not None:
                return self._exported[index]
            index = SPECIAL_OBJECT_INDEX if pinned else next(self._indices)
            entry = ExportedEntry(obj, index, pinned)
            self._exported[index] = entry
            self._export_index_by_id[id(obj)] = index
            return entry

    def exported_entry(self, index: int) -> Optional[ExportedEntry]:
        with self._lock:
            return self._exported.get(index)

    def exported_entry_for(self, obj) -> Optional[ExportedEntry]:
        """The live entry for ``obj``, if it is currently exported."""
        with self._lock:
            index = self._export_index_by_id.get(id(obj))
            return self._exported.get(index) if index is not None else None

    def drop_exported(self, index: int) -> None:
        """Remove a collectable entry (dirty tables empty)."""
        with self._lock:
            entry = self._exported.pop(index, None)
            if entry is not None:
                self._export_index_by_id.pop(id(entry.obj), None)

    def exported_count(self) -> int:
        with self._lock:
            return len(self._exported)

    def exported_entries(self):
        with self._lock:
            return list(self._exported.values())

    def wirerep_for(self, entry: ExportedEntry) -> WireRep:
        return WireRep(self.space_id, entry.index)

    # -- client side ----------------------------------------------------------

    def register_surrogate(self, wirerep: WireRep, surrogate) -> None:
        with self._lock:
            self._surrogates[wirerep] = weakref.ref(surrogate)

    def lookup_surrogate(self, wirerep: WireRep):
        """The live surrogate for ``wirerep``, or None."""
        with self._lock:
            ref = self._surrogates.get(wirerep)
            return ref() if ref is not None else None

    def forget_surrogate(self, wirerep: WireRep) -> None:
        with self._lock:
            self._surrogates.pop(wirerep, None)

    def surrogate_count(self) -> int:
        with self._lock:
            return sum(1 for r in self._surrogates.values() if r() is not None)
