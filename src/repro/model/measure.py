"""The termination measure (Definition 15 of the formalisation).

Every collector transition strictly decreases this non-negative
integer (Lemma 16); only ``make_copy`` and the local-GC/mutator
transitions may raise it.  Exhausting the measure therefore bounds
collector activity between mutator actions — the heart of the
liveness proof, and an executable check here.
"""

from __future__ import annotations

from repro.dgc.states import RefState
from repro.model.state import Configuration

MSG_MEASURE = {
    "copy": 14,
    "dirty": 8,
    "dirty_ack": 6,
    "clean": 3,
    "copy_ack": 1,
    "clean_ack": 1,
}

RT_MEASURE = {
    RefState.OK: 5,
    RefState.CCITNIL: 2,
    RefState.CCIT: 1,
    RefState.NIL: 1,
    RefState.NONEXISTENT: 0,
}


def termination_measure(config: Configuration) -> int:
    """The measure of Definition 15 for one configuration."""
    table_part = (
        9 * len(config.dirty_call_todo)
        + 7 * len(config.dirty_ack_todo)
        + 2 * len(config.copy_ack_todo)
        + 2 * len(config.clean_ack_todo)
        + 2 * len(config.blocked)
    )
    message_part = sum(MSG_MEASURE[msg[0]] for msg in config.msgs)
    state_part = sum(RT_MEASURE[state] for state in config.rec)
    return table_part + message_part + state_part
