"""The formal model: Birrell's algorithm as an abstract state machine.

This package is a literal, executable transcription of the
formalisation of the Network Objects collector — the thirteen
transition rules over the five receive-table states, with channels as
bags of messages between process pairs.  On top of the machine sit:

* :mod:`repro.model.invariants` — the paper's lemmas and the safety
  theorem as executable predicates;
* :mod:`repro.model.measure` — the termination measure whose strict
  decrease (outside ``make_copy``/``finalize``) yields liveness;
* :mod:`repro.model.explorer` — exhaustive enumeration of every
  reachable configuration of bounded instances, checking all
  invariants in each;
* :mod:`repro.model.variants` — the naive counter (whose race the
  explorer finds), the FIFO-channel variant, the owner optimisations
  and three related algorithms (Lermen–Maurer, weighted, indirect)
  for the message-cost comparisons.

The runtime collector in :mod:`repro.dgc` implements the same state
machine against real threads and sockets; this model is the oracle
that pins down what "the same" means.
"""

from repro.model.state import Configuration, Msg, initial_configuration
from repro.model.machine import Machine, Transition
from repro.model.rules import ALL_RULES, GC_RULES, MUTATOR_RULES
from repro.model.invariants import all_violations, check_all
from repro.model.measure import termination_measure
from repro.model.explorer import ExplorationResult, explore

__all__ = [
    "ALL_RULES",
    "Configuration",
    "ExplorationResult",
    "GC_RULES",
    "Machine",
    "MUTATOR_RULES",
    "Msg",
    "Transition",
    "all_violations",
    "check_all",
    "explore",
    "initial_configuration",
    "termination_measure",
]
