"""Exhaustive exploration of bounded instances of the machine.

Breadth-first enumeration of every configuration reachable from an
initial state, firing every enabled transition at every configuration
and evaluating a checker in each.  The instance is kept finite by the
``copies_left`` budget in the configuration (bounding mutator fan-out)
— all collector activity then terminates by the measure.

This is the E5 experiment: the safety invariants hold in *every*
reachable configuration, not merely along sampled runs — and the same
explorer run against the naive-counting variant finds its race within
a handful of states.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.model.invariants import all_violations
from repro.model.machine import Machine
from repro.model.state import Configuration


@dataclass
class Violation:
    config: Configuration
    messages: List[str]
    trace: Tuple[str, ...]


@dataclass
class ExplorationResult:
    states: int
    transitions: int
    quiescent_states: int
    max_depth: int
    violations: List[Violation] = field(default_factory=list)
    rule_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return (
            f"{self.states} states, {self.transitions} transitions, "
            f"{self.quiescent_states} quiescent, depth {self.max_depth}: "
            f"{status}"
        )


def explore(
    initial: Configuration,
    machine: Optional[Machine] = None,
    checker: Callable[[Configuration], List[str]] = all_violations,
    max_states: int = 2_000_000,
    stop_at_first_violation: bool = True,
    keep_traces: bool = True,
) -> ExplorationResult:
    """BFS over reachable configurations, checking each one.

    ``keep_traces`` records, per state, the rule path from the initial
    configuration (memory-heavier; invaluable in violation reports).
    """
    if machine is None:
        machine = Machine()
    result = ExplorationResult(
        states=0, transitions=0, quiescent_states=0, max_depth=0
    )
    seen = {initial}
    traces: Dict[Configuration, Tuple[str, ...]] = {initial: ()}
    queue = collections.deque([(initial, 0)])

    def record(config: Configuration, depth: int) -> bool:
        """Check a newly discovered state; returns False to abort."""
        result.states += 1
        result.max_depth = max(result.max_depth, depth)
        messages = checker(config)
        if messages:
            trace = traces.get(config, ()) if keep_traces else ()
            result.violations.append(Violation(config, messages, trace))
            if stop_at_first_violation:
                return False
        return True

    if not record(initial, 0):
        return result

    while queue:
        config, depth = queue.popleft()
        transitions = machine.enabled(config)
        if not transitions:
            result.quiescent_states += 1
            continue
        for transition in transitions:
            successor = transition.fire(config)
            result.transitions += 1
            name = transition.rule.name
            result.rule_counts[name] = result.rule_counts.get(name, 0) + 1
            if successor in seen:
                continue
            seen.add(successor)
            if keep_traces:
                traces[successor] = traces[config] + (str(transition),)
            if not record(successor, depth + 1):
                return result
            if result.states >= max_states:
                raise RuntimeError(
                    f"state space exceeded {max_states} states; "
                    "tighten the copies_left budget"
                )
            queue.append((successor, depth + 1))
    return result
