"""Configurations of the abstract machine.

A configuration is the complete global state: the receive tables, the
dirty tables (transient and permanent), the to-do tables that decouple
receiving a message from reacting to it, the blocked table, the message
channels, and the mutator's local-reachability relation.

Configurations are immutable and hashable so the explorer can memoise
them.  Tables are frozensets of tuples; the receive table is a flat
tuple indexed by (process, reference).  Channels are a frozenset too:
in the fault-free algorithm no two in-transit messages can be equal
(copy/copy_ack messages carry unique ids; dirty/clean/ack uniqueness
per (process, reference) is Lemmas 4/5 — which the machine asserts on
every send).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Tuple

from repro.dgc.states import RefState

# Message tuples.  Layouts:
#   ("copy",      src, dst, ref, id)
#   ("copy_ack",  src, dst, ref, id)
#   ("dirty",     src, dst, ref)
#   ("dirty_ack", src, dst, ref)
#   ("clean",     src, dst, ref)
#   ("clean_ack", src, dst, ref)
Msg = Tuple


@dataclass(frozen=True)
class Configuration:
    nprocs: int
    owner: Tuple[int, ...]            # ref -> owning process
    rec: Tuple[RefState, ...]         # flat (proc, ref) -> state
    # Transient dirty entries: (holder, ref, receiver, copy_id).
    # The holder is the sender of the copy; formally
    # tdirty_T(p1, r) ∋ (p1, p2, id).
    tdirty: FrozenSet[Tuple[int, int, int, int]] = frozenset()
    # Permanent dirty entries: (owner, ref, client).
    pdirty: FrozenSet[Tuple[int, int, int]] = frozenset()
    # Blocked deserialisations: (proc, ref, copy_id, sender).
    blocked: FrozenSet[Tuple[int, int, int, int]] = frozenset()
    # copy_ack_todo: (proc, copy_id, dest, ref).
    copy_ack_todo: FrozenSet[Tuple[int, int, int, int]] = frozenset()
    # dirty_ack_todo: (proc, client, ref).
    dirty_ack_todo: FrozenSet[Tuple[int, int, int]] = frozenset()
    # clean_ack_todo: (proc, client, ref).
    clean_ack_todo: FrozenSet[Tuple[int, int, int]] = frozenset()
    # dirty_call_todo / clean_call_todo: (proc, ref).
    dirty_call_todo: FrozenSet[Tuple[int, int]] = frozenset()
    clean_call_todo: FrozenSet[Tuple[int, int]] = frozenset()
    msgs: FrozenSet[Msg] = frozenset()
    # Mutator state: (proc, ref) pairs the application can still reach.
    reachable: FrozenSet[Tuple[int, int]] = frozenset()
    # Fresh-id source for copy messages.
    next_id: int = 1
    # Budget on further make_copy firings (keeps exploration finite).
    copies_left: int = 0

    # -- accessors ---------------------------------------------------------------

    @property
    def nrefs(self) -> int:
        return len(self.owner)

    def rec_of(self, proc: int, ref: int) -> RefState:
        return self.rec[proc * self.nrefs + ref]

    def with_rec(self, proc: int, ref: int, state: RefState) -> "Configuration":
        index = proc * self.nrefs + ref
        rec = self.rec[:index] + (state,) + self.rec[index + 1:]
        return replace(self, rec=rec)

    def send(self, msg: Msg) -> "Configuration":
        assert msg not in self.msgs, f"duplicate in-transit message {msg}"
        return replace(self, msgs=self.msgs | {msg})

    def receive(self, msg: Msg) -> "Configuration":
        assert msg in self.msgs, f"receiving absent message {msg}"
        return replace(self, msgs=self.msgs - {msg})

    def replace(self, **changes) -> "Configuration":
        return replace(self, **changes)

    # -- queries used by rules and invariants ------------------------------------------

    def msgs_of_kind(self, kind: str):
        return [msg for msg in self.msgs if msg[0] == kind]

    def is_reachable(self, proc: int, ref: int) -> bool:
        return (proc, ref) in self.reachable

    def tdirty_of(self, proc: int, ref: int):
        return {t for t in self.tdirty if t[0] == proc and t[1] == ref}

    def pdirty_of(self, proc: int, ref: int):
        return {t[2] for t in self.pdirty if t[0] == proc and t[1] == ref}

    def describe(self) -> str:
        """Multi-line human-readable dump (for violation reports)."""
        lines = [f"Configuration({self.nprocs} procs, {self.nrefs} refs)"]
        for ref in range(self.nrefs):
            states = ", ".join(
                f"p{proc}={self.rec_of(proc, ref).name}"
                for proc in range(self.nprocs)
            )
            lines.append(f"  r{ref} (owner p{self.owner[ref]}): {states}")
        for name in ("tdirty", "pdirty", "blocked", "copy_ack_todo",
                     "dirty_ack_todo", "clean_ack_todo",
                     "dirty_call_todo", "clean_call_todo", "reachable"):
            value = getattr(self, name)
            if value:
                lines.append(f"  {name} = {sorted(value)}")
        if self.msgs:
            lines.append(f"  msgs = {sorted(self.msgs)}")
        return "\n".join(lines)


def initial_configuration(nprocs: int = 3, nrefs: int = 1,
                          owner: Tuple[int, ...] = None,
                          copies_left: int = 3) -> Configuration:
    """The machine's initial state.

    All tables are empty and all channels drained; each reference is
    OK and locally reachable at its owner (the owner holds its own
    object), matching the instant after allocation.
    """
    if owner is None:
        owner = tuple(ref % nprocs for ref in range(nrefs))
    if len(owner) != nrefs:
        raise ValueError("owner tuple must have one entry per reference")
    if any(not 0 <= p < nprocs for p in owner):
        raise ValueError("owner process out of range")
    rec = [RefState.NONEXISTENT] * (nprocs * nrefs)
    reachable = set()
    for ref, owning in enumerate(owner):
        rec[owning * nrefs + ref] = RefState.OK
        reachable.add((owning, ref))
    return Configuration(
        nprocs=nprocs,
        owner=tuple(owner),
        rec=tuple(rec),
        reachable=frozenset(reachable),
        copies_left=copies_left,
    )
