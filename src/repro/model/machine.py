"""Driving the abstract machine: enabled transitions, firing, runs."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.model.rules import ALL_RULES, Rule
from repro.model.state import Configuration


@dataclass(frozen=True)
class Transition:
    rule: Rule
    params: Tuple

    def fire(self, config: Configuration) -> Configuration:
        return self.rule.fire(config, self.params)

    def __str__(self) -> str:
        return f"{self.rule.name}{self.params}"


class Machine:
    """One rule set over configurations (default: the full algorithm)."""

    def __init__(self, rules: Sequence[Rule] = ALL_RULES):
        self.rules = tuple(rules)

    def enabled(self, config: Configuration) -> List[Transition]:
        transitions = []
        for rule in self.rules:
            for params in rule.candidates(config):
                transitions.append(Transition(rule, params))
        return transitions

    def enabled_gc_only(self, config: Configuration) -> List[Transition]:
        """Collector transitions only (the liveness argument's subset)."""
        transitions = []
        for rule in self.rules:
            if rule.mutator:
                continue
            for params in rule.candidates(config):
                transitions.append(Transition(rule, params))
        return transitions

    def run_random(
        self,
        config: Configuration,
        seed: int = 0,
        max_steps: int = 10_000,
        observer: Optional[Callable[[Configuration, Transition], None]] = None,
        require_quiescence: bool = True,
    ) -> Configuration:
        """Fire uniformly random enabled transitions until quiescence.

        With ``require_quiescence`` False, simply returns the state
        after ``max_steps`` (useful for sampling mid-run states).
        """
        rng = random.Random(seed)
        for _ in range(max_steps):
            transitions = self.enabled(config)
            if not transitions:
                return config
            transition = rng.choice(transitions)
            successor = transition.fire(config)
            if observer is not None:
                observer(successor, transition)
            config = successor
        if require_quiescence:
            raise RuntimeError(f"no quiescence within {max_steps} steps")
        return config

    def run_to_gc_quiescence(
        self,
        config: Configuration,
        max_steps: int = 100_000,
    ) -> Configuration:
        """Drain every collector transition (mutator idle).

        Termination is guaranteed by the measure (Lemma 17); the step
        bound is a belt-and-braces guard against modeling bugs.
        """
        for _ in range(max_steps):
            transitions = self.enabled_gc_only(config)
            if not transitions:
                return config
            config = transitions[0].fire(config)
        raise RuntimeError("collector failed to quiesce (measure bug?)")
