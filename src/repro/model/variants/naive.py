"""Naive distributed reference counting — the broken strawman.

Section 2.2 of the formalisation (and every paper in this family)
motivates the real algorithms with this one: keep a counter at the
owner, send ``inc`` when a reference is copied and ``dec`` when one is
discarded.  Because an in-flight ``dec`` can overtake an in-flight
``inc``, the counter can touch zero while references are alive, and
the object is reclaimed under a live reference — Figure 1 of the
paper.

The machine below is exactly that protocol; run the explorer over it
and it produces the Figure-1 interleaving as a counterexample trace.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, List, Tuple

Msg = Tuple  # ("ref", src, dst, id) | ("inc", src) | ("dec", src)


@dataclass(frozen=True)
class NaiveConfiguration:
    """One object owned by process 0; counter-based accounting."""

    nprocs: int
    counter: int = 0
    freed: bool = False
    ever_positive: bool = False
    holders: FrozenSet[int] = frozenset()
    msgs: FrozenSet[Msg] = frozenset()
    next_id: int = 1
    copies_left: int = 0

    def describe(self) -> str:
        return (
            f"naive(counter={self.counter}, freed={self.freed}, "
            f"holders={sorted(self.holders)}, msgs={sorted(self.msgs)})"
        )


def initial_naive(nprocs: int = 3, copies_left: int = 3) -> NaiveConfiguration:
    """Initial naive-counting configuration: nothing shared yet."""
    return NaiveConfiguration(nprocs=nprocs, copies_left=copies_left)


@dataclass(frozen=True)
class _Transition:
    kind: str
    params: Tuple

    @property
    def rule(self):  # duck-typed for the generic explorer
        return self

    @property
    def name(self) -> str:
        return self.kind

    def fire(self, config: NaiveConfiguration) -> NaiveConfiguration:
        return _fire(config, self.kind, self.params)

    def __str__(self) -> str:
        return f"{self.kind}{self.params}"


def _fire(config, kind, params) -> NaiveConfiguration:
    if kind == "copy":
        src, dst = params
        ref_msg = ("ref", src, dst, config.next_id)
        inc_msg = ("inc", config.next_id)
        return replace(
            config,
            next_id=config.next_id + 1,
            copies_left=config.copies_left - 1,
            msgs=config.msgs | {ref_msg, inc_msg},
        )
    if kind == "receive_ref":
        (msg,) = params
        return replace(
            config,
            msgs=config.msgs - {msg},
            holders=config.holders | {msg[2]},
        )
    if kind == "receive_inc":
        (msg,) = params
        return replace(
            config,
            msgs=config.msgs - {msg},
            counter=config.counter + 1,
            ever_positive=True,
        )
    if kind == "receive_dec":
        (msg,) = params
        counter = config.counter - 1
        return replace(
            config,
            msgs=config.msgs - {msg},
            counter=counter,
            freed=config.freed or counter <= 0,
        )
    if kind == "drop":
        (proc,) = params
        dec_msg = ("dec", config.next_id)
        return replace(
            config,
            next_id=config.next_id + 1,
            holders=config.holders - {proc},
            msgs=config.msgs | {dec_msg},
        )
    raise ValueError(kind)


class NaiveMachine:
    """Duck-type compatible with :func:`repro.model.explorer.explore`."""

    def enabled(self, config: NaiveConfiguration) -> List[_Transition]:
        transitions = []
        if config.copies_left > 0:
            # Holders may forward their reference at any time — even
            # after the owner (wrongly) freed the object; the owner
            # itself only sends while the object exists.
            senders = set(config.holders)
            if not config.freed:
                senders.add(0)
            for src in senders:
                for dst in range(config.nprocs):
                    if dst != src and dst != 0:
                        transitions.append(_Transition("copy", (src, dst)))
        for msg in config.msgs:
            if msg[0] == "ref":
                transitions.append(_Transition("receive_ref", (msg,)))
            elif msg[0] == "inc":
                transitions.append(_Transition("receive_inc", (msg,)))
            elif msg[0] == "dec":
                transitions.append(_Transition("receive_dec", (msg,)))
        for holder in config.holders:
            transitions.append(_Transition("drop", (holder,)))
        return transitions


def naive_violations(config: NaiveConfiguration) -> List[str]:
    """Safety for the naive protocol: freed implies nothing alive.

    A violation is an object reclaimed while a process still holds a
    reference or one is still in transit — exactly the Figure-1 race.
    """
    if not config.freed:
        return []
    in_transit = any(msg[0] == "ref" for msg in config.msgs)
    if config.holders or in_transit:
        return [
            f"NAIVE-UNSAFE: object freed while holders="
            f"{sorted(config.holders)} in_transit={in_transit}"
        ]
    return []
