"""Variant collectors and baselines.

* :mod:`naive` — naive distributed reference counting, whose
  increment/decrement race the explorer finds mechanically (the
  motivating bug of Section 2.2);
* :mod:`fifo` — the Section-5.1 variant over FIFO channels: no
  blocking deserialisation, no clean acknowledgements, two receive
  states;
* :mod:`counting` — sequential cost models of the owner
  optimisations (Section 5.2) and of the related algorithms the paper
  compares against (Lermen–Maurer, Weighted RC, Indirect RC), used by
  the E4 message-overhead benchmark;
* :mod:`leased` — the protocol-v4 read-lease layer over the dirty
  sets: grant/invalidate/expire/CLEAN/crash interleavings, checking
  staleness, the lease ⊆ pdirty invariant, and leak-freedom.
"""

from repro.model.variants.naive import (
    NaiveConfiguration,
    NaiveMachine,
    initial_naive,
    naive_violations,
)
from repro.model.variants.fifo import (
    FifoConfiguration,
    FifoMachine,
    fifo_violations,
    initial_fifo,
)
from repro.model.variants.faulty import (
    FaultyConfiguration,
    FaultyMachine,
    faulty_leak_violations,
    faulty_safety_violations,
    initial_faulty,
)
from repro.model.variants.owner_opt import (
    OwnerOptConfiguration,
    OwnerOptMachine,
    initial_owner_opt,
    owner_opt_violations,
)
from repro.model.variants.leased import (
    LeasedConfiguration,
    LeasedMachine,
    initial_leased,
    leased_violations,
)
from repro.model.variants.counting import (
    BirrellCounting,
    BirrellFifoCounting,
    BirrellOwnerOptCounting,
    CountingModel,
    IndirectRC,
    LermenMaurer,
    WeightedRC,
    all_models,
)

__all__ = [
    "BirrellCounting",
    "BirrellFifoCounting",
    "BirrellOwnerOptCounting",
    "CountingModel",
    "FaultyConfiguration",
    "FaultyMachine",
    "FifoConfiguration",
    "FifoMachine",
    "faulty_leak_violations",
    "faulty_safety_violations",
    "initial_faulty",
    "IndirectRC",
    "LeasedConfiguration",
    "LeasedMachine",
    "initial_leased",
    "leased_violations",
    "LermenMaurer",
    "NaiveConfiguration",
    "NaiveMachine",
    "OwnerOptConfiguration",
    "OwnerOptMachine",
    "WeightedRC",
    "initial_owner_opt",
    "owner_opt_violations",
    "all_models",
    "fifo_violations",
    "initial_fifo",
    "initial_naive",
    "naive_violations",
]
