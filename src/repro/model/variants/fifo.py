"""The FIFO-channel variant of the algorithm (Section 5.1).

With reliable FIFO channels between each process and a reference's
owner, clean messages cannot overtake dirty messages, which removes
most of the base machinery:

* a received reference is usable immediately (no blocked
  deserialisation): the receive table needs only the states ⊥ and OK;
* ``clean_ack`` disappears — it only existed to mark the
  ccitnil → nil transition, and ccitnil itself is gone;
* ``dirty_ack`` survives, because the *copy* acknowledgement must
  still wait for it: releasing the sender's transient entry before our
  dirty call has registered would reopen the naive-counting race
  (dirty and clean travel on *different* channels to the owner, so
  FIFO between any one pair cannot order them).

The model tracks per-reference ``dirty_unacked`` instead of the nil
state; finalize is deferred while a dirty is unacknowledged or copies
are pinned — the simple way to keep the clean behind the dirty on the
owner-bound channel without modelling call queues.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, List, Tuple

Msg = Tuple


def _fifo_send(channels, src: int, dst: int, payload: Tuple):
    key = (src, dst)
    queues = dict(channels)
    queues[key] = queues.get(key, ()) + (payload,)
    return tuple(sorted(queues.items()))


def _fifo_pop(channels, src: int, dst: int):
    key = (src, dst)
    queues = dict(channels)
    head, *rest = queues[key]
    if rest:
        queues[key] = tuple(rest)
    else:
        del queues[key]
    return head, tuple(sorted(queues.items()))


@dataclass(frozen=True)
class FifoConfiguration:
    """One reference owned by process 0 over FIFO channels.

    ``channels`` maps (src, dst) → tuple of payloads, delivered
    head-first only.
    """

    nprocs: int
    # usable: processes whose receive table says OK.
    usable: FrozenSet[int] = frozenset()
    # dirty_unacked: OK processes whose dirty call is still in flight.
    dirty_unacked: FrozenSet[int] = frozenset()
    # blocked copy-acks: (proc, copy_id, sender) awaiting our dirty_ack.
    blocked: FrozenSet[Tuple[int, int, int]] = frozenset()
    copy_ack_todo: FrozenSet[Tuple[int, int, int]] = frozenset()
    # transient entries: (sender, receiver, copy_id).
    tdirty: FrozenSet[Tuple[int, int, int]] = frozenset()
    pdirty: FrozenSet[int] = frozenset()
    reachable: FrozenSet[int] = frozenset({0})
    channels: Tuple = ()
    next_id: int = 1
    copies_left: int = 0

    def channel(self, src: int, dst: int) -> Tuple:
        return dict(self.channels).get((src, dst), ())

    def describe(self) -> str:
        return (
            f"fifo(usable={sorted(self.usable)}, "
            f"unacked={sorted(self.dirty_unacked)}, "
            f"pdirty={sorted(self.pdirty)}, tdirty={sorted(self.tdirty)}, "
            f"channels={self.channels})"
        )


def initial_fifo(nprocs: int = 3, copies_left: int = 3) -> FifoConfiguration:
    """Initial FIFO-variant configuration: owner holds the reference."""
    return FifoConfiguration(
        nprocs=nprocs, usable=frozenset({0}), copies_left=copies_left
    )


@dataclass(frozen=True)
class _Transition:
    kind: str
    params: Tuple

    @property
    def rule(self):
        return self

    @property
    def name(self) -> str:
        return self.kind

    def fire(self, config):
        return _fire(config, self.kind, self.params)

    def __str__(self) -> str:
        return f"{self.kind}{self.params}"


#: Message kinds, for the accounting in scenario runs.
GC_KINDS = ("dirty", "dirty_ack", "clean", "copy_ack")


def _fire(config: FifoConfiguration, kind, params) -> FifoConfiguration:
    if kind == "make_copy":
        src, dst = params
        copy_id = config.next_id
        channels = _fifo_send(config.channels, src, dst, ("copy", copy_id))
        return replace(
            config,
            next_id=copy_id + 1,
            copies_left=config.copies_left - 1,
            tdirty=config.tdirty | {(src, dst, copy_id)},
            channels=channels,
        )
    if kind == "deliver":
        src, dst = params
        payload, channels = _fifo_pop(config.channels, src, dst)
        config = replace(config, channels=channels)
        return _deliver(config, src, dst, payload)
    if kind == "do_copy_ack":
        proc, copy_id, sender = params
        channels = _fifo_send(
            config.channels, proc, sender, ("copy_ack", copy_id)
        )
        return replace(
            config,
            copy_ack_todo=config.copy_ack_todo - {params},
            channels=channels,
        )
    if kind == "drop":
        (proc,) = params
        return replace(config, reachable=config.reachable - {proc})
    if kind == "finalize":
        (proc,) = params
        # Send the clean immediately: FIFO keeps it behind our dirty.
        channels = _fifo_send(config.channels, proc, 0, ("clean",))
        return replace(
            config,
            usable=config.usable - {proc},
            channels=channels,
        )
    raise ValueError(kind)


def _deliver(config, src, dst, payload) -> FifoConfiguration:
    kind = payload[0]
    if kind == "copy":
        copy_id = payload[1]
        if dst == 0:
            # Home again: owner acks straight away; no dirty call.
            return replace(
                config,
                copy_ack_todo=config.copy_ack_todo | {(dst, copy_id, src)},
            )
        if dst in config.usable:
            if dst in config.dirty_unacked:
                return replace(
                    config,
                    blocked=config.blocked | {(dst, copy_id, src)},
                    reachable=config.reachable | {dst},
                )
            return replace(
                config,
                copy_ack_todo=config.copy_ack_todo | {(dst, copy_id, src)},
                reachable=config.reachable | {dst},
            )
        # Unknown reference: usable immediately, dirty in flight.
        channels = _fifo_send(config.channels, dst, 0, ("dirty",))
        return replace(
            config,
            usable=config.usable | {dst},
            dirty_unacked=config.dirty_unacked | {dst},
            blocked=config.blocked | {(dst, copy_id, src)},
            reachable=config.reachable | {dst},
            channels=channels,
        )
    if kind == "dirty":
        channels = _fifo_send(config.channels, 0, src, ("dirty_ack",))
        return replace(
            config,
            pdirty=config.pdirty | {src},
            channels=channels,
        )
    if kind == "dirty_ack":
        released = {
            (proc, copy_id, sender)
            for (proc, copy_id, sender) in config.blocked
            if proc == dst
        }
        return replace(
            config,
            dirty_unacked=config.dirty_unacked - {dst},
            blocked=config.blocked - released,
            copy_ack_todo=config.copy_ack_todo | released,
        )
    if kind == "clean":
        return replace(config, pdirty=config.pdirty - {src})
    if kind == "copy_ack":
        copy_id = payload[1]
        return replace(
            config,
            tdirty=config.tdirty - {(dst, src, copy_id)},
        )
    raise ValueError(payload)


class FifoMachine:
    """Duck-type compatible with the generic explorer."""

    def enabled(self, config: FifoConfiguration) -> List[_Transition]:
        transitions = []
        if config.copies_left > 0:
            for src in config.usable:
                if src != 0 and src in config.dirty_unacked:
                    continue  # still registering; cannot forward yet
                if src != 0 and src not in config.reachable:
                    continue
                for dst in range(config.nprocs):
                    if dst != src:
                        transitions.append(
                            _Transition("make_copy", (src, dst))
                        )
        for (src, dst), queue in config.channels:
            if queue:
                transitions.append(_Transition("deliver", (src, dst)))
        for entry in config.copy_ack_todo:
            transitions.append(_Transition("do_copy_ack", entry))
        for proc in config.reachable:
            if proc != 0:
                transitions.append(_Transition("drop", (proc,)))
        for proc in config.usable:
            if proc == 0 or proc in config.reachable:
                continue
            if proc in config.dirty_unacked:
                continue
            if any(t[0] == proc for t in config.tdirty):
                continue  # transient dirty table is a local GC root
            if any(b[0] == proc for b in config.blocked):
                continue
            transitions.append(_Transition("finalize", (proc,)))
        return transitions


def fifo_violations(config: FifoConfiguration) -> List[str]:
    """Safety for the FIFO variant: while any non-owner process finds
    the reference usable, or a copy is in transit, the owner's dirty
    tables (pdirty ∪ owner-sent transient entries) are non-empty."""
    remote_usable = any(proc != 0 for proc in config.usable)
    copy_in_transit = any(
        payload[0] == "copy"
        for _pair, queue in config.channels
        for payload in queue
    )
    if not (remote_usable or copy_in_transit):
        return []
    owner_entries = bool(config.pdirty) or any(
        sender == 0 for (sender, _dst, _id) in config.tdirty
    )
    if owner_entries:
        return []
    # A copy from a dirty-listed client also protects the object;
    # check the full coverage the safety theorem actually needs.
    return [
        "FIFO-UNSAFE: remote reference alive but owner's dirty "
        f"tables empty in {config.describe()}"
    ]
