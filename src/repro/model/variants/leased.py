"""Read leases over the collector: the protocol-v4 extension, modelled.

One object owned by process 0; clients hold surrogates (``usable``)
and are registered in the owner's dirty set (``pdirty``).  On top of
that base, the lease protocol: clients request leases, the owner
grants them with the object's current version, writes invalidate every
outstanding lease before completing, and expiry/CLEAN/crash all retire
leases.  The model encodes the implementation's two key mechanisms:

* the *clock axiom* — the holder's deadline is strictly earlier than
  the owner's (the holder starts its clock at request-send), encoded
  by enabling owner-side expiry only after the holder-side replica is
  gone (``expire_held`` before ``expire_owner``/``expire_outstanding``);
* the *dead-id set* — an invalidation that overtakes its own grant
  marks the lease id dead, so a late ``install`` discards the replica
  instead of caching pre-write state.

Checked invariants (:func:`leased_violations`):

1. no stale replica once a write has completed (every held lease's
   version equals the object's version while no write is in flight);
2. lease holders ⊆ pdirty — leases ride the dirty sets, so they can
   never keep an entry alive on their own;
3. every held replica is backed by an owner-side lease (no orphan the
   owner would not invalidate);
4. no leaked lease or dirty-set entry at quiescence: once every
   surrogate is gone and no frame is in flight, both ``pdirty`` and
   the lease table are empty.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, List, Optional, Tuple


@dataclass(frozen=True)
class LeasedConfiguration:
    """One leased object owned by process 0; unordered channels.

    ``msgs`` holds in-flight frames: ``("req", p)``,
    ``("grant", p, id, ver)``, ``("inv", p, id)``,
    ``("inv_ack", p, id)``, ``("rel", p, id)``, ``("clean", p)``.
    ``writer`` is None when no write is in flight, else the set of
    ``(p, id)`` invalidations the writer still awaits.  ``value`` is
    the object's version — bumped once per write.  ``grants_left`` and
    ``writes_left`` bound the instance.
    """

    nprocs: int
    usable: FrozenSet[int]
    pdirty: FrozenSet[int]
    value: int = 0
    owner_leases: FrozenSet[Tuple[int, int, int]] = frozenset()
    held: FrozenSet[Tuple[int, int, int]] = frozenset()
    dead: FrozenSet[Tuple[int, int]] = frozenset()
    msgs: FrozenSet[Tuple] = frozenset()
    writer: Optional[FrozenSet[Tuple[int, int]]] = None
    next_id: int = 1
    grants_left: int = 2
    writes_left: int = 1
    #: Negative-control knob: with the dead-id set disabled, an
    #: invalidation that overtakes its grant is lost and the explorer
    #: finds the stale-install race mechanically.
    use_dead_ids: bool = True

    def describe(self) -> str:
        return (
            f"leased(usable={sorted(self.usable)}, "
            f"pdirty={sorted(self.pdirty)}, value={self.value}, "
            f"owner_leases={sorted(self.owner_leases)}, "
            f"held={sorted(self.held)}, writer={self.writer}, "
            f"msgs={sorted(self.msgs)})"
        )


def initial_leased(nprocs: int = 3, grants_left: int = 2,
                   writes_left: int = 1,
                   use_dead_ids: bool = True) -> LeasedConfiguration:
    """Every client already holds a surrogate and sits in pdirty (the
    copy/dirty machinery is validated by the base model; this variant
    isolates the lease layer on top of it)."""
    clients = frozenset(range(1, nprocs))
    return LeasedConfiguration(
        nprocs=nprocs, usable=clients, pdirty=clients,
        grants_left=grants_left, writes_left=writes_left,
        use_dead_ids=use_dead_ids,
    )


@dataclass(frozen=True)
class _Transition:
    kind: str
    params: Tuple

    @property
    def rule(self):
        return self

    @property
    def name(self) -> str:
        return self.kind

    def fire(self, config):
        return _fire(config, self.kind, self.params)

    def __str__(self) -> str:
        return f"{self.kind}{self.params}"


def _holder_leases(config, proc):
    return {lease for lease in config.owner_leases if lease[0] == proc}


def _fire(config: LeasedConfiguration, kind, params) -> LeasedConfiguration:
    if kind == "req":
        (proc,) = params
        return replace(
            config,
            msgs=config.msgs | {("req", proc)},
            grants_left=config.grants_left - 1,
        )
    if kind == "grant":
        (proc,) = params
        lease_id = config.next_id
        return replace(
            config,
            msgs=(config.msgs - {("req", proc)})
            | {("grant", proc, lease_id, config.value)},
            owner_leases=config.owner_leases
            | {(proc, lease_id, config.value)},
            next_id=lease_id + 1,
        )
    if kind == "deny":
        (proc,) = params
        return replace(config, msgs=config.msgs - {("req", proc)})
    if kind == "install":
        proc, lease_id, version = params
        msgs = config.msgs - {("grant", proc, lease_id, version)}
        if config.use_dead_ids and (proc, lease_id) in config.dead:
            return replace(
                config, msgs=msgs,
                dead=config.dead - {(proc, lease_id)},
            )
        return replace(
            config, msgs=msgs,
            held=config.held | {(proc, lease_id, version)},
        )
    if kind == "drop_grant":
        # The holder-side clock expired the lease while its grant was
        # still in flight (or the holder crashed): the frame dies.
        proc, lease_id, version = params
        return replace(
            config,
            msgs=config.msgs - {("grant", proc, lease_id, version)},
        )
    if kind == "expire_held":
        lease = params
        return replace(config, held=config.held - {lease})
    if kind == "expire_owner":
        lease = params
        return replace(config, owner_leases=config.owner_leases - {lease})
    if kind == "begin_write":
        outstanding = frozenset(
            (proc, lease_id) for (proc, lease_id, _v) in config.owner_leases
        )
        return replace(
            config,
            value=config.value + 1,
            writes_left=config.writes_left - 1,
            writer=outstanding,
            msgs=config.msgs
            | {("inv", proc, lease_id) for (proc, lease_id) in outstanding},
        )
    if kind == "deliver_inv":
        proc, lease_id = params
        msgs = config.msgs - {("inv", proc, lease_id)}
        msgs |= {("inv_ack", proc, lease_id)}
        mine = {
            lease for lease in config.held
            if lease[0] == proc and lease[1] == lease_id
        }
        if mine:
            return replace(config, msgs=msgs, held=config.held - mine)
        # Invalidation overtook the grant: remember the dead id.
        return replace(
            config, msgs=msgs, dead=config.dead | {(proc, lease_id)},
        )
    if kind == "deliver_inv_ack":
        proc, lease_id = params
        writer = config.writer
        if writer is not None:
            writer = writer - {(proc, lease_id)}
        return replace(
            config,
            msgs=config.msgs - {("inv_ack", proc, lease_id)},
            owner_leases=frozenset(
                lease for lease in config.owner_leases
                if not (lease[0] == proc and lease[1] == lease_id)
            ),
            writer=writer,
        )
    if kind == "expire_outstanding":
        # The writer waited out the owner-side deadline for an
        # unresponsive holder; the clock axiom says the replica is
        # already gone there.
        proc, lease_id = params
        return replace(
            config,
            writer=config.writer - {(proc, lease_id)},
            owner_leases=frozenset(
                lease for lease in config.owner_leases
                if not (lease[0] == proc and lease[1] == lease_id)
            ),
        )
    if kind == "complete_write":
        return replace(config, writer=None)
    if kind == "drop_ref":
        # The client's surrogate dies: release any held lease, then the
        # clean call (the implementation's clean path does both).
        (proc,) = params
        mine = {lease for lease in config.held if lease[0] == proc}
        msgs = config.msgs | {("clean", proc)}
        msgs |= {("rel", proc, lease_id) for (_p, lease_id, _v) in mine}
        return replace(
            config,
            usable=config.usable - {proc},
            held=config.held - mine,
            msgs=msgs,
        )
    if kind == "deliver_rel":
        proc, lease_id = params
        return replace(
            config,
            msgs=config.msgs - {("rel", proc, lease_id)},
            owner_leases=frozenset(
                lease for lease in config.owner_leases
                if not (lease[0] == proc and lease[1] == lease_id)
            ),
        )
    if kind == "deliver_clean":
        # handle_clean + the lease_retire hook: departure from the
        # dirty set retires every lease the client held.
        (proc,) = params
        return replace(
            config,
            msgs=config.msgs - {("clean", proc)},
            pdirty=config.pdirty - {proc},
            owner_leases=config.owner_leases - _holder_leases(config, proc),
        )
    if kind == "crash":
        # Pinger purge: the client vanishes mid-lease — every frame to
        # or from it dies with its connection, its dirty-set entry and
        # leases are purged (purge_client + lease_retire).
        (proc,) = params
        return replace(
            config,
            usable=config.usable - {proc},
            pdirty=config.pdirty - {proc},
            held=frozenset(l for l in config.held if l[0] != proc),
            owner_leases=config.owner_leases - _holder_leases(config, proc),
            dead=frozenset(d for d in config.dead if d[0] != proc),
            msgs=frozenset(m for m in config.msgs if m[1] != proc),
        )
    raise ValueError(kind)


class LeasedMachine:
    """Duck-type compatible with the generic explorer."""

    def enabled(self, config: LeasedConfiguration) -> List[_Transition]:
        transitions = []
        held_ids = {(proc, lease_id) for (proc, lease_id, _v) in config.held}
        grants_in_flight = {
            (msg[1], msg[2]) for msg in config.msgs if msg[0] == "grant"
        }
        if config.grants_left > 0:
            for proc in config.usable:
                if ("req", proc) in config.msgs:
                    continue
                if any(g[0] == proc for g in grants_in_flight):
                    continue
                if any(lease[0] == proc for lease in config.held):
                    continue  # cache hit; no request on the wire
                transitions.append(_Transition("req", (proc,)))
        for msg in config.msgs:
            if msg[0] == "req":
                kind = "grant" if msg[1] in config.pdirty else "deny"
                transitions.append(_Transition(kind, (msg[1],)))
            elif msg[0] == "grant":
                params = (msg[1], msg[2], msg[3])
                if msg[1] in config.usable:
                    transitions.append(_Transition("install", params))
                transitions.append(_Transition("drop_grant", params))
            elif msg[0] == "inv":
                # Crash removed the frames of dead clients; anything
                # still in flight reaches a live process.
                transitions.append(
                    _Transition("deliver_inv", (msg[1], msg[2]))
                )
            elif msg[0] == "inv_ack":
                transitions.append(
                    _Transition("deliver_inv_ack", (msg[1], msg[2]))
                )
            elif msg[0] == "rel":
                transitions.append(
                    _Transition("deliver_rel", (msg[1], msg[2]))
                )
            elif msg[0] == "clean":
                transitions.append(_Transition("deliver_clean", (msg[1],)))
        for lease in config.held:
            transitions.append(_Transition("expire_held", lease))
        for lease in config.owner_leases:
            proc, lease_id, _version = lease
            if (proc, lease_id) in held_ids:
                continue  # clock axiom: the holder's deadline is earlier
            if (proc, lease_id) in grants_in_flight:
                continue  # ditto: the request was sent before the grant
            transitions.append(_Transition("expire_owner", lease))
        if config.writer is None:
            if config.writes_left > 0:
                transitions.append(_Transition("begin_write", ()))
        elif not config.writer:
            transitions.append(_Transition("complete_write", ()))
        else:
            for proc, lease_id in config.writer:
                if (proc, lease_id) in held_ids:
                    continue
                if (proc, lease_id) in grants_in_flight:
                    continue
                transitions.append(
                    _Transition("expire_outstanding", (proc, lease_id))
                )
        for proc in config.usable:
            transitions.append(_Transition("drop_ref", (proc,)))
            transitions.append(_Transition("crash", (proc,)))
        return transitions


def leased_violations(config: LeasedConfiguration) -> List[str]:
    """The four lease-layer safety checks (see the module docstring)."""
    violations = []
    if config.writer is None:
        for proc, lease_id, version in config.held:
            if version < config.value:
                violations.append(
                    f"STALE-READ: holder {proc} serves lease {lease_id} "
                    f"at version {version} < object version "
                    f"{config.value} with no write in flight in "
                    f"{config.describe()}"
                )
    for proc, _lease_id, _version in config.owner_leases:
        if proc not in config.pdirty:
            violations.append(
                f"LEASE-OUTSIDE-PDIRTY: holder {proc} leases without a "
                f"dirty-set entry in {config.describe()}"
            )
    owner_ids = {
        (proc, lease_id) for (proc, lease_id, _v) in config.owner_leases
    }
    for proc, lease_id, _version in config.held:
        if (proc, lease_id) not in owner_ids:
            violations.append(
                f"ORPHAN-REPLICA: holder {proc} serves lease {lease_id} "
                f"the owner no longer tracks in {config.describe()}"
            )
    quiescent = (not config.msgs and config.writer is None
                 and not config.usable and not config.held)
    if quiescent and (config.pdirty or config.owner_leases):
        violations.append(
            f"LEAK: dirty set {sorted(config.pdirty)} / leases "
            f"{sorted(config.owner_leases)} survive quiescence in "
            f"{config.describe()}"
        )
    return violations
