"""Sequential cost models for the E4 message-overhead comparison.

Each model simulates one shared object (owned by process 0) under a
scripted event sequence — ``copy(src, dst)`` and ``drop(proc)`` — with
messages delivered immediately and in order (the cost question is
orthogonal to the race conditions, which the machines in
:mod:`repro.model` and the sibling variant modules cover).  Every
model counts its control messages by kind and checks its own books:
the object must still be collectable exactly when the last reference
dies.

Implemented models:

=====================  ========================================================
BirrellCounting        the base algorithm (delegates to the real machine)
BirrellFifoCounting    Section 5.1: FIFO channels, no clean_ack
BirrellOwnerOptCounting Section 5.2: sender-is-owner / receiver-is-owner
                       short circuits on top of FIFO
LermenMaurer           sender notifies owner (inc), owner acks receiver, dec
WeightedRC             weights halve on copy; decrement-only, plus
                       "send more weight" requests at weight 1
IndirectRC             Piquer's diffusion tree; decrements flow to the
                       copy's parent, zombies pin parents
=====================  ========================================================
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Set, Tuple

Event = Tuple


class CountingModel:
    """Base: event interface, message counter, common assertions."""

    name = "<model>"

    def __init__(self, nprocs: int):
        self.nprocs = nprocs
        self.messages: Counter = Counter()
        self.holders: Set[int] = {0}

    # -- event interface -------------------------------------------------------

    def copy(self, src: int, dst: int) -> None:
        raise NotImplementedError

    def drop(self, proc: int) -> None:
        raise NotImplementedError

    def run(self, events: Sequence[Event]) -> "CountingModel":
        for event in events:
            if event[0] == "copy":
                self.copy(event[1], event[2])
            elif event[0] == "drop":
                self.drop(event[1])
            else:
                raise ValueError(f"unknown event {event!r}")
        return self

    # -- results ---------------------------------------------------------------

    def total_gc_messages(self) -> int:
        return sum(self.messages.values())

    def collected(self) -> bool:
        """Is the object reclaimable at the owner?"""
        raise NotImplementedError

    def _send(self, kind: str, count: int = 1) -> None:
        self.messages[kind] += count


class BirrellCounting(CountingModel):
    """The base algorithm — counts from the actual abstract machine."""

    name = "birrell"

    def __init__(self, nprocs: int):
        super().__init__(nprocs)
        from repro.model.scenario import ScenarioRun

        self._run = ScenarioRun(nprocs, check=False)

    def copy(self, src: int, dst: int) -> None:
        self._run.copy(src, dst)
        self.holders.add(dst)

    def drop(self, proc: int) -> None:
        self._run.drop(proc)
        self.holders.discard(proc)

    def total_gc_messages(self) -> int:
        return self._run.total_gc_messages()

    @property
    def messages(self):  # type: ignore[override]
        counts = Counter(self._run.messages)
        counts.pop("copy", None)
        return counts

    @messages.setter
    def messages(self, value):  # the base __init__ assigns; ignore
        pass

    def collected(self) -> bool:
        return not self._run.owner_entry_exists()


class BirrellFifoCounting(CountingModel):
    """FIFO variant: per fresh import — dirty, dirty_ack, copy_ack;
    per discard — clean.  No clean_ack, no blocking."""

    name = "birrell-fifo"

    def __init__(self, nprocs: int):
        super().__init__(nprocs)
        self.registered: Set[int] = set()

    def copy(self, src: int, dst: int) -> None:
        if dst != 0 and dst not in self.registered:
            self._send("dirty")
            self._send("dirty_ack")
            self.registered.add(dst)
        self._send("copy_ack")
        self.holders.add(dst)

    def drop(self, proc: int) -> None:
        self.holders.discard(proc)
        if proc in self.registered:
            self.registered.discard(proc)
            self._send("clean")

    def collected(self) -> bool:
        return not self.registered


class BirrellOwnerOptCounting(CountingModel):
    """Owner optimisations over FIFO (Section 5.2).

    sender-is-owner: the owner adds the permanent entry directly; the
    receiver makes no dirty call and sends no copy_ack.
    receiver-is-owner: no transient entry, no ack of any kind.
    Third-party copies pay the full FIFO cost.
    """

    name = "birrell-owner-opt"

    def __init__(self, nprocs: int):
        super().__init__(nprocs)
        self.registered: Set[int] = set()

    def copy(self, src: int, dst: int) -> None:
        if dst == 0:
            pass  # receiver is owner: reference comes home for free
        elif src == 0:
            self.registered.add(dst)  # direct permanent entry
        else:
            if dst not in self.registered:
                self._send("dirty")
                self._send("dirty_ack")
                self.registered.add(dst)
            self._send("copy_ack")
        self.holders.add(dst)

    def drop(self, proc: int) -> None:
        self.holders.discard(proc)
        if proc in self.registered:
            self.registered.discard(proc)
            self._send("clean")

    def collected(self) -> bool:
        return not self.registered


class LermenMaurer(CountingModel):
    """Lermen & Maurer 1986: on each copy the *sender* notifies the
    owner (inc), and the owner acknowledges the *receiver*; decrements
    wait until the receiver's inc/ack counts match."""

    name = "lermen-maurer"

    def __init__(self, nprocs: int):
        super().__init__(nprocs)
        self.counter = 0  # owner's count of remote references
        self.refs: Counter = Counter()  # references held per process

    def copy(self, src: int, dst: int) -> None:
        if dst == 0:
            # Home again: the owner recognises its own identifier and
            # creates no counted remote reference.
            self.holders.add(dst)
            return
        self._send("inc")   # sender -> owner
        self.counter += 1
        self._send("ack")   # owner -> receiver
        self.refs[dst] += 1
        self.holders.add(dst)

    def drop(self, proc: int) -> None:
        """L&M has no per-process dedup (no object table): a process
        that received k copies holds k references and must send k
        decrements when its application lets go."""
        self.holders.discard(proc)
        held = self.refs.pop(proc, 0)
        for _ in range(held):
            self._send("dec")
            self.counter -= 1
        assert self.counter >= 0, "L&M counter went negative"

    def collected(self) -> bool:
        return self.counter == 0


class WeightedRC(CountingModel):
    """Weighted reference counting (Bevan / Watson & Watson).

    The object starts with total weight 2**max_weight_log; each copy
    halves the sender's weight; a drop returns the reference's weight
    in a decrement message.  A copy from a weight-1 reference requests
    more weight from the owner first (the "2a" message of the paper's
    Figure 14(g)).  Invariant: object weight equals the sum of all
    reference weights — checked on every event.
    """

    name = "weighted"

    def __init__(self, nprocs: int, max_weight_log: int = 16):
        super().__init__(nprocs)
        self.object_weight = 1 << max_weight_log
        self.ref_weight: Dict[int, int] = {0: self.object_weight}
        self.max_weight_log = max_weight_log

    def copy(self, src: int, dst: int) -> None:
        weight = self.ref_weight[src]
        if weight <= 1:
            # Request more weight from the owner (request + grant).
            self._send("more_weight_request")
            self._send("more_weight_grant")
            grant = 1 << self.max_weight_log
            self.object_weight += grant
            weight += grant
        half = weight // 2
        self.ref_weight[src] = weight - half
        self.ref_weight[dst] = self.ref_weight.get(dst, 0) + half
        self.holders.add(dst)
        self._check()

    def drop(self, proc: int) -> None:
        weight = self.ref_weight.pop(proc)
        self.holders.discard(proc)
        self._send("dec")   # carries the weight back to the owner
        self.object_weight -= weight
        self._check()

    def _check(self) -> None:
        assert self.object_weight == sum(self.ref_weight.values()), (
            "WRC weight invariant broken"
        )

    def collected(self) -> bool:
        return self.object_weight - self.ref_weight.get(0, 0) == 0


class IndirectRC(CountingModel):
    """Piquer's indirect reference counting over a diffusion tree.

    Each process counts the copies it made; a dropped reference sends
    its decrement to its *parent* in the diffusion tree (the process
    it first received the reference from), not to the owner.  A parent
    whose local reference died but whose counter is non-zero lingers
    as a *zombie* — the structural drawback the paper notes.
    """

    name = "indirect"

    def __init__(self, nprocs: int):
        super().__init__(nprocs)
        self.parent: Dict[int, int] = {}      # proc -> diffusion parent
        self.copies_out: Counter = Counter()  # proc -> children count
        self.alive: Set[int] = {0}            # locally-held references
        self.zombies: Set[int] = set()

    def copy(self, src: int, dst: int) -> None:
        if dst in self.alive or dst in self.zombies or dst == 0:
            # Existing entry (or owner): no new tree edge; the copy is
            # simply redundant from the tree's point of view.
            self.alive.add(dst)
            self.zombies.discard(dst)
            self.holders.add(dst)
            return
        self.parent[dst] = src
        self.copies_out[src] += 1
        self.alive.add(dst)
        self.holders.add(dst)

    def drop(self, proc: int) -> None:
        self.holders.discard(proc)
        self.alive.discard(proc)
        self._maybe_release(proc)

    def _maybe_release(self, proc: int) -> None:
        if proc == 0 or proc in self.alive:
            return
        if self.copies_out[proc] > 0:
            self.zombies.add(proc)  # pinned by children
            return
        self.zombies.discard(proc)
        parent = self.parent.pop(proc, None)
        if parent is None:
            return
        self._send("dec")  # to the parent, not the owner
        self.copies_out[parent] -= 1
        if parent not in self.alive:
            self._maybe_release(parent)

    def collected(self) -> bool:
        return (
            self.copies_out[0] == 0
            and not self.alive - {0}
            and not self.zombies
        )


def all_models(nprocs: int) -> List[CountingModel]:
    """One fresh instance of every cost model."""
    return [
        BirrellCounting(nprocs),
        BirrellFifoCounting(nprocs),
        BirrellOwnerOptCounting(nprocs),
        LermenMaurer(nprocs),
        WeightedRC(nprocs),
        IndirectRC(nprocs),
    ]
