"""The owner-optimised variant (Section 5.2) as an explorable machine.

On top of FIFO channels (Section 5.1), two short circuits:

* **sender is owner** — the owner adds the receiver to its permanent
  dirty set *at send time*; the receiver makes no dirty call and sends
  no copy acknowledgement;
* **receiver is owner** — a reference going home needs no transient
  entry and no acknowledgement at all.

The section warns both tricks are racy unless *application* messages
are ordered with collector messages.  Exploring this machine shows the
warning **understates the problem**: even with full per-pair FIFO, the
literal §5.2.1 protocol (owner adds the permanent entry at send time,
receiver never acknowledges) is unsafe when the owner sends the same
reference to the same client twice — the client's clean call (channel
client→owner) races the second copy (channel owner→client), two
channels no FIFO discipline can order.  This is an instance of the
"parallel sending to the same destination" under-specification the
formalisation lists as weakness 3(d) of Birrell's presentation, and
the explorer derives the 6-step counterexample mechanically
(`test_literal_spec_unsafe_even_ordered`).

``repaired=True`` runs the sound refinement this suggests: an
owner-sent copy creates a *transient* entry and acts as an implicit
dirty call — the receiver acknowledges it (no dirty/dirty_ack round
trip), and the acknowledgement promotes the transient entry to the
permanent set.  With per-pair FIFO (clean and copy_ack share the
client→owner channel) the explorer verifies safety; with
``ordered=False`` it still finds the race, which is the ordering
requirement the paper *does* state.  Cost: 2 messages per
owner→client import/drop cycle instead of the paper's claimed 1 —
the price of closing the hole.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, List, Tuple

from repro.model.variants.fifo import _fifo_pop, _fifo_send


@dataclass(frozen=True)
class OwnerOptConfiguration:
    """One reference owned by process 0; owner-optimised protocol."""

    nprocs: int
    ordered: bool = True       # FIFO per pair incl. application copies
    repaired: bool = False     # owner-sent copies acked (sound variant)
    usable: FrozenSet[int] = frozenset({0})
    dirty_unacked: FrozenSet[int] = frozenset()
    blocked: FrozenSet[Tuple[int, int, int]] = frozenset()
    copy_ack_todo: FrozenSet[Tuple[int, int, int]] = frozenset()
    tdirty: FrozenSet[Tuple[int, int, int]] = frozenset()
    pdirty: FrozenSet[int] = frozenset()
    reachable: FrozenSet[int] = frozenset({0})
    channels: Tuple = ()
    next_id: int = 1
    copies_left: int = 0

    def describe(self) -> str:
        return (
            f"owner-opt(ordered={self.ordered}, "
            f"usable={sorted(self.usable)}, pdirty={sorted(self.pdirty)}, "
            f"tdirty={sorted(self.tdirty)}, channels={self.channels})"
        )


def initial_owner_opt(nprocs: int = 3, copies_left: int = 3,
                      ordered: bool = True,
                      repaired: bool = False) -> OwnerOptConfiguration:
    """Initial owner-optimised configuration (see module docstring)."""
    return OwnerOptConfiguration(
        nprocs=nprocs, ordered=ordered, repaired=repaired,
        copies_left=copies_left,
    )


@dataclass(frozen=True)
class _Transition:
    kind: str
    params: Tuple

    @property
    def rule(self):
        return self

    @property
    def name(self) -> str:
        return self.kind

    def fire(self, config):
        return _fire(config, self.kind, self.params)

    def __str__(self) -> str:
        return f"{self.kind}{self.params}"


def _fire(config: OwnerOptConfiguration, kind, params):
    if kind == "make_copy":
        src, dst = params
        copy_id = config.next_id
        config = replace(
            config,
            next_id=copy_id + 1,
            copies_left=config.copies_left - 1,
        )
        if src == 0:
            if config.repaired:
                # Sound variant: transient entry until the receiver's
                # copy_ack, which then promotes it to the dirty set.
                config = replace(
                    config, tdirty=config.tdirty | {(src, dst, copy_id)}
                )
            else:
                # Literal §5.2.1: direct permanent entry, no ack.
                config = replace(config, pdirty=config.pdirty | {dst})
        elif dst != 0:
            config = replace(
                config, tdirty=config.tdirty | {(src, dst, copy_id)}
            )
        # Receiver-is-owner (dst == 0): no transient entry at all —
        # the owner's own table reaches the object.
        channels = _fifo_send(config.channels, src, dst, ("copy", copy_id))
        return replace(config, channels=channels)

    if kind == "deliver":
        src, dst, payload = params
        if config.ordered:
            head, channels = _fifo_pop(config.channels, src, dst)
            assert head == payload
        else:
            channels = _remove_any(config.channels, src, dst, payload)
        config = replace(config, channels=channels)
        return _deliver(config, src, dst, payload)

    if kind == "do_copy_ack":
        proc, copy_id, sender = params
        channels = _fifo_send(
            config.channels, proc, sender, ("copy_ack", copy_id)
        )
        return replace(
            config,
            copy_ack_todo=config.copy_ack_todo - {params},
            channels=channels,
        )

    if kind == "drop":
        (proc,) = params
        return replace(config, reachable=config.reachable - {proc})

    if kind == "finalize":
        (proc,) = params
        channels = _fifo_send(config.channels, proc, 0, ("clean",))
        return replace(
            config, usable=config.usable - {proc}, channels=channels
        )

    raise ValueError(kind)


def _remove_any(channels, src, dst, payload):
    """Unordered delivery: take ``payload`` from anywhere in the
    (src, dst) queue (models reordering between a pair)."""
    queues = dict(channels)
    queue = list(queues[(src, dst)])
    queue.remove(payload)
    if queue:
        queues[(src, dst)] = tuple(queue)
    else:
        del queues[(src, dst)]
    return tuple(sorted(queues.items()))


def _deliver(config, src, dst, payload):
    kind = payload[0]
    if kind == "copy":
        copy_id = payload[1]
        if dst == 0:
            # Home: no ack in this variant (sender made no entry)...
            # unless the sender was a client holding a transient
            # entry, which the copy_ack releases.
            if any(t == (src, dst, copy_id) for t in config.tdirty):
                return replace(
                    config,
                    copy_ack_todo=config.copy_ack_todo | {(dst, copy_id, src)},
                )
            return config
        if src == 0:
            # From the owner: usable immediately, no dirty call.
            config = replace(
                config,
                usable=config.usable | {dst},
                reachable=config.reachable | {dst},
            )
            if config.repaired:
                # ...but acknowledged, so the owner can promote its
                # transient entry to the permanent set.
                return replace(
                    config,
                    copy_ack_todo=config.copy_ack_todo | {(dst, copy_id, src)},
                )
            return config
        # Client-to-client copies use the plain FIFO-variant protocol.
        if dst in config.usable:
            if dst in config.dirty_unacked:
                return replace(
                    config,
                    blocked=config.blocked | {(dst, copy_id, src)},
                    reachable=config.reachable | {dst},
                )
            return replace(
                config,
                copy_ack_todo=config.copy_ack_todo | {(dst, copy_id, src)},
                reachable=config.reachable | {dst},
            )
        channels = _fifo_send(config.channels, dst, 0, ("dirty",))
        return replace(
            config,
            usable=config.usable | {dst},
            dirty_unacked=config.dirty_unacked | {dst},
            blocked=config.blocked | {(dst, copy_id, src)},
            reachable=config.reachable | {dst},
            channels=channels,
        )
    if kind == "dirty":
        channels = _fifo_send(config.channels, 0, src, ("dirty_ack",))
        return replace(
            config, pdirty=config.pdirty | {src}, channels=channels
        )
    if kind == "dirty_ack":
        released = {
            entry for entry in config.blocked if entry[0] == dst
        }
        return replace(
            config,
            dirty_unacked=config.dirty_unacked - {dst},
            blocked=config.blocked - released,
            copy_ack_todo=config.copy_ack_todo | released,
        )
    if kind == "clean":
        return replace(config, pdirty=config.pdirty - {src})
    if kind == "copy_ack":
        copy_id = payload[1]
        config = replace(
            config, tdirty=config.tdirty - {(dst, src, copy_id)}
        )
        if config.repaired and dst == 0:
            # The ack of an owner-sent copy doubles as the dirty call.
            config = replace(config, pdirty=config.pdirty | {src})
        return config
    raise ValueError(payload)


class OwnerOptMachine:
    """Duck-type compatible with the generic explorer."""
    def enabled(self, config: OwnerOptConfiguration) -> List[_Transition]:
        transitions = []
        if config.copies_left > 0:
            for src in config.usable:
                if src != 0 and src in config.dirty_unacked:
                    continue
                if src != 0 and src not in config.reachable:
                    continue
                for dst in range(config.nprocs):
                    if dst != src:
                        transitions.append(
                            _Transition("make_copy", (src, dst))
                        )
        for (src, dst), queue in config.channels:
            if not queue:
                continue
            if config.ordered:
                transitions.append(
                    _Transition("deliver", (src, dst, queue[0]))
                )
            else:
                for payload in dict.fromkeys(queue):
                    transitions.append(
                        _Transition("deliver", (src, dst, payload))
                    )
        for entry in config.copy_ack_todo:
            transitions.append(_Transition("do_copy_ack", entry))
        for proc in config.reachable:
            if proc != 0:
                transitions.append(_Transition("drop", (proc,)))
        for proc in config.usable:
            if proc == 0 or proc in config.reachable:
                continue
            if proc in config.dirty_unacked:
                continue
            if any(t[0] == proc for t in config.tdirty):
                continue
            if any(b[0] == proc for b in config.blocked):
                continue
            transitions.append(_Transition("finalize", (proc,)))
        return transitions


def owner_opt_violations(config: OwnerOptConfiguration) -> List[str]:
    """Safety: a process that finds the reference usable — or a copy
    in transit from the owner — implies the owner's tables protect the
    object (pdirty non-empty, counting the sender-side direct entry)."""
    remote_usable = any(proc != 0 for proc in config.usable)
    owner_copy_in_transit = any(
        payload[0] == "copy" and pair[0] == 0
        for pair, queue in config.channels
        for payload in queue
    )
    client_copy_in_transit = any(
        payload[0] == "copy" and pair[0] != 0
        for pair, queue in config.channels
        for payload in queue
    )
    if not (remote_usable or owner_copy_in_transit
            or client_copy_in_transit):
        return []
    owner_transients = any(t[0] == 0 for t in config.tdirty)
    if config.pdirty or (config.repaired and owner_transients):
        return []
    return [
        "OWNER-OPT-UNSAFE: remote reference alive "
        f"(usable={sorted(config.usable)}) but pdirty empty in "
        f"{config.describe()}"
    ]
