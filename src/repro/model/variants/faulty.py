"""The fault-tolerant algorithm under message loss, timeouts and
retries — the Section-6 extension the formalisation left as future
work, mechanised.

Faults modelled (each bounded by a budget so exploration stays finite):

* ``lose`` — any in-transit message silently vanishes;
* ``timeout_dirty`` — a client waiting in nil gives up (it cannot know
  whether the owner saw the dirty call) and schedules a **strong
  clean** with a *higher* sequence number, per §2.3;
* ``timeout_clean`` — a client in ccit/ccitnil re-sends its clean call
  with the **same** sequence number, per §2.3.

Timeouts are modelled as always-enabled (spurious timeouts included):
an over-approximation of any real timer, so safety verified here
covers every timer discipline.

Sequence numbers follow §2: the owner keeps ``seqno(O, P)``, the
largest seen per client, and applies an operation only if its number
is greater.  The module exposes ``use_seqnos=False`` as a negative
control: the explorer then finds the duplicated-clean race in which a
retried clean call, arriving after a newer dirty, removes a *live*
client from the dirty set — exactly the failure the sequence numbers
exist to prevent.

One reference, owned by process 0, as in the other variant machines.
Channels here are multisets (duplicates are the whole point).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, List, Tuple

from repro.dgc.states import RefState

# Message layouts (channels are a multiset: tuples + a uid for copies,
# and a duplicate counter for re-sent cleans):
#   ("copy",      src, dst, copy_id)
#   ("copy_ack",  src, dst, copy_id)
#   ("dirty",     client, seq)
#   ("dirty_ack", client, seq)
#   ("clean",     client, seq, strong, attempt)
#   ("clean_ack", client, seq, attempt)
Msg = Tuple


def _bag_add(bag, msg):
    items = dict(bag)
    items[msg] = items.get(msg, 0) + 1
    return tuple(sorted(items.items()))


def _bag_remove(bag, msg):
    items = dict(bag)
    if items[msg] == 1:
        del items[msg]
    else:
        items[msg] -= 1
    return tuple(sorted(items.items()))


@dataclass(frozen=True)
class ClientState:
    state: RefState = RefState.NONEXISTENT
    seq: int = 0                 # this client's seqno counter
    dirty_seq: int = 0           # seq of the dirty cycle in flight
    clean_seq: int = 0           # seq of the clean cycle in flight
    clean_strong: bool = False
    clean_attempt: int = 0
    reachable: bool = False
    # Copy acks deferred until OK: (copy_id, sender).
    blocked: FrozenSet[Tuple[int, int]] = frozenset()


@dataclass(frozen=True)
class FaultyConfiguration:
    nprocs: int
    use_seqnos: bool = True
    clients: Tuple[ClientState, ...] = ()
    # Owner state.
    pdirty: FrozenSet[int] = frozenset()
    seen: Tuple[int, ...] = ()            # seqno(O, P) per process
    tdirty: FrozenSet[Tuple[int, int, int]] = frozenset()  # (snd, rcv, id)
    owner_reachable: bool = True
    # Channels as a multiset: ((msg, count), ...) sorted.
    msgs: Tuple = ()
    next_id: int = 1
    copies_left: int = 0
    losses_left: int = 0
    timeouts_left: int = 0

    def client(self, proc: int) -> ClientState:
        return self.clients[proc]

    def with_client(self, proc: int, **changes) -> "FaultyConfiguration":
        clients = list(self.clients)
        clients[proc] = replace(clients[proc], **changes)
        return replace(self, clients=tuple(clients))

    def send(self, msg: Msg) -> "FaultyConfiguration":
        return replace(self, msgs=_bag_add(self.msgs, msg))

    def receive(self, msg: Msg) -> "FaultyConfiguration":
        return replace(self, msgs=_bag_remove(self.msgs, msg))

    def all_msgs(self):
        for msg, count in self.msgs:
            for _ in range(count):
                yield msg
        # NB: duplicates yielded once per occurrence for loss, but
        # receive/deliver only needs distinct messages.

    def distinct_msgs(self):
        return [msg for msg, _count in self.msgs]

    def describe(self) -> str:
        lines = [f"faulty(seqnos={self.use_seqnos})"]
        for proc in range(1, self.nprocs):
            client = self.clients[proc]
            lines.append(
                f"  p{proc}: {client.state.name} seq={client.seq} "
                f"reach={client.reachable} blocked={sorted(client.blocked)}"
            )
        lines.append(f"  pdirty={sorted(self.pdirty)} seen={self.seen} "
                     f"tdirty={sorted(self.tdirty)}")
        lines.append(f"  msgs={self.msgs}")
        return "\n".join(lines)


def initial_faulty(nprocs: int = 2, copies_left: int = 2,
                   losses_left: int = 1, timeouts_left: int = 2,
                   use_seqnos: bool = True) -> FaultyConfiguration:
    """Initial configuration with fault budgets (see module docstring)."""
    return FaultyConfiguration(
        nprocs=nprocs,
        use_seqnos=use_seqnos,
        clients=tuple(ClientState() for _ in range(nprocs)),
        seen=tuple(0 for _ in range(nprocs)),
        copies_left=copies_left,
        losses_left=losses_left,
        timeouts_left=timeouts_left,
    )


@dataclass(frozen=True)
class _Transition:
    kind: str
    params: Tuple

    @property
    def rule(self):
        return self

    @property
    def name(self) -> str:
        return self.kind

    def fire(self, config):
        return _fire(config, self.kind, self.params)

    def __str__(self) -> str:
        return f"{self.kind}{self.params}"


def _owner_apply(config: FaultyConfiguration, client: int, seq: int,
                 add: bool) -> FaultyConfiguration:
    """Apply a dirty (add) or clean (remove) under the seqno rule."""
    if config.use_seqnos:
        if seq <= config.seen[client]:
            return config  # stale: no effect
        seen = list(config.seen)
        seen[client] = seq
        config = replace(config, seen=tuple(seen))
    if add:
        return replace(config, pdirty=config.pdirty | {client})
    return replace(config, pdirty=config.pdirty - {client})


def _fire(config: FaultyConfiguration, kind: str, params) -> FaultyConfiguration:
    if kind == "lose":
        (msg,) = params
        return replace(
            config,
            msgs=_bag_remove(config.msgs, msg),
            losses_left=config.losses_left - 1,
        )

    if kind == "make_copy":
        src, dst = params
        copy_id = config.next_id
        config = replace(
            config,
            next_id=copy_id + 1,
            copies_left=config.copies_left - 1,
            tdirty=config.tdirty | {(src, dst, copy_id)},
        )
        return config.send(("copy", src, dst, copy_id))

    if kind == "receive_copy":
        (msg,) = params
        _, src, dst, copy_id = msg
        config = config.receive(msg)
        if dst == 0:
            # Owner: resolve concrete, ack immediately.
            return config.send(("copy_ack", dst, src, copy_id))
        client = config.client(dst)
        if client.state is RefState.OK:
            config = config.with_client(dst, reachable=True)
            return config.send(("copy_ack", dst, src, copy_id))
        if client.state in (RefState.NIL, RefState.CCITNIL):
            return config.with_client(
                dst, blocked=client.blocked | {(copy_id, src)},
                reachable=True,
            )
        if client.state is RefState.CCIT:
            # Fresh copy while clean in transit: park; the dirty is
            # postponed until the clean cycle resolves.
            return config.with_client(
                dst, state=RefState.CCITNIL,
                blocked=client.blocked | {(copy_id, src)},
                reachable=True,
            )
        # NONEXISTENT: start a dirty cycle.
        seq = client.seq + 1
        config = config.with_client(
            dst, state=RefState.NIL, seq=seq, dirty_seq=seq,
            blocked=client.blocked | {(copy_id, src)},
            reachable=True,
        )
        return config.send(("dirty", dst, seq))

    if kind == "receive_copy_ack":
        (msg,) = params
        _, src, dst, copy_id = msg
        config = config.receive(msg)
        entry = (dst, src, copy_id)
        if entry in config.tdirty:
            config = replace(config, tdirty=config.tdirty - {entry})
        return config

    if kind == "receive_dirty":
        (msg,) = params
        _, client, seq = msg
        config = config.receive(msg)
        config = _owner_apply(config, client, seq, add=True)
        return config.send(("dirty_ack", client, seq))

    if kind == "receive_dirty_ack":
        (msg,) = params
        _, proc, seq = msg
        config = config.receive(msg)
        client = config.client(proc)
        if client.state is not RefState.NIL or seq != client.dirty_seq:
            return config  # stale ack from an abandoned cycle
        acks = client.blocked
        config = config.with_client(
            proc, state=RefState.OK, blocked=frozenset(),
        )
        for copy_id, sender in sorted(acks):
            config = config.send(("copy_ack", proc, sender, copy_id))
        return config

    if kind == "timeout_dirty":
        (proc,) = params
        client = config.client(proc)
        # §2.3: no surrogate is created; a strong clean with a fresh,
        # higher sequence number chases the possibly-delivered dirty.
        seq = client.seq + 1
        config = config.with_client(
            proc, state=RefState.CCIT, seq=seq, clean_seq=seq,
            clean_strong=True, clean_attempt=1,
            blocked=frozenset(), reachable=False,
        )
        config = replace(config, timeouts_left=config.timeouts_left - 1)
        return config.send(("clean", proc, seq, True, 1))

    if kind == "drop":
        (proc,) = params
        return config.with_client(proc, reachable=False)

    if kind == "finalize":
        (proc,) = params
        client = config.client(proc)
        seq = client.seq + 1
        config = config.with_client(
            proc, state=RefState.CCIT, seq=seq, clean_seq=seq,
            clean_strong=False, clean_attempt=1,
        )
        return config.send(("clean", proc, seq, False, 1))

    if kind == "timeout_clean":
        (proc,) = params
        client = config.client(proc)
        # §2.3: "the cleanup demon merely leaves the request on its
        # queue, keeping the same sequence number" — a re-send.
        attempt = client.clean_attempt + 1
        config = config.with_client(proc, clean_attempt=attempt)
        config = replace(config, timeouts_left=config.timeouts_left - 1)
        return config.send(
            ("clean", proc, client.clean_seq, client.clean_strong, attempt)
        )

    if kind == "receive_clean":
        (msg,) = params
        _, client, seq, _strong, _attempt = msg
        config = config.receive(msg)
        config = _owner_apply(config, client, seq, add=False)
        return config.send(("clean_ack", client, seq, _attempt))

    if kind == "receive_clean_ack":
        (msg,) = params
        _, proc, seq, _attempt = msg
        config = config.receive(msg)
        client = config.client(proc)
        if (client.state not in (RefState.CCIT, RefState.CCITNIL)
                or seq != client.clean_seq):
            return config  # stale
        if client.state is RefState.CCIT:
            return config.with_client(
                proc, state=RefState.NONEXISTENT,
                clean_attempt=0, clean_strong=False,
            )
        # CCITNIL: the postponed dirty cycle starts now.
        new_seq = client.seq + 1
        config = config.with_client(
            proc, state=RefState.NIL, seq=new_seq, dirty_seq=new_seq,
            clean_attempt=0, clean_strong=False,
        )
        return config.send(("dirty", proc, new_seq))

    raise ValueError(kind)


class FaultyMachine:
    """Duck-type compatible with :func:`repro.model.explorer.explore`."""

    def enabled(self, config: FaultyConfiguration) -> List[_Transition]:
        transitions = []
        # Faults.
        if config.losses_left > 0:
            for msg in config.distinct_msgs():
                transitions.append(_Transition("lose", (msg,)))
        if config.timeouts_left > 0:
            for proc in range(1, config.nprocs):
                client = config.client(proc)
                if client.state is RefState.NIL:
                    transitions.append(_Transition("timeout_dirty", (proc,)))
                if client.state in (RefState.CCIT, RefState.CCITNIL):
                    transitions.append(_Transition("timeout_clean", (proc,)))
        # Mutator.
        if config.copies_left > 0:
            senders = [0] if config.owner_reachable else []
            senders += [
                proc for proc in range(1, config.nprocs)
                if config.client(proc).state is RefState.OK
                and config.client(proc).reachable
            ]
            for src in senders:
                for dst in range(config.nprocs):
                    if dst != src:
                        transitions.append(
                            _Transition("make_copy", (src, dst))
                        )
        for proc in range(1, config.nprocs):
            client = config.client(proc)
            if client.reachable and client.state is RefState.OK:
                transitions.append(_Transition("drop", (proc,)))
            if (client.state is RefState.OK and not client.reachable
                    and not any(t[0] == proc for t in config.tdirty)
                    and not client.blocked):
                transitions.append(_Transition("finalize", (proc,)))
        # Deliveries.
        for msg in config.distinct_msgs():
            kind = {
                "copy": "receive_copy",
                "copy_ack": "receive_copy_ack",
                "dirty": "receive_dirty",
                "dirty_ack": "receive_dirty_ack",
                "clean": "receive_clean",
                "clean_ack": "receive_clean_ack",
            }[msg[0]]
            transitions.append(_Transition(kind, (msg,)))
        return transitions


def faulty_safety_violations(config: FaultyConfiguration) -> List[str]:
    """Safety under faults: while any client finds the reference
    usable (OK) or a copy is in transit, the owner's tables protect
    the object."""
    usable = [
        proc for proc in range(1, config.nprocs)
        if config.client(proc).state is RefState.OK
    ]
    copies = [msg for msg in config.distinct_msgs() if msg[0] == "copy"]
    if not usable and not copies:
        return []
    protected = bool(config.pdirty) or any(
        sender == 0 for (sender, _dst, _id) in config.tdirty
    )
    if protected:
        return []
    return [
        f"FAULTY-UNSAFE: usable at {usable}, copies {copies}, but the "
        f"owner's dirty tables are empty\n{config.describe()}"
    ]


def faulty_leak_violations(config: FaultyConfiguration) -> List[str]:
    """Leak check, meaningful only at quiescence: no messages, no
    usable/unsettled client state, yet a permanent dirty entry
    remains — the object can never be collected."""
    if config.msgs:
        return []
    for proc in range(1, config.nprocs):
        if config.client(proc).state is not RefState.NONEXISTENT:
            return []
    if config.pdirty:
        return [
            f"LEAK: all clients gone, channels empty, but pdirty="
            f"{sorted(config.pdirty)}\n{config.describe()}"
        ]
    return []
