"""The transition rules (Figures 9–12 of the formalisation).

Each rule lists its enabled parameter tuples for a configuration and
produces the successor configuration when fired.  Rule bodies follow
the pseudo-statements of the formalisation line by line; assertions
encode the formalisation's assert-comments.

``make_copy`` and ``mutator_drop`` are the *mutator's* transitions —
the application copying and discarding references; ``finalize`` is the
local collector noticing unreachability.  Everything else is the
distributed reference-listing algorithm proper.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.dgc.states import RefState
from repro.model.state import Configuration

Params = Tuple


class Rule:
    """A named transition schema."""

    name: str = "<rule>"
    #: True for transitions initiated by the application/local GC,
    #: which the liveness argument excludes from the measure.
    mutator: bool = False

    def candidates(self, config: Configuration) -> Iterable[Params]:
        raise NotImplementedError

    def fire(self, config: Configuration, params: Params) -> Configuration:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<rule {self.name}>"


class MakeCopy(Rule):
    """p1 sends reference r to p2 (argument or result of a call)."""

    name = "make_copy"
    mutator = True

    def candidates(self, config):
        if config.copies_left <= 0:
            return
        for ref in range(config.nrefs):
            for p1 in range(config.nprocs):
                if config.rec_of(p1, ref) is not RefState.OK:
                    continue
                if not config.is_reachable(p1, ref):
                    continue
                for p2 in range(config.nprocs):
                    if p1 != p2:
                        yield (p1, p2, ref)

    def fire(self, config, params):
        p1, p2, ref = params
        copy_id = config.next_id
        config = config.replace(
            next_id=copy_id + 1,
            copies_left=config.copies_left - 1,
            tdirty=config.tdirty | {(p1, ref, p2, copy_id)},
        )
        return config.send(("copy", p1, p2, ref, copy_id))


class ReceiveCopy(Rule):
    """Receive a reference copy: the right-shift of the state cube."""
    name = "receive_copy"

    def candidates(self, config):
        for msg in config.msgs_of_kind("copy"):
            yield msg

    def fire(self, config, params):
        _, p1, p2, ref, copy_id = params
        config = config.receive(params)
        state = config.rec_of(p2, ref)
        if state in (RefState.NIL, RefState.CCITNIL):
            return config.replace(
                blocked=config.blocked | {(p2, ref, copy_id, p1)}
            )
        if state in (RefState.NONEXISTENT, RefState.CCIT):
            new_state = (
                RefState.NIL if state is RefState.NONEXISTENT
                else RefState.CCITNIL
            )
            config = config.with_rec(p2, ref, new_state)
            return config.replace(
                dirty_call_todo=config.dirty_call_todo | {(p2, ref)},
                blocked=config.blocked | {(p2, ref, copy_id, p1)},
            )
        assert state is RefState.OK
        # Note 4: cancel a pending clean call and resurrect in place.
        return config.replace(
            clean_call_todo=config.clean_call_todo - {(p2, ref)},
            copy_ack_todo=config.copy_ack_todo | {(p2, copy_id, p1, ref)},
            reachable=config.reachable | {(p2, ref)},
        )


class DoCopyAck(Rule):
    """Emit a scheduled copy acknowledgement."""
    name = "do_copy_ack"

    def candidates(self, config):
        return list(config.copy_ack_todo)

    def fire(self, config, params):
        proc, copy_id, dest, ref = params
        config = config.replace(copy_ack_todo=config.copy_ack_todo - {params})
        return config.send(("copy_ack", proc, dest, ref, copy_id))


class ReceiveCopyAck(Rule):
    """Receive a copy ack: the sender's transient entry is released."""
    name = "receive_copy_ack"

    def candidates(self, config):
        for msg in config.msgs_of_kind("copy_ack"):
            yield msg

    def fire(self, config, params):
        _, src, dst, ref, copy_id = params
        config = config.receive(params)
        entry = (dst, ref, src, copy_id)
        assert entry in config.tdirty, "copy_ack without transient entry"
        return config.replace(tdirty=config.tdirty - {entry})


class DoDirtyCall(Rule):
    """Note 5: postponed while the state is ccitnil, so a fresh dirty
    can never overtake the preceding clean."""

    name = "do_dirty_call"

    def candidates(self, config):
        for proc, ref in config.dirty_call_todo:
            if config.rec_of(proc, ref) is not RefState.CCITNIL:
                yield (proc, ref)

    def fire(self, config, params):
        proc, ref = params
        config = config.replace(
            dirty_call_todo=config.dirty_call_todo - {params}
        )
        return config.send(("dirty", proc, config.owner[ref], ref))


class ReceiveDirty(Rule):
    """Owner receives a dirty call: permanent entry + ack scheduled."""
    name = "receive_dirty"

    def candidates(self, config):
        for msg in config.msgs_of_kind("dirty"):
            yield msg

    def fire(self, config, params):
        _, p1, p2, ref = params
        assert p2 == config.owner[ref]
        config = config.receive(params)
        return config.replace(
            pdirty=config.pdirty | {(p2, ref, p1)},
            dirty_ack_todo=config.dirty_ack_todo | {(p2, p1, ref)},
        )


class DoDirtyAck(Rule):
    """Emit a scheduled dirty acknowledgement."""
    name = "do_dirty_ack"

    def candidates(self, config):
        return list(config.dirty_ack_todo)

    def fire(self, config, params):
        proc, client, ref = params
        config = config.replace(
            dirty_ack_todo=config.dirty_ack_todo - {params}
        )
        return config.send(("dirty_ack", proc, client, ref))


class ReceiveDirtyAck(Rule):
    """Note 7/8: blocked copy-acks are released and the deserialising
    threads resume — the reference becomes usable (OK)."""

    name = "receive_dirty_ack"

    def candidates(self, config):
        for msg in config.msgs_of_kind("dirty_ack"):
            yield msg

    def fire(self, config, params):
        _, src, dst, ref = params
        config = config.receive(params)
        released = {
            (dst, copy_id, sender, ref)
            for (proc, blocked_ref, copy_id, sender) in config.blocked
            if proc == dst and blocked_ref == ref
        }
        remaining = {
            entry for entry in config.blocked
            if not (entry[0] == dst and entry[1] == ref)
        }
        config = config.replace(
            copy_ack_todo=config.copy_ack_todo | released,
            blocked=frozenset(remaining),
            reachable=config.reachable | {(dst, ref)},
        )
        return config.with_rec(dst, ref, RefState.OK)


class Finalize(Rule):
    """The local collector found the reference locally unreachable.

    Local reachability includes the transient dirty table (Note 2 of
    the formalisation makes it a root of the local collector), so a
    reference with an in-flight copy can never be finalized — that is
    precisely what keeps the sender in the owner's dirty set until the
    receiver's acknowledgement.
    """

    name = "finalize"
    mutator = True

    def candidates(self, config):
        for ref in range(config.nrefs):
            for proc in range(config.nprocs):
                if proc == config.owner[ref]:
                    continue
                if config.rec_of(proc, ref) is not RefState.OK:
                    continue
                if config.is_reachable(proc, ref):
                    continue
                if (proc, ref) in config.clean_call_todo:
                    continue
                if config.tdirty_of(proc, ref):
                    continue  # transient dirty table is a GC root
                yield (proc, ref)

    def fire(self, config, params):
        return config.replace(
            clean_call_todo=config.clean_call_todo | {params}
        )


class DoCleanCall(Rule):
    """Send a scheduled clean call; the reference enters ccit."""
    name = "do_clean_call"

    def candidates(self, config):
        return list(config.clean_call_todo)

    def fire(self, config, params):
        proc, ref = params
        assert config.rec_of(proc, ref) is RefState.OK  # Lemma 2
        config = config.replace(
            clean_call_todo=config.clean_call_todo - {params}
        )
        config = config.with_rec(proc, ref, RefState.CCIT)
        return config.send(("clean", proc, config.owner[ref], ref))


class ReceiveClean(Rule):
    """Owner receives a clean call: permanent entry removed."""
    name = "receive_clean"

    def candidates(self, config):
        for msg in config.msgs_of_kind("clean"):
            yield msg

    def fire(self, config, params):
        _, p1, p2, ref = params
        assert p2 == config.owner[ref]
        config = config.receive(params)
        return config.replace(
            pdirty=config.pdirty - {(p2, ref, p1)},
            clean_ack_todo=config.clean_ack_todo | {(p2, p1, ref)},
        )


class DoCleanAck(Rule):
    """Emit a scheduled clean acknowledgement."""
    name = "do_clean_ack"

    def candidates(self, config):
        return list(config.clean_ack_todo)

    def fire(self, config, params):
        proc, client, ref = params
        config = config.replace(
            clean_ack_todo=config.clean_ack_todo - {params}
        )
        return config.send(("clean_ack", proc, client, ref))


class ReceiveCleanAck(Rule):
    """Note 11: ccit reverts to ⊥; ccitnil moves to nil, re-enabling
    the postponed dirty call."""

    name = "receive_clean_ack"

    def candidates(self, config):
        for msg in config.msgs_of_kind("clean_ack"):
            yield msg

    def fire(self, config, params):
        _, src, dst, ref = params
        config = config.receive(params)
        state = config.rec_of(dst, ref)
        if state is RefState.CCITNIL:
            return config.with_rec(dst, ref, RefState.NIL)
        assert state is RefState.CCIT
        return config.with_rec(dst, ref, RefState.NONEXISTENT)


class MutatorDrop(Rule):
    """The application discards its last local use of a reference."""

    name = "mutator_drop"
    mutator = True

    def candidates(self, config):
        for proc, ref in config.reachable:
            if proc != config.owner[ref]:
                yield (proc, ref)

    def fire(self, config, params):
        return config.replace(reachable=config.reachable - {params})


#: The collector's own transitions (measure-decreasing, Lemma 16).
GC_RULES = (
    ReceiveCopy(), DoCopyAck(), ReceiveCopyAck(),
    DoDirtyCall(), ReceiveDirty(), DoDirtyAck(), ReceiveDirtyAck(),
    DoCleanCall(), ReceiveClean(), DoCleanAck(), ReceiveCleanAck(),
)

#: Application-driven transitions.
MUTATOR_RULES = (MakeCopy(), Finalize(), MutatorDrop())

ALL_RULES = GC_RULES + MUTATOR_RULES

RULES_BY_NAME = {rule.name: rule for rule in ALL_RULES}
