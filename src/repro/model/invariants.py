"""The formalisation's lemmas and safety theorem, as executable checks.

Each function returns a list of violation descriptions (empty when the
property holds).  The explorer evaluates every check in every reachable
configuration; the hypothesis tests evaluate them along random runs.

One divergence from the paper's statements: the owner's own receive
table entry is pinned at OK in our initial configuration (it makes the
mutator's first ``make_copy`` expressible), so lemmas quantified over
"any process p1" are checked for p1 ≠ owner(r) where the paper's
context implies a client.
"""

from __future__ import annotations

from typing import Callable, List

from repro.dgc.states import RefState
from repro.model.state import Configuration

Check = Callable[[Configuration], List[str]]

_USABLE = (RefState.OK, RefState.NIL, RefState.CCITNIL)


def _clients(config: Configuration, ref: int):
    for proc in range(config.nprocs):
        if proc != config.owner[ref]:
            yield proc


def lemma1_ccitnil_has_pending_dirty(config: Configuration) -> List[str]:
    """ccitnil ⇒ a dirty call is scheduled."""
    violations = []
    for ref in range(config.nrefs):
        for proc in range(config.nprocs):
            if (config.rec_of(proc, ref) is RefState.CCITNIL
                    and (proc, ref) not in config.dirty_call_todo):
                violations.append(
                    f"L1: p{proc}/r{ref} is ccitnil without dirty_call_todo"
                )
    return violations


def lemma2_clean_todo_implies_ok(config: Configuration) -> List[str]:
    """A scheduled clean call implies state OK."""
    return [
        f"L2: clean_call_todo holds p{proc}/r{ref} in state "
        f"{config.rec_of(proc, ref).name}"
        for proc, ref in config.clean_call_todo
        if config.rec_of(proc, ref) is not RefState.OK
    ]


def invariant1_transient_entries(config: Configuration) -> List[str]:
    """Invariant 1 (Lemma 3): a transient dirty entry exists iff
    exactly one of {copy in transit, blocked entry, copy_ack in
    transit, copy_ack_todo entry} does."""
    violations = []
    # Gather, per (sender, receiver, ref, id), which of the four terms hold.
    terms = {}

    def mark(key, term):
        terms.setdefault(key, []).append(term)

    for msg in config.msgs:
        if msg[0] == "copy":
            _, src, dst, ref, copy_id = msg
            mark((src, dst, ref, copy_id), "copy-in-transit")
        elif msg[0] == "copy_ack":
            _, src, dst, ref, copy_id = msg
            mark((dst, src, ref, copy_id), "copy_ack-in-transit")
    for proc, ref, copy_id, sender in config.blocked:
        mark((sender, proc, ref, copy_id), "blocked")
    for proc, copy_id, dest, ref in config.copy_ack_todo:
        mark((dest, proc, ref, copy_id), "copy_ack_todo")

    tdirty_keys = {
        (sender, receiver, ref, copy_id)
        for (sender, ref, receiver, copy_id) in config.tdirty
    }
    for key, active in terms.items():
        if len(active) > 1:
            violations.append(f"I1: terms not mutually exclusive for {key}: {active}")
        if key not in tdirty_keys:
            violations.append(f"I1: {active} for {key} without transient entry")
    for key in tdirty_keys:
        if key not in terms:
            violations.append(f"I1: transient entry {key} with no active term")
    return violations


def lemma4_clean_cycle_states(config: Configuration) -> List[str]:
    """Clean traffic for (p1, r) implies p1 is ccit/ccitnil, and the
    three clean-cycle stages are mutually exclusive."""
    violations = []
    stages = {}
    for msg in config.msgs:
        if msg[0] == "clean":
            _, src, dst, ref = msg
            stages.setdefault((src, ref), []).append("clean-in-transit")
        elif msg[0] == "clean_ack":
            _, src, dst, ref = msg
            stages.setdefault((dst, ref), []).append("clean_ack-in-transit")
    for proc, client, ref in config.clean_ack_todo:
        stages.setdefault((client, ref), []).append("clean_ack_todo")
    for (proc, ref), active in stages.items():
        if len(active) > 1:
            violations.append(
                f"L4: clean stages overlap for p{proc}/r{ref}: {active}"
            )
        state = config.rec_of(proc, ref)
        if state not in (RefState.CCIT, RefState.CCITNIL):
            violations.append(
                f"L4: {active} for p{proc}/r{ref} in state {state.name}"
            )
    return violations


def lemma5_dirty_cycle_states(config: Configuration) -> List[str]:
    """Dirty traffic implies nil (or ccitnil while merely scheduled),
    and the four dirty-cycle stages are mutually exclusive."""
    violations = []
    stages = {}
    for proc, ref in config.dirty_call_todo:
        stages.setdefault((proc, ref), []).append("dirty_call_todo")
        state = config.rec_of(proc, ref)
        if state not in (RefState.NIL, RefState.CCITNIL):
            violations.append(
                f"L5a: dirty_call_todo for p{proc}/r{ref} in {state.name}"
            )
    for msg in config.msgs:
        if msg[0] == "dirty":
            _, src, dst, ref = msg
            stages.setdefault((src, ref), []).append("dirty-in-transit")
            if config.rec_of(src, ref) is not RefState.NIL:
                violations.append(
                    f"L5b: dirty in transit for p{src}/r{ref} in "
                    f"{config.rec_of(src, ref).name}"
                )
        elif msg[0] == "dirty_ack":
            _, src, dst, ref = msg
            stages.setdefault((dst, ref), []).append("dirty_ack-in-transit")
            if config.rec_of(dst, ref) is not RefState.NIL:
                violations.append(
                    f"L5b: dirty_ack in transit for p{dst}/r{ref} in "
                    f"{config.rec_of(dst, ref).name}"
                )
    for proc, client, ref in config.dirty_ack_todo:
        stages.setdefault((client, ref), []).append("dirty_ack_todo")
        if config.rec_of(client, ref) is not RefState.NIL:
            violations.append(
                f"L5b: dirty_ack_todo for p{client}/r{ref} in "
                f"{config.rec_of(client, ref).name}"
            )
    for (proc, ref), active in stages.items():
        if len(active) > 1:
            violations.append(
                f"L5c: dirty stages overlap for p{proc}/r{ref}: {active}"
            )
    return violations


def invariant2_permanent_entries(config: Configuration) -> List[str]:
    """Invariant 2 (Lemma 6): for a client p1,
    pdirty ∨ dirty-in-transit ∨ dirty scheduled
      ⟺  clean-in-transit ∨ state ∈ {OK, nil, ccitnil}."""
    violations = []
    for ref in range(config.nrefs):
        owner = config.owner[ref]
        for p1 in _clients(config, ref):
            lhs = (
                (owner, ref, p1) in config.pdirty
                or ("dirty", p1, owner, ref) in config.msgs
                or (p1, ref) in config.dirty_call_todo
            )
            rhs = (
                ("clean", p1, owner, ref) in config.msgs
                or config.rec_of(p1, ref) in _USABLE
            )
            if lhs != rhs:
                violations.append(
                    f"I2: mismatch for p{p1}/r{ref}: lhs={lhs} rhs={rhs} "
                    f"state={config.rec_of(p1, ref).name}"
                )
    return violations


def lemma7_transient_implies_ok(config: Configuration) -> List[str]:
    """Lemma 7: a transient dirty entry implies the sender is OK."""
    return [
        f"L7: transient entry for p{sender}/r{ref} in state "
        f"{config.rec_of(sender, ref).name}"
        for (sender, ref, _receiver, _copy_id) in config.tdirty
        if config.rec_of(sender, ref) is not RefState.OK
    ]


def lemma8_unregistered_has_blocked(config: Configuration) -> List[str]:
    """Lemma 8: an unregistered reference with dirty traffic pending
    has a blocked deserialisation behind it."""
    violations = []
    blocked_keys = {(proc, ref) for proc, ref, _id, _s in config.blocked}
    for ref in range(config.nrefs):
        owner = config.owner[ref]
        for p1 in _clients(config, ref):
            state = config.rec_of(p1, ref)
            if state not in (RefState.NIL, RefState.CCITNIL):
                continue
            dirty_pending = (
                ("dirty", p1, owner, ref) in config.msgs
                or (p1, ref) in config.dirty_call_todo
            )
            if dirty_pending and (p1, ref) not in blocked_keys:
                violations.append(
                    f"L8: p{p1}/r{ref} {state.name} with dirty pending "
                    "but no blocked entry"
                )
    return violations


def safety1_usable_reference(config: Configuration) -> List[str]:
    """Lemma 9: a usable client reference appears in the dirty set."""
    violations = []
    for ref in range(config.nrefs):
        owner = config.owner[ref]
        for p1 in _clients(config, ref):
            if (config.rec_of(p1, ref) is RefState.OK
                    and (owner, ref, p1) not in config.pdirty):
                violations.append(
                    f"S1: p{p1} has usable r{ref} but is not in the dirty set"
                )
    return violations


def _owner_entry_exists(config: Configuration, ref: int) -> bool:
    owner = config.owner[ref]
    has_pdirty = any(
        entry[0] == owner and entry[1] == ref for entry in config.pdirty
    )
    has_tdirty = any(
        entry[0] == owner and entry[1] == ref for entry in config.tdirty
    )
    return has_pdirty or has_tdirty


def safety2_reference_in_transit(config: Configuration) -> List[str]:
    """Lemma 10: a copy in transit is covered by a dirty entry."""
    violations = []
    for msg in config.msgs:
        if msg[0] != "copy":
            continue
        _, src, dst, ref, copy_id = msg
        owner = config.owner[ref]
        if src == owner:
            if (src, ref, dst, copy_id) not in config.tdirty:
                violations.append(
                    f"S2: owner-sent copy {msg} without transient entry"
                )
        elif (owner, ref, src) not in config.pdirty:
            violations.append(
                f"S2: copy {msg} in transit but sender p{src} not dirty"
            )
    return violations


def safety3_unusable_reference(config: Configuration) -> List[str]:
    """Lemma 11: nil/ccitnil somewhere ⇒ the owner has *some* entry."""
    violations = []
    for ref in range(config.nrefs):
        for p1 in _clients(config, ref):
            state = config.rec_of(p1, ref)
            if state in (RefState.NIL, RefState.CCITNIL):
                if not _owner_entry_exists(config, ref):
                    violations.append(
                        f"S3: p{p1}/r{ref} is {state.name} but the owner "
                        "has no dirty entry at all"
                    )
    return violations


def safety_theorem(config: Configuration) -> List[str]:
    """Definition 12 / Theorem 13: while any potentially usable remote
    reference or in-transit copy exists, the owner's dirty tables are
    non-empty — so the owner cannot reclaim the object."""
    violations = []
    for ref in range(config.nrefs):
        alive_remotely = any(
            config.rec_of(p1, ref) in _USABLE
            for p1 in _clients(config, ref)
        ) or any(
            msg[0] == "copy" and msg[3] == ref for msg in config.msgs
        )
        if alive_remotely and not _owner_entry_exists(config, ref):
            violations.append(
                f"SAFETY: r{ref} remotely alive but owner's dirty "
                "tables are empty"
            )
    return violations


def lemma19_blocked_matches_dirty_cycle(config: Configuration) -> List[str]:
    """Lemma 19: blocked entries exist iff a dirty-cycle stage is active."""
    violations = []
    blocked_keys = {(proc, ref) for proc, ref, _id, _s in config.blocked}
    for ref in range(config.nrefs):
        owner = config.owner[ref]
        for p1 in _clients(config, ref):
            stage_active = (
                (p1, ref) in config.dirty_call_todo
                or ("dirty", p1, owner, ref) in config.msgs
                or (owner, p1, ref) in config.dirty_ack_todo
                or ("dirty_ack", owner, p1, ref) in config.msgs
            )
            has_blocked = (p1, ref) in blocked_keys
            if stage_active != has_blocked:
                violations.append(
                    f"L19: p{p1}/r{ref}: dirty stage {stage_active} vs "
                    f"blocked {has_blocked}"
                )
    return violations


def lemma20_nil_is_blocked(config: Configuration) -> List[str]:
    """Lemma 20: a nil reference always has a blocked entry."""
    blocked_keys = {(proc, ref) for proc, ref, _id, _s in config.blocked}
    return [
        f"L20: p{p1}/r{ref} is nil without a blocked entry"
        for ref in range(config.nrefs)
        for p1 in _clients(config, ref)
        if config.rec_of(p1, ref) is RefState.NIL
        and (p1, ref) not in blocked_keys
    ]


ALL_CHECKS: "tuple[Check, ...]" = (
    lemma1_ccitnil_has_pending_dirty,
    lemma2_clean_todo_implies_ok,
    invariant1_transient_entries,
    lemma4_clean_cycle_states,
    lemma5_dirty_cycle_states,
    invariant2_permanent_entries,
    lemma7_transient_implies_ok,
    lemma8_unregistered_has_blocked,
    safety1_usable_reference,
    safety2_reference_in_transit,
    safety3_unusable_reference,
    safety_theorem,
    lemma19_blocked_matches_dirty_cycle,
    lemma20_nil_is_blocked,
)


def all_violations(config: Configuration) -> List[str]:
    """Run every check; returns the concatenated violations."""
    violations: List[str] = []
    for check in ALL_CHECKS:
        violations.extend(check(config))
    return violations


def check_all(config: Configuration) -> None:
    """Assert that every invariant holds (raises with a state dump)."""
    violations = all_violations(config)
    if violations:
        raise AssertionError(
            "invariant violations:\n  "
            + "\n  ".join(violations)
            + "\nin\n"
            + config.describe()
        )
