"""Scripted scenarios over the abstract machine, with message accounting.

The GC-overhead experiment (E4) asks: for a given mutator behaviour —
who copies what to whom, who drops what — how many collector messages
does each algorithm send?  This module drives the *base* machine
through scripted mutator events, draining collector activity to
quiescence between events, and counts messages by kind.

Events:
    ("copy", src, dst)   — src sends the reference to dst
    ("drop", proc)       — proc's application drops the reference
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List, Tuple

from repro.dgc.states import RefState
from repro.model.invariants import check_all
from repro.model.machine import Machine, Transition
from repro.model.rules import RULES_BY_NAME
from repro.model.state import initial_configuration

#: Rules that place a message in a channel, and the message they send.
_SENDING_RULES = {
    "make_copy": "copy",
    "do_copy_ack": "copy_ack",
    "do_dirty_call": "dirty",
    "do_dirty_ack": "dirty_ack",
    "do_clean_call": "clean",
    "do_clean_ack": "clean_ack",
}

Event = Tuple


class ScenarioRun:
    """Execute mutator events on the base machine, counting messages.

    Collector activity is drained deterministically after each event;
    every intermediate configuration is checked against the full
    invariant suite, so a scenario run is also a correctness test.
    """

    def __init__(self, nprocs: int, owner: int = 0, check: bool = True):
        self.machine = Machine()
        self.check = check
        self.config = initial_configuration(
            nprocs=nprocs, nrefs=1, owner=(owner,), copies_left=0
        )
        self.messages: Counter = Counter()
        self.steps = 0

    # -- events -------------------------------------------------------------------

    def copy(self, src: int, dst: int) -> "ScenarioRun":
        self._fire("make_copy", (src, dst, 0),
                   budget=self.config.copies_left + 1)
        self._drain()
        return self

    def drop(self, proc: int, drain: bool = True) -> "ScenarioRun":
        """Drop the reference at ``proc``.

        With ``drain=False`` the clean call is scheduled but not yet
        sent when the method returns — the window in which a fresh
        copy cancels it (the Note-4 resurrection optimisation), which
        the ablation benchmark measures.
        """
        self._fire("mutator_drop", (proc, 0))
        self._maybe_finalize(proc)
        if drain:
            self._drain()
        return self

    def total_gc_messages(self) -> int:
        """Messages excluding the mutator's own copy payloads."""
        return sum(count for kind, count in self.messages.items()
                   if kind != "copy")

    def holders(self) -> List[int]:
        return [
            proc for proc in range(self.config.nprocs)
            if self.config.rec_of(proc, 0) is not RefState.NONEXISTENT
            and proc != self.config.owner[0]
        ]

    def owner_entry_exists(self) -> bool:
        owner = self.config.owner[0]
        return bool(
            self.config.pdirty_of(owner, 0)
            or self.config.tdirty_of(owner, 0)
        )

    # -- internals ---------------------------------------------------------------

    def _fire(self, rule_name: str, params, budget: int = None) -> None:
        if budget is not None:
            self.config = self.config.replace(copies_left=budget)
        rule = RULES_BY_NAME[rule_name]
        if params not in set(rule.candidates(self.config)):
            raise ValueError(
                f"{rule_name}{params} not enabled in\n"
                + self.config.describe()
            )
        self._apply(Transition(rule, params))

    def _maybe_finalize(self, proc: int) -> None:
        rule = RULES_BY_NAME["finalize"]
        if (proc, 0) in set(rule.candidates(self.config)):
            self._apply(Transition(rule, (proc, 0)))

    def _drain(self) -> None:
        """Run collector transitions (plus any finalize they unlock)
        to quiescence, deterministically."""
        while True:
            transitions = self.machine.enabled_gc_only(self.config)
            if not transitions:
                # A copy_ack may have unpinned a dropped reference.
                finalizes = list(
                    RULES_BY_NAME["finalize"].candidates(self.config)
                )
                if not finalizes:
                    return
                self._apply(
                    Transition(RULES_BY_NAME["finalize"], finalizes[0])
                )
                continue
            self._apply(transitions[0])

    def _apply(self, transition: Transition) -> None:
        sent = _SENDING_RULES.get(transition.rule.name)
        if sent is not None:
            self.messages[sent] += 1
        self.config = transition.fire(self.config)
        self.steps += 1
        if self.check:
            check_all(self.config)


def run_events(nprocs: int, events: Iterable[Event],
               check: bool = True) -> ScenarioRun:
    """Run a list of ``("copy", src, dst)`` / ``("drop", p)`` events."""
    run = ScenarioRun(nprocs, check=check)
    for event in events:
        if event[0] == "copy":
            run.copy(event[1], event[2])
        elif event[0] == "drop":
            run.drop(event[1])
        else:
            raise ValueError(f"unknown scenario event {event!r}")
    return run


# -- canonical scenarios (shared by tests and the E4 benchmark) ------------------

def import_and_drop() -> List[Event]:
    """Owner hands the reference to one client, who later drops it."""
    return [("copy", 0, 1), ("drop", 1)]


def third_party() -> List[Event]:
    """Owner → A, A → B (triangle), then both drop."""
    return [("copy", 0, 1), ("copy", 1, 2), ("drop", 1), ("drop", 2)]


def figure_one_race() -> List[Event]:
    """A hands to B and drops immediately (paper Figure 1)."""
    return [("copy", 0, 1), ("copy", 1, 2), ("drop", 1), ("drop", 2)]


def fan_out(clients: int) -> List[Event]:
    """Owner shares with N clients; all drop."""
    events: List[Event] = [("copy", 0, i + 1) for i in range(clients)]
    events += [("drop", i + 1) for i in range(clients)]
    return events


def churn(rounds: int) -> List[Event]:
    """One client repeatedly imports and drops (cycle stress)."""
    events: List[Event] = []
    for _ in range(rounds):
        events.append(("copy", 0, 1))
        events.append(("drop", 1))
    return events
