"""The reference life-cycle states at a client space.

These are the receive-table states of the formal model (and of
:mod:`repro.model`): a reference in a given space is always in exactly
one of them, and the permitted transitions are the cube edges of the
formalisation's state diagram.

========== =====================================================
state       meaning at this space
========== =====================================================
NONEXISTENT the reference is unknown here (``⊥``)
NIL         received, dirty call not yet acknowledged; unusable
OK          registered with the owner; usable
CCIT        clean call in transit; being forgotten
CCITNIL     clean in transit *but* a fresh copy arrived — after
            the clean is acknowledged a new dirty cycle starts
========== =====================================================
"""

from __future__ import annotations

import enum


class RefState(enum.Enum):
    """The five receive-table states (see module docstring)."""
    NONEXISTENT = "bottom"
    NIL = "nil"
    OK = "ok"
    CCIT = "ccit"
    CCITNIL = "ccitnil"

    def usable(self) -> bool:
        """May application code invoke through this reference?"""
        return self is RefState.OK
