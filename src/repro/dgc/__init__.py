"""The distributed garbage collector: Birrell's reference listing.

The collector keeps, per concrete object, the *dirty set* of client
spaces holding surrogates (:mod:`repro.dgc.owner`) and, per imported
reference, a five-state life cycle at the client
(:mod:`repro.dgc.client`) — including the ``ccitnil`` state that the
original description omitted and that the later formalisation showed
to be necessary for correctness when a copy of a reference arrives
while its clean call is still in transit.

Runtime pieces: the cleanup daemon retries clean calls
(:mod:`repro.dgc.daemon`), the pinger detects dead clients and purges
their dirty entries (:mod:`repro.dgc.pinger`), and sequence numbers
order clean/dirty calls in the face of message reordering.
"""

from repro.dgc.config import GcConfig
from repro.dgc.states import RefState
from repro.dgc.owner import DgcOwner
from repro.dgc.client import DgcClient, TransientTable

__all__ = ["DgcClient", "DgcOwner", "GcConfig", "RefState", "TransientTable"]
