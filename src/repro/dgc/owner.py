"""Owner-side collector state: dirty sets and sequence numbers.

The owner applies a clean or dirty call only if its sequence number
exceeds the largest already seen from that client for that object
(``seqno(O, P)`` in the paper), making reordered and duplicated calls
harmless.  When an object's permanent and transient dirty entries are
all gone, its table entry is dropped — from that point the concrete
object's lifetime is purely a local matter.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Set

from repro.core.objtable import ExportedEntry, ObjectTable
from repro.wire.ids import SpaceID
from repro.wire.wirerep import WireRep


class DgcOwner:
    """Owner-side collector operations over one space's object table."""
    def __init__(self, table: ObjectTable,
                 on_drop: Optional[Callable[[ExportedEntry], None]] = None):
        self._table = table
        self._lock = threading.RLock()
        self._on_drop = on_drop
        #: Optional hook ``(entry, client)`` retiring the client's read
        #: lease when it leaves the dirty set (CLEAN or purge) — leases
        #: imply dirty-set membership, so departure must retire them.
        #: Called strictly *outside* this collector's lock: the lease
        #: lock orders before it (the grant path pickles snapshots
        #: under the lease lock, which can take this lock via
        #: record_copy_sent), so calling it under our lock would be the
        #: textbook ABBA deadlock.
        self.lease_retire: Optional[Callable[[ExportedEntry, SpaceID], None]] \
            = None
        # Statistics read by tests and the GC benchmarks.
        self.dirty_calls_seen = 0
        self.clean_calls_seen = 0
        self.stale_calls_ignored = 0
        self.objects_dropped = 0

    # -- incoming GC calls ------------------------------------------------------

    def handle_dirty(self, client: SpaceID, target: WireRep,
                     seqno: int) -> "tuple[bool, str]":
        """Apply a dirty call; returns (ok, error)."""
        with self._lock:
            self.dirty_calls_seen += 1
            entry = self._table.exported_entry(target.index)
            if entry is None:
                # The object is gone.  A correct client cannot observe
                # this for a live reference (safety theorem); it occurs
                # only for retried/late traffic after a purge.
                return False, f"no such object: {target}"
            if seqno > entry.seqnos.get(client, 0):
                entry.seqnos[client] = seqno
                entry.pdirty.add(client)
            else:
                self.stale_calls_ignored += 1
            return True, ""

    def handle_clean(self, client: SpaceID, target: WireRep, seqno: int,
                     strong: bool) -> None:
        """Apply a clean call.  Cleaning an unknown object is a no-op
        (the paper: "if it is not in the set, the clean call is a
        no-op"), which makes clean retries idempotent."""
        departed = None
        with self._lock:
            self.clean_calls_seen += 1
            entry = self._table.exported_entry(target.index)
            if entry is None:
                return
            if seqno > entry.seqnos.get(client, 0):
                entry.seqnos[client] = seqno
                entry.pdirty.discard(client)
                departed = entry
                self._maybe_drop(entry)
            else:
                self.stale_calls_ignored += 1
        if departed is not None and self.lease_retire is not None:
            self.lease_retire(departed, client)

    # -- transient entries for owner-sent copies ---------------------------------

    def record_copy_sent(self, entry: ExportedEntry, copy_id: int) -> None:
        """The owner is transmitting its object: hold it in the dirty
        table until the receiver acknowledges (the §2.1 race fix)."""
        with self._lock:
            entry.tdirty.add(copy_id)

    def handle_copy_ack(self, target: WireRep, copy_id: int) -> None:
        with self._lock:
            entry = self._table.exported_entry(target.index)
            if entry is None:
                return
            entry.tdirty.discard(copy_id)
            self._maybe_drop(entry)

    def release_copy(self, target: WireRep, copy_id: int) -> None:
        """Give up on an unacknowledged copy (receiver presumed dead)."""
        self.handle_copy_ack(target, copy_id)

    # -- client death ------------------------------------------------------------

    def purge_client(self, client: SpaceID) -> int:
        """Remove a presumed-dead client from every dirty set (§2.4).

        Returns the number of entries it was removed from.
        """
        departed = []
        with self._lock:
            for entry in self._table.exported_entries():
                if client in entry.pdirty:
                    entry.pdirty.discard(client)
                    departed.append(entry)
                    self._maybe_drop(entry)
        if self.lease_retire is not None:
            for entry in departed:
                self.lease_retire(entry, client)
        return len(departed)

    def clients(self) -> Set[SpaceID]:
        """Every space currently present in some dirty set."""
        with self._lock:
            result: Set[SpaceID] = set()
            for entry in self._table.exported_entries():
                result |= entry.pdirty
            return result

    def dirty_set(self, index: int) -> Set[SpaceID]:
        with self._lock:
            entry = self._table.exported_entry(index)
            return set(entry.pdirty) if entry is not None else set()

    # -- internals ---------------------------------------------------------------

    def _maybe_drop(self, entry: ExportedEntry) -> None:
        if entry.collectable():
            self._table.drop_exported(entry.index)
            self.objects_dropped += 1
            if self._on_drop is not None:
                self._on_drop(entry)
