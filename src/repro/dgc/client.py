"""Client-side collector state: the reference life cycle.

Each imported reference has a :class:`RefEntry` implementing the
five-state machine of :mod:`repro.dgc.states`.  The rules enforced
here are the ones the formalisation proved necessary:

* a new reference is unusable (NIL) until its dirty call is
  acknowledged; threads deserialising further copies block;
* a copy received while a clean call is in transit parks the entry in
  CCITNIL — the fresh dirty call is *postponed* until the clean's
  acknowledgement, so the two can never be reordered at the owner;
* copy acknowledgements to the reference's sender are deferred until
  after the dirty ack (the naive-counting race fix);
* a copy received after the surrogate died but before its clean call
  was sent cancels the clean and resurrects the entry (Note 4 of the
  formalisation), saving a clean/dirty round trip.

The entry also carries the per-reference sequence number whose
monotonicity the owner relies on.
"""

from __future__ import annotations

import itertools
import threading
import time
import weakref
from typing import Callable, Dict, Optional, Tuple

from repro.dgc.config import GcConfig
from repro.dgc.states import RefState
from repro.errors import CommFailure, NarrowingError, NetObjError
from repro.wire.wirerep import WireRep

#: ``gc_request(endpoints, kind, **fields) -> reply`` — provided by the
#: space; ``kind`` is "dirty" or "clean".
GcRequest = Callable[..., object]


class RefEntry:
    """Collector state for one remote reference at this space."""

    __slots__ = (
        "wirerep", "endpoints", "chain", "typecode", "state", "cond",
        "surrogate_ref", "generation", "dirty_in_progress",
        "clean_scheduled", "strong_pending", "seqno", "epoch",
        "last_failure",
    )

    def __init__(self, wirerep: WireRep, endpoints: Tuple[str, ...],
                 chain: Tuple[str, ...], typecode: str):
        self.wirerep = wirerep
        self.endpoints = endpoints
        self.chain = chain
        self.typecode = typecode
        self.state = RefState.NONEXISTENT
        self.cond = threading.Condition()
        self.surrogate_ref: Optional[weakref.ref] = None
        self.generation = 0
        self.dirty_in_progress = False
        self.clean_scheduled = False
        self.strong_pending = False
        self.seqno = 0
        self.epoch = 0
        self.last_failure: Optional[Exception] = None


class TransientTable:
    """Sender-side transient dirty entries.

    While a reference copy is in flight, the sender pins the local
    instance (surrogate or concrete object) here; the pin is released
    by the receiver's copy acknowledgement.  For surrogates the strong
    reference itself is the pin — the local collector cannot reclaim
    the surrogate, so the owner keeps the sender in the dirty set.

    A lost copy_ack (receiver crashed mid-transfer) would pin forever;
    :meth:`expire` — driven by the space's sweeper when
    ``GcConfig.transient_ttl`` is set — bounds that leak.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pins: Dict[int, object] = {}
        self._created: Dict[int, float] = {}
        self._ids = itertools.count(1)
        self.expired_total = 0

    def pin(self, obj: object) -> int:
        with self._lock:
            copy_id = next(self._ids)
            self._pins[copy_id] = obj
            self._created[copy_id] = time.monotonic()
            return copy_id

    def release(self, copy_id: int) -> Optional[object]:
        with self._lock:
            self._created.pop(copy_id, None)
            return self._pins.pop(copy_id, None)

    def expire(self, ttl: float) -> "list[tuple[int, object]]":
        """Release every pin older than ``ttl`` seconds; returns the
        (copy_id, pinned object) pairs so the caller can unwind any
        owner-side transient entries."""
        cutoff = time.monotonic() - ttl
        expired = []
        with self._lock:
            for copy_id, created in list(self._created.items()):
                if created < cutoff:
                    expired.append((copy_id, self._pins.pop(copy_id)))
                    del self._created[copy_id]
                    self.expired_total += 1
        return expired

    def __len__(self) -> int:
        with self._lock:
            return len(self._pins)


class DgcClient:
    """The client half of the collector for one space."""

    def __init__(self, table, types, gc_request: GcRequest,
                 invoker, config: GcConfig):
        self._table = table          # ObjectTable
        self._types = types          # TypeRegistry
        self._gc_request = gc_request
        self._invoker = invoker      # Surrogate constructor hook
        self._config = config
        self._entries: Dict[WireRep, RefEntry] = {}
        self._lock = threading.Lock()
        self._daemon = None          # attached by the space (CleanupDaemon)
        # Statistics for tests and benchmarks.
        self.dirty_calls_sent = 0
        self.clean_calls_sent = 0
        self.resurrections = 0

    def attach_daemon(self, daemon) -> None:
        self._daemon = daemon

    # -- lookup -------------------------------------------------------------------

    def entry(self, wirerep: WireRep) -> Optional[RefEntry]:
        with self._lock:
            return self._entries.get(wirerep)

    def entry_count(self) -> int:
        with self._lock:
            return len(self._entries)

    def state_of(self, wirerep: WireRep) -> RefState:
        entry = self.entry(wirerep)
        return entry.state if entry is not None else RefState.NONEXISTENT

    def _entry_for(self, wirerep: WireRep, endpoints: Tuple[str, ...],
                   chain: Tuple[str, ...]) -> RefEntry:
        with self._lock:
            entry = self._entries.get(wirerep)
            if entry is None:
                # Narrow eagerly so a client without stubs fails before
                # any dirty traffic reaches the owner.
                typecode = self._types.narrow(chain)
                entry = RefEntry(wirerep, endpoints, chain, typecode)
                self._entries[wirerep] = entry
            return entry

    def _remove_entry(self, entry: RefEntry) -> None:
        with self._lock:
            current = self._entries.get(entry.wirerep)
            if current is entry:
                del self._entries[entry.wirerep]
        self._table.forget_surrogate(entry.wirerep)

    # -- the receive-copy path -----------------------------------------------------

    def acquire_ref(self, wirerep: WireRep, endpoints: Tuple[str, ...],
                    chain: Tuple[str, ...]):
        """Make ``wirerep`` usable here and return its surrogate.

        This is the unmarshal-side of a reference copy: it blocks the
        deserialising thread until the reference is registered with
        its owner (or raises if that proves impossible).
        """
        entry = self._entry_for(wirerep, endpoints, chain)
        deadline = time.monotonic() + 3 * self._config.gc_call_timeout
        while True:
            if time.monotonic() > deadline:
                raise CommFailure(
                    f"timed out making {wirerep} usable "
                    f"(state {entry.state.name})"
                )
            claimed_seqno = None
            with entry.cond:
                state = entry.state
                if state is RefState.OK:
                    surrogate = (
                        entry.surrogate_ref()
                        if entry.surrogate_ref is not None else None
                    )
                    if surrogate is not None:
                        return surrogate
                    # The surrogate died but the owner still lists us:
                    # cancel any pending clean and resurrect in place.
                    # (An entry that never had a surrogate — a prefetch
                    # completed its dirty call first — is not a
                    # resurrection, just the first materialisation.)
                    if entry.clean_scheduled:
                        entry.clean_scheduled = False
                        entry.strong_pending = False
                    if entry.generation:
                        self.resurrections += 1
                    return self._new_surrogate(entry)
                if state is RefState.NONEXISTENT or (
                    state is RefState.NIL and not entry.dirty_in_progress
                ):
                    entry.state = RefState.NIL
                    entry.dirty_in_progress = True
                    entry.seqno += 1
                    claimed_seqno = entry.seqno
                elif state is RefState.NIL:
                    self._wait(entry)
                    continue
                else:  # CCIT or CCITNIL: park until the clean resolves
                    entry.state = RefState.CCITNIL
                    self._wait(entry)
                    continue
            # We claimed the dirty call; perform it outside the lock.
            return self._perform_dirty(entry, claimed_seqno)

    def _wait(self, entry: RefEntry) -> None:
        """Wait for a state change; raise if this life cycle failed."""
        epoch = entry.epoch
        entry.cond.wait(self._config.gc_call_timeout)
        if entry.epoch != epoch and entry.last_failure is not None:
            raise CommFailure(
                f"reference {entry.wirerep} unusable: {entry.last_failure}"
            )

    def _perform_dirty(self, entry: RefEntry, seqno: int):
        try:
            self.dirty_calls_sent += 1
            self._gc_request(entry.endpoints, "dirty",
                             target=entry.wirerep, seqno=seqno)
        except NetObjError as failure:
            self._dirty_failed(entry, failure)
            raise
        with entry.cond:
            entry.dirty_in_progress = False
            entry.state = RefState.OK
            surrogate = self._new_surrogate(entry)
            entry.cond.notify_all()
            return surrogate

    def _dirty_failed(self, entry: RefEntry, failure: Exception) -> None:
        """A dirty call (synchronous or prefetched) failed.

        §2.3: the owner *may* have seen the dirty call, so a strong
        clean must chase it; no surrogate is created, and any threads
        parked on the entry are failed through the epoch bump.
        """
        with entry.cond:
            entry.dirty_in_progress = False
            entry.state = RefState.CCIT
            entry.clean_scheduled = True
            entry.strong_pending = True
            entry.seqno += 1          # the clean outranks the dirty
            entry.epoch += 1
            entry.last_failure = failure
            entry.cond.notify_all()
        if self._daemon is not None:
            self._daemon.enqueue(entry.wirerep)

    # -- pipelined dirty prefetch ---------------------------------------------------

    def prefetch_refs(self, refs, dirty_async) -> int:
        """Issue the dirty calls for several incoming references as
        pipelined futures, collapsing k dirty round trips into ~1.

        ``refs`` yields ``(wirerep, endpoints, chain)`` triples scanned
        out of a not-yet-decoded message; ``dirty_async(endpoints,
        target, seqno, on_done)`` sends one dirty call without blocking
        and later invokes ``on_done(failure_or_None)`` exactly once
        (it may raise for an immediate send failure).

        Each claimed entry goes NIL with ``dirty_in_progress`` set —
        exactly the state the sequential decode's :meth:`acquire_ref`
        knows how to wait on — and the completion callback performs the
        NIL→OK (or failure) transition.  Surrogates are still built by
        the decoding thread, never here.  Returns the number of dirty
        calls issued; references already known, owned by us, or
        unclaimable in their current state are skipped silently.
        """
        issued = 0
        for wirerep, endpoints, chain in refs:
            try:
                entry = self._entry_for(wirerep, endpoints, chain)
            except NarrowingError:
                continue  # the sequential decode will raise properly
            with entry.cond:
                state = entry.state
                if not (state is RefState.NONEXISTENT or
                        (state is RefState.NIL and
                         not entry.dirty_in_progress)):
                    continue
                entry.state = RefState.NIL
                entry.dirty_in_progress = True
                entry.seqno += 1
                seqno = entry.seqno
            self.dirty_calls_sent += 1
            try:
                dirty_async(
                    entry.endpoints, wirerep, seqno,
                    lambda failure, entry=entry:
                        self._finish_prefetch(entry, failure),
                )
            except NetObjError as failure:
                self._dirty_failed(entry, failure)
                continue
            issued += 1
        return issued

    def _finish_prefetch(self, entry: RefEntry,
                         failure: Optional[Exception]) -> None:
        """Completion of a prefetched dirty call (reader thread)."""
        if failure is not None:
            self._dirty_failed(entry, failure)
            return
        with entry.cond:
            entry.dirty_in_progress = False
            if entry.state is RefState.NIL:
                entry.state = RefState.OK
            entry.cond.notify_all()

    def _new_surrogate(self, entry: RefEntry):
        """Build, register and track a fresh surrogate (cond held)."""
        surrogate_cls = self._types.surrogate_class(entry.typecode)
        surrogate = surrogate_cls(
            self._invoker, entry.wirerep, entry.endpoints, entry.chain
        )
        entry.generation += 1
        entry.surrogate_ref = weakref.ref(surrogate)
        weakref.finalize(
            surrogate, self._on_surrogate_dead, entry.wirerep, entry.generation
        )
        self._table.register_surrogate(entry.wirerep, surrogate)
        return surrogate

    # -- local collection of surrogates ----------------------------------------------

    def _on_surrogate_dead(self, wirerep: WireRep, generation: int) -> None:
        """Finalizer: the local collector reclaimed a surrogate."""
        entry = self.entry(wirerep)
        if entry is None:
            return
        with entry.cond:
            if entry.generation != generation:
                return  # a newer surrogate exists; stale notification
            if entry.state is not RefState.OK or entry.clean_scheduled:
                return
            entry.clean_scheduled = True
        if self._daemon is not None:
            self._daemon.enqueue(wirerep)

    # -- the clean cycle (driven by the cleanup daemon) --------------------------------

    def begin_clean(self, wirerep: WireRep):
        """Daemon step 1: claim the scheduled clean call.

        Returns ``(entry, seqno, strong)`` or None when the clean was
        cancelled (resurrection) or is otherwise moot.
        """
        entry = self.entry(wirerep)
        if entry is None:
            return None
        with entry.cond:
            if not entry.clean_scheduled:
                return None
            if entry.state in (RefState.NONEXISTENT, RefState.NIL):
                entry.clean_scheduled = False
                return None
            if entry.state is RefState.OK:
                alive = (
                    entry.surrogate_ref is not None
                    and entry.surrogate_ref() is not None
                )
                if alive:
                    entry.clean_scheduled = False
                    return None
                entry.state = RefState.CCIT
                entry.seqno += 1
            # (a failed dirty call arrives here already in CCIT with
            #  its seqno pre-bumped; CCITNIL keeps its bump too)
            entry.clean_scheduled = False
            strong = entry.strong_pending
            entry.strong_pending = False
            return entry, entry.seqno, strong

    def send_clean(self, entry: RefEntry, seqno: int, strong: bool) -> None:
        """Daemon step 2: one clean-call attempt (may raise CommFailure)."""
        self.clean_calls_sent += 1
        self._gc_request(entry.endpoints, "clean",
                         target=entry.wirerep, seqno=seqno, strong=strong)

    def send_clean_batch(self, endpoints, claims) -> None:
        """Daemon step 2, batched: one attempt at delivering several
        claimed cleans bound for the same owner (may raise CommFailure).
        Falls back to unit CLEAN frames below protocol v3 — the space
        decides per connection; the daemon stays version-blind.
        """
        self.clean_calls_sent += len(claims)
        self._gc_request(
            endpoints, "clean_batch",
            entries=tuple(
                (entry.wirerep, seqno, strong)
                for entry, seqno, strong in claims
            ),
        )

    def finish_clean(self, entry: RefEntry, delivered: bool) -> None:
        """Daemon step 3: apply the clean acknowledgement (or give up).

        ``delivered`` False means every retry failed and the owner is
        presumed dead; the entry is discarded either way, except that
        a CCITNIL entry (fresh copy waiting) returns to NIL so the
        postponed dirty call can finally run.
        """
        with entry.cond:
            if entry.state is RefState.CCITNIL and delivered:
                entry.state = RefState.NIL
                entry.cond.notify_all()
                return
            if entry.state is RefState.CCITNIL:
                # Owner unreachable: fail the parked waiters too.
                entry.epoch += 1
                entry.last_failure = CommFailure(
                    f"owner of {entry.wirerep} unreachable during clean"
                )
                entry.cond.notify_all()
            entry.state = RefState.NONEXISTENT
        self._remove_entry(entry)

    # -- diagnostics ---------------------------------------------------------------

    def live_surrogates(self) -> int:
        with self._lock:
            entries = list(self._entries.values())
        count = 0
        for entry in entries:
            ref = entry.surrogate_ref
            if ref is not None and ref() is not None:
                count += 1
        return count
