"""The cleaning daemon.

From the paper: the wireRep of a collected surrogate "is put on a
queue of objects to be processed later by a cleaning demon.  This
demon is responsible for sending clean calls to the owner. [...] When
a clean call fails, the cleanup demon merely leaves the request on its
queue, keeping the same sequence number.  The clean call will be
repeated until it succeeds, or until the owner's termination is
detected."

One daemon thread per space drains the queue; each item runs the
three-step clean cycle on :class:`~repro.dgc.client.DgcClient`
(claim → send with retries at the *same* sequence number → apply).
"""

from __future__ import annotations

import queue
import threading
from repro.dgc.client import DgcClient
from repro.dgc.config import GcConfig
from repro.errors import NetObjError
from repro.wire.wirerep import WireRep

_STOP = object()


class CleanupDaemon:
    """The per-space cleaning-demon thread (see module docstring)."""
    def __init__(self, client: DgcClient, config: GcConfig,
                 name: str = "gc-cleanup"):
        self._client = client
        self._config = config
        self._queue: "queue.Queue" = queue.Queue()
        self._stop_event = threading.Event()
        self._idle = threading.Event()
        self._idle.set()
        self._thread = threading.Thread(
            target=self._run, name=name, daemon=True
        )
        self._thread.start()
        client.attach_daemon(self)
        # Statistics.
        self.cleans_completed = 0
        self.cleans_abandoned = 0
        self.retries = 0

    def enqueue(self, wirerep: WireRep) -> None:
        self._idle.clear()
        self._queue.put(wirerep)

    def stop(self) -> None:
        self._stop_event.set()
        self._queue.put(_STOP)
        self._thread.join(timeout=5)

    def wait_idle(self, timeout: float = 10.0) -> bool:
        """Block until the queue has fully drained (for tests)."""
        return self._idle.wait(timeout)

    # -- worker -------------------------------------------------------------------

    def _run(self) -> None:
        while not self._stop_event.is_set():
            item = self._queue.get()
            if item is _STOP:
                return
            try:
                self._process(item)
            except Exception:  # noqa: BLE001 - daemon must survive anything
                import traceback

                traceback.print_exc()
            finally:
                if self._queue.empty():
                    self._idle.set()

    def _process(self, wirerep: WireRep) -> None:
        claim = self._client.begin_clean(wirerep)
        if claim is None:
            return  # cancelled (resurrection) or moot
        entry, seqno, strong = claim
        delivered = False
        for attempt in range(self._config.clean_max_retries):
            if self._stop_event.is_set():
                break
            try:
                self._client.send_clean(entry, seqno, strong)
                delivered = True
                break
            except NetObjError:
                self.retries += 1
                if self._stop_event.wait(self._config.clean_retry_interval):
                    break
        if delivered:
            self.cleans_completed += 1
        else:
            self.cleans_abandoned += 1
        self._client.finish_clean(entry, delivered)
