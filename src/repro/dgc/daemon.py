"""The cleaning daemon.

From the paper: the wireRep of a collected surrogate "is put on a
queue of objects to be processed later by a cleaning demon.  This
demon is responsible for sending clean calls to the owner. [...] When
a clean call fails, the cleanup demon merely leaves the request on its
queue, keeping the same sequence number.  The clean call will be
repeated until it succeeds, or until the owner's termination is
detected."

One daemon thread per space drains the queue; each item runs the
three-step clean cycle on :class:`~repro.dgc.client.DgcClient`
(claim → send with retries at the *same* sequence number → apply).
"""

from __future__ import annotations

import logging
import queue
import threading
from repro.dgc.client import DgcClient
from repro.dgc.config import GcConfig
from repro.errors import NetObjError
from repro.wire.wirerep import WireRep

logger = logging.getLogger("repro.dgc.daemon")

_STOP = object()


class CleanupDaemon:
    """The per-space cleaning-demon thread (see module docstring)."""
    def __init__(self, client: DgcClient, config: GcConfig,
                 name: str = "gc-cleanup"):
        self._client = client
        self._config = config
        self._queue: "queue.Queue" = queue.Queue()
        self._stop_event = threading.Event()
        self._idle = threading.Event()
        self._idle.set()
        self._thread = threading.Thread(
            target=self._run, name=name, daemon=True
        )
        self._thread.start()
        client.attach_daemon(self)
        # Statistics.
        self.cleans_completed = 0
        self.cleans_abandoned = 0
        self.cleans_failed = 0
        self.batches_sent = 0
        self.retries = 0

    def enqueue(self, wirerep: WireRep) -> None:
        self._idle.clear()
        self._queue.put(wirerep)

    def stop(self) -> None:
        self._stop_event.set()
        self._queue.put(_STOP)
        self._thread.join(timeout=5)

    def wait_idle(self, timeout: float = 10.0) -> bool:
        """Block until the queue has fully drained (for tests)."""
        return self._idle.wait(timeout)

    # -- worker -------------------------------------------------------------------

    def _run(self) -> None:
        limit = max(1, self._config.clean_batch_max)
        while not self._stop_event.is_set():
            item = self._queue.get()
            if item is _STOP:
                return
            # Drain whatever else is already queued (up to the batch
            # bound) so one collector pass over many surrogates turns
            # into a handful of frames instead of one frame each.
            batch = [item]
            saw_stop = False
            while len(batch) < limit:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    saw_stop = True
                    break
                batch.append(extra)
            try:
                self._process_batch(batch)
            except Exception:  # noqa: BLE001 - daemon must survive anything
                self.cleans_failed += len(batch)
                logger.exception("cleanup daemon: batch of %d dropped",
                                 len(batch))
            finally:
                if self._queue.empty():
                    self._idle.set()
            if saw_stop:
                return

    def _process(self, wirerep: WireRep) -> None:
        """Run the clean cycle for a single queue item (tests)."""
        self._process_batch([wirerep])

    def _process_batch(self, wirereps: "list[WireRep]") -> None:
        # Step 1: claim each scheduled clean.  Cancelled (resurrected)
        # or moot entries drop out here, exactly as in the unit path.
        claims = []
        for wirerep in wirereps:
            claim = self._client.begin_clean(wirerep)
            if claim is not None:
                claims.append(claim)
        if not claims:
            return
        # Step 2+3 per owner: entries bound for the same endpoints ride
        # one CLEAN_BATCH frame; singletons stay unit CLEAN frames.
        groups: "dict[tuple, list]" = {}
        for claim in claims:
            groups.setdefault(claim[0].endpoints, []).append(claim)
        for endpoints, group in groups.items():
            try:
                self._deliver(endpoints, group)
            except Exception:  # noqa: BLE001 - a bad group must not strand the rest
                self.cleans_failed += len(group)
                logger.exception(
                    "cleanup daemon: clean group of %d for %r dropped",
                    len(group), endpoints,
                )

    def _deliver(self, endpoints, group) -> None:
        """Send one owner's claimed cleans, with retries at the *same*
        sequence numbers, then apply the outcome to each entry."""
        delivered = False
        for _attempt in range(self._config.clean_max_retries):
            if self._stop_event.is_set():
                break
            try:
                if len(group) > 1:
                    self._client.send_clean_batch(endpoints, group)
                    self.batches_sent += 1
                else:
                    entry, seqno, strong = group[0]
                    self._client.send_clean(entry, seqno, strong)
                delivered = True
                break
            except NetObjError:
                self.retries += 1
                if self._stop_event.wait(self._config.clean_retry_interval):
                    break
        if delivered:
            self.cleans_completed += len(group)
        else:
            self.cleans_abandoned += len(group)
        for entry, _seqno, _strong in group:
            self._client.finish_clean(entry, delivered)
