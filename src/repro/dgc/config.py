"""Tunables of the distributed collector."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class GcConfig:
    """Collector timing knobs.

    The defaults favour correctness tests on a single machine; the
    fault-tolerance benchmarks shrink the intervals to make crashes
    and retries observable in milliseconds of wall time.
    """

    #: Deadline for one dirty/clean RPC.
    gc_call_timeout: float = 10.0
    #: Pause between clean-call retries after a communication failure.
    clean_retry_interval: float = 0.1
    #: Clean-call attempts before presuming the owner dead.
    clean_max_retries: int = 20
    #: Period of the owner's client-liveness probe; None disables it.
    ping_interval: Optional[float] = None
    #: Deadline for one ping.
    ping_timeout: float = 1.0
    #: Consecutive ping failures after which a client is presumed dead
    #: and purged from every dirty set.
    ping_max_failures: int = 2
    #: Lifetime of a transient dirty entry (a pinned in-flight copy)
    #: before the sender gives up waiting for the receiver's
    #: copy acknowledgement.  Birrell's presentation leaves lost
    #: copy_acks unhandled (the formalisation calls this out); the
    #: expiry bounds the resulting pin leak when a receiver dies
    #: mid-transfer.  None (default) preserves the original behaviour.
    transient_ttl: Optional[float] = None
    #: Sweep period for expired transient entries.
    transient_sweep_interval: float = 1.0
    #: Upper bound on clean calls shipped to one owner in a single
    #: CLEAN_BATCH frame (protocol v3).  1 disables batching: every
    #: clean goes out as a unit CLEAN frame, as in v2.
    clean_batch_max: int = 64
    #: Owner-side cap on a read lease's lifetime (protocol v4), in
    #: seconds; also the TTL clients request by default.  The owner
    #: grants min(requested, cap).  Short enough that an unreachable
    #: holder delays a writer by at most this long.
    lease_ttl: float = 5.0
    #: Extra wait (seconds) on top of a lease's remaining lifetime when
    #: a writer awaits invalidation acks — absorbs scheduling jitter so
    #: a live-but-slow holder acks instead of being expired.
    lease_invalidate_slack: float = 0.1
