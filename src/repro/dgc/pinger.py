"""Client-liveness detection at the owner.

From the paper (§2.4): "[the] collector detects termination by having
each process periodically ping the clients that have surrogates for
its objects.  If the ping is not acknowledged after sufficient time,
the client is assumed to have died, and is removed from all dirty
sets at that owner."

We ping over the existing (symmetric) connection to the client; a
client with no live connection cannot be probed at all, which counts
as a failed ping.  After ``ping_max_failures`` consecutive failures
the client is purged from every dirty set — at which point objects it
alone kept alive become locally collectable.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

from repro.dgc.config import GcConfig
from repro.dgc.owner import DgcOwner
from repro.errors import NetObjError
from repro.wire.ids import SpaceID

#: ``ping(client_id) -> bool`` — provided by the space; True on a
#: timely acknowledgement.
PingFn = Callable[[SpaceID], bool]


class Pinger:
    """Periodic client-liveness prober (see module docstring).

    ``on_purge(client_id)`` is called after a client is purged from
    the dirty sets — the space hooks it to sweep dangling third-party
    name registrations the dead space owned.
    """
    def __init__(self, owner: DgcOwner, ping: PingFn, config: GcConfig,
                 name: str = "gc-pinger",
                 on_purge: Optional[Callable[[SpaceID], None]] = None):
        if config.ping_interval is None:
            raise ValueError("Pinger requires ping_interval to be set")
        self._owner = owner
        self._ping = ping
        self._config = config
        self._on_purge = on_purge
        self._failures: Dict[SpaceID, int] = {}
        self._stop_event = threading.Event()
        self.clients_purged = 0
        self.pings_sent = 0
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop_event.set()
        self._thread.join(timeout=5)

    def _run(self) -> None:
        interval = self._config.ping_interval
        while not self._stop_event.wait(interval):
            try:
                self._round()
            except Exception:  # noqa: BLE001 - pinger must survive anything
                import traceback

                traceback.print_exc()

    def _round(self) -> None:
        clients = self._owner.clients()
        # Forget failure counts of clients that cleaned up properly.
        for known in list(self._failures):
            if known not in clients:
                del self._failures[known]
        for client in clients:
            if self._stop_event.is_set():
                return
            self.pings_sent += 1
            try:
                alive = self._ping(client)
            except NetObjError:
                alive = False
            if alive:
                self._failures[client] = 0
                continue
            count = self._failures.get(client, 0) + 1
            self._failures[client] = count
            if count >= self._config.ping_max_failures:
                self._owner.purge_client(client)
                self.clients_purged += 1
                del self._failures[client]
                if self._on_purge is not None:
                    try:
                        self._on_purge(client)
                    except Exception:  # noqa: BLE001 - see _run
                        import traceback

                        traceback.print_exc()
