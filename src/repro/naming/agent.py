"""The agent (name server).

In the original system every machine ran a ``netobjd`` daemon whose
*agent* mapped names to network objects; a client with no references
at all could bootstrap by importing from the agent, which is reachable
through a well-known object-table index.  We give every space its own
agent, exported pinned at the special index 0, so any space can act as
a name server — the dedicated-``netobjd`` deployment is just a space
that serves nothing else.

Because ``put`` accepts any network object reference — including
surrogates for objects owned elsewhere — an agent can hold third-party
registrations, exactly like the original.
"""

from __future__ import annotations

import threading
from typing import List

from repro.core.netobj import NetObj
from repro.errors import NameServiceError


class NameServer(NetObj):
    """The remote interface of the agent."""

    def get(self, name: str):
        """Return the object registered under ``name``."""
        raise NotImplementedError

    def put(self, name: str, obj) -> None:
        """Register ``obj`` under ``name`` (replacing any previous)."""
        raise NotImplementedError

    def remove(self, name: str) -> None:
        """Unregister ``name``; unknown names are ignored."""
        raise NotImplementedError

    def list(self) -> List[str]:
        """All registered names, sorted."""
        raise NotImplementedError


class Agent(NameServer):
    """In-memory agent implementation.

    The table holds strong references: a registered object is
    reachable from the agent and therefore alive, which is what makes
    ``serve()`` a publication point.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._table: dict = {}

    def get(self, name: str):
        with self._lock:
            try:
                return self._table[name]
            except KeyError:
                raise NameServiceError(f"no object named {name!r}") from None

    def put(self, name: str, obj) -> None:
        with self._lock:
            self._table[name] = obj

    def remove(self, name: str) -> None:
        with self._lock:
            self._table.pop(name, None)

    def list(self) -> List[str]:
        with self._lock:
            return sorted(self._table)
