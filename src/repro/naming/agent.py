"""The agent (name server).

In the original system every machine ran a ``netobjd`` daemon whose
*agent* mapped names to network objects; a client with no references
at all could bootstrap by importing from the agent, which is reachable
through a well-known object-table index.  We give every space its own
agent, exported pinned at the special index 0, so any space can act as
a name server — the dedicated-``netobjd`` deployment is just a space
that serves nothing else.

Because ``put`` accepts any network object reference — including
surrogates for objects owned elsewhere — an agent can hold third-party
registrations, exactly like the original.

Two behaviours layered on since the seed:

* ``get``/``list`` are declared ``@reads``, so bootstrap lookups ride
  the read-lease layer: a client that resolved one name serves every
  further lookup from its lease-cached copy of the table with zero
  network traffic until a registration changes (the space's ``serve``/
  ``unserve`` and the remote ``put``/``remove`` paths all invalidate).

* ``_sweep_owner`` removes third-party registrations whose owning
  space the collector's pinger has declared dead, so a lookup of a
  dangling name fails with :class:`NameServiceError` (the name no
  longer exists) instead of handing out a surrogate that can only
  raise :class:`CommFailure`.

Names of the form ``__name__`` are reserved for the runtime (the
replicated mesh parks its discovery document and replica-to-replica
RPC object there — see :mod:`repro.naming.mesh`); they resolve through
``get`` but are hidden from ``list``.
"""

from __future__ import annotations

import threading
from typing import List

from repro.core.netobj import NetObj, reads
from repro.errors import NameServiceError
from repro.wire.ids import SpaceID

#: Reserved name under which a mesh replica serves its discovery
#: document (a plain dict: replica id, live roster, leader) — see
#: :mod:`repro.naming.discovery`.  A single-space agent answers it
#: with :class:`NameServiceError`, which is how clients detect they
#: are talking to an unreplicated agent.
MESH_NAME = "__mesh__"

#: Reserved name under which a mesh replica serves its internal
#: replica-to-replica RPC object (:class:`repro.naming.mesh.MeshPeer`).
MESH_RPC_NAME = "__mesh_rpc__"


def is_reserved(name: str) -> bool:
    """True for runtime-reserved names (``__name__`` convention)."""
    return name.startswith("__") and name.endswith("__")


class NameServer(NetObj):
    """The remote interface of the agent."""

    @reads
    def get(self, name: str):
        """Return the object registered under ``name``."""
        raise NotImplementedError

    def put(self, name: str, obj) -> None:
        """Register ``obj`` under ``name`` (replacing any previous)."""
        raise NotImplementedError

    def remove(self, name: str) -> None:
        """Unregister ``name``; unknown names are ignored."""
        raise NotImplementedError

    @reads
    def list(self) -> List[str]:
        """All registered (non-reserved) names, sorted."""
        raise NotImplementedError


class Agent(NameServer):
    """In-memory agent implementation.

    The table holds strong references: a registered object is
    reachable from the agent and therefore alive, which is what makes
    ``serve()`` a publication point.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._table: dict = {}

    def get(self, name: str):
        with self._lock:
            try:
                return self._table[name]
            except KeyError:
                raise NameServiceError(f"no object named {name!r}") from None

    def put(self, name: str, obj) -> None:
        with self._lock:
            self._table[name] = obj

    def remove(self, name: str) -> None:
        with self._lock:
            self._table.pop(name, None)

    def list(self) -> List[str]:
        with self._lock:
            return sorted(n for n in self._table if not is_reserved(n))

    # -- read-lease snapshot ----------------------------------------------------

    def __lease_state__(self) -> dict:
        with self._lock:
            return {"names": dict(self._table)}

    def __set_lease_state__(self, state: dict) -> None:
        # The replica is a fully working Agent: local mutations on it
        # would be legal (if pointless — they die with the lease), and
        # reads need the same lock discipline as the original.
        self._lock = threading.Lock()
        self._table = dict(state["names"])

    # -- runtime hooks (not part of the remote surface) --------------------------

    def _sweep_owner(self, owner: SpaceID) -> List[str]:
        """Drop registrations whose objects the dead ``owner`` owned.

        Called by the space when the pinger purges a client: any
        surrogate the agent still holds for that space's objects is a
        dangling registration — ``get`` would hand out a reference
        that can only raise :class:`CommFailure`.  Returns the removed
        names so the caller can invalidate read leases.
        """
        removed: List[str] = []
        with self._lock:
            for name, value in list(self._table.items()):
                rep = getattr(value, "_wirerep", None)
                if rep is not None and rep.owner == owner:
                    del self._table[name]
                    removed.append(name)
        return removed

    def naming_stats(self) -> dict:
        """Counters for ``Space.stats()["naming"]``."""
        with self._lock:
            entries = sum(1 for n in self._table if not is_reserved(n))
        return {"mode": "single", "entries": entries}
