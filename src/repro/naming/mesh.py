"""The replicated naming mesh: N agents, one name table, no SPOF.

A single ``netobjd`` is the last bootstrap single-point-of-failure
between "demo" and serving real traffic: every client must reach it
before it holds its first reference.  This module replicates the
agent across N ``netobjd`` spaces that form a *mesh*:

* **Versioned name table.**  Every registration carries a version
  ``(lamport, replica_id)`` — a Lamport clock stamped by the replica
  that applied the write, with the replica id as tiebreaker — and
  removals leave *tombstones* so a deletion cannot be resurrected by
  an older copy gossiping back.  Merging is last-writer-wins on the
  version tuple, so any two replicas that have seen the same set of
  records hold identical tables regardless of delivery order.

* **Bully-style leader election.**  Writes are serialized through a
  leader (highest live ``replica_id`` wins an election) to keep the
  common path free of write conflicts; the versioned merge makes the
  table converge even across the leadership gaps where two replicas
  stamp concurrently.  Elections ride the same RPC plane as
  everything else — a replica that cannot reach the leader holds an
  election, defers to any live higher id, and claims leadership when
  none answers.

* **Gossip anti-entropy.**  Every ``gossip_interval`` a replica picks
  a random live peer and exchanges a digest (``name -> version``);
  the peer answers with the records it has newer plus the names it
  wants, and the initiator pushes those back.  Writes are also pushed
  eagerly to every live peer, so gossip is the repair channel (lost
  pushes, healed partitions, joiners), bounding convergence at two
  gossip periods for any record a survivor holds.

* **Failure detection.**  ``suspect_after`` consecutive RPC failures
  mark a peer dead: it leaves the advertised roster and, if it was
  the leader, triggers an election.  An explicit ``join`` clears the
  dead mark — a restarted replica re-enters by joining any survivor.

The mesh is reachable through the ordinary agent surface: replicas
answer ``get``/``list`` locally (reads are eventually consistent and
lease-cacheable), route ``put``/``remove`` through the leader, serve
their discovery document under the reserved name ``__mesh__`` and
their replica-to-replica RPC object (:class:`MeshPeer`) under
``__mesh_rpc__``.  Clients use :class:`repro.naming.discovery.
ReplicatedAgent` to discover the roster from any seed and fail over
between replicas.

Threading: the mesh spawns no threads.  The gossip tick is a reactor
timer that only submits the round to the dispatcher; elections,
forwards and pushes all run on dispatcher workers, and every RPC the
mesh makes happens outside the agent lock.
"""

from __future__ import annotations

import random
import threading
import time
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.netobj import NetObj
from repro.errors import NameServiceError, NetObjError
from repro.naming.agent import MESH_NAME, MESH_RPC_NAME, Agent, is_reserved

Version = Tuple[int, int]


class MeshConfig:
    """Tunables for one mesh replica."""

    __slots__ = ("gossip_interval", "suspect_after", "election_timeout",
                 "election_rounds", "tombstone_ttl", "forward_attempts")

    def __init__(self, gossip_interval: float = 0.5, suspect_after: int = 2,
                 election_timeout: float = 1.0, election_rounds: int = 5,
                 tombstone_ttl: float = 60.0, forward_attempts: int = 3):
        #: Seconds between anti-entropy rounds (each round contacts one
        #: random live peer); convergence is bounded by two periods.
        self.gossip_interval = gossip_interval
        #: Consecutive RPC failures before a peer is declared dead.
        self.suspect_after = suspect_after
        #: How long an election waits for a higher replica to announce
        #: itself before re-running (and, ultimately, claiming).
        self.election_timeout = election_timeout
        #: Election retries before claiming leadership despite a live
        #: higher id that never announced (it is presumed wedged).
        self.election_rounds = election_rounds
        #: How long a tombstone is remembered.  Must comfortably exceed
        #: the longest plausible partition; a replica that gossips an
        #: old value after the tombstone is gone resurrects the name.
        self.tombstone_ttl = tombstone_ttl
        #: Write attempts (forward, elect, retry) before giving up.
        self.forward_attempts = forward_attempts


class _Record:
    """One versioned name-table entry (a value or a tombstone)."""

    __slots__ = ("version", "value", "tombstone", "stamped_at")

    def __init__(self, version: Version, value, tombstone: bool,
                 stamped_at: float):
        self.version = version
        self.value = value
        self.tombstone = tombstone
        self.stamped_at = stamped_at

    def wire(self, name: str) -> tuple:
        return (name, self.version, self.value, self.tombstone)


class MeshPeer(NetObj):
    """Replica-to-replica RPC surface of the naming mesh.

    Served under the reserved name ``__mesh_rpc__`` so peers reach it
    through the ordinary bootstrap path; every method delegates to the
    local :class:`MeshAgent`.  Not meant for application code.
    """

    def __init__(self, mesh: "MeshAgent"):
        self._mesh = mesh

    def gossip(self, sender_id: int, sender_endpoints, digest: dict) -> dict:
        """One anti-entropy exchange: answer with my newer records
        (``updates``), the names where the sender is newer
        (``wanted``), my roster and my leader view."""
        return self._mesh._handle_gossip(sender_id, sender_endpoints, digest)

    def push(self, sender_id: int, records) -> int:
        """Apply pushed records; returns how many were news here."""
        return self._mesh._handle_push(sender_id, records)

    def election(self, candidate_id: int) -> bool:
        """Bully probe from a lower replica; True means "I am alive
        and will take it from here"."""
        return self._mesh._handle_election(candidate_id)

    def coordinator(self, leader_id: int, roster: dict) -> bool:
        """Leadership announcement at the end of an election."""
        return self._mesh._handle_coordinator(leader_id, roster)

    def join(self, replica_id: int, endpoints) -> dict:
        """A (re)starting replica announces itself; returns the full
        record set, roster and leader so it can catch up in one RPC."""
        return self._mesh._handle_join(replica_id, endpoints)

    def assign_replica_id(self, endpoints) -> int:
        """Grant a fresh replica id to a joiner that started without
        one.  Non-leaders forward to the leader so a single grantor
        keeps ids unique without consensus."""
        return self._mesh._handle_assign_id(endpoints)

    def publish(self, name: str, value) -> Version:
        """Leader-side write: stamp, apply, propagate; returns the
        version so the forwarder can apply the same record locally."""
        return self._mesh._handle_publish(name, value)

    def retract(self, name: str) -> Version:
        """Leader-side remove (tombstone); returns the version."""
        return self._mesh._handle_retract(name)


class MeshAgent(Agent):
    """An agent replica participating in the naming mesh.

    Construct with a unique ``replica_id`` (it is the bully-election
    priority), hand it to ``Space(agent=...)``, then call
    :meth:`activate` once the space's listeners are bound.  The
    ``netobjd`` daemon does all three — see
    :func:`repro.naming.netobjd.serve`.

    ``replica_id=None`` defers the choice to the mesh: ``activate``
    asks a seed replica (ultimately the leader) to grant a fresh id
    before registering in the roster; with no reachable seed the
    replica is the mesh's first and takes id 1.  Manually assigned
    ids always win — the grantor never hands out an id at or below
    any it has seen.
    """

    def __init__(self, replica_id: Optional[int] = None,
                 config: Optional[MeshConfig] = None,
                 gossip_interval: Optional[float] = None):
        super().__init__()
        self.replica_id: Optional[int] = (
            int(replica_id) if replica_id is not None else None
        )
        self.config = config if config is not None else MeshConfig()
        if gossip_interval is not None:
            self.config.gossip_interval = gossip_interval

        # Versioned view of the name table; ``Agent._table`` stays the
        # live (non-tombstone) projection so reads are plain Agent
        # reads.  Both are guarded by ``self._lock``.
        self._records: Dict[str, _Record] = {}
        self._lamport = 0
        self._roster: Dict[int, Tuple[str, ...]] = {}
        self._dead: set = set()
        self._suspect: Dict[int, int] = {}
        self._peers: Dict[int, object] = {}  # rid -> MeshPeer surrogate
        self._leader: Optional[int] = None
        #: Ids this replica has granted to auto-id joiners.  Kept so
        #: two joiners asking in the window before either registers in
        #: the roster still get distinct ids.
        self._granted_ids: set = set()

        self._space_ref = None  # set by Space via _bind_space
        self._peer_obj = MeshPeer(self)
        self._timer = None
        self._active = False
        self._stopped = threading.Event()
        self._election_lock = threading.Lock()
        self._coordinator_event = threading.Event()
        self._pending_joins: List[str] = []

        # stats (surfaced as Space.stats()["naming"])
        self.gossip_rounds = 0
        self.entries_synced = 0
        self.elections = 0
        self.failovers = 0

    # -- lifecycle ---------------------------------------------------------------

    def _bind_space(self, space) -> None:
        """Called by ``Space.__init__`` when this agent is installed."""
        self._space_ref = weakref.ref(space)

    def _space(self):
        ref = self._space_ref
        return ref() if ref is not None else None

    def activate(self, join: Sequence[str] = ()) -> None:
        """Start meshing: register self in the roster, serve the
        internal RPC object, join via the seed endpoints, elect or
        adopt a leader, and arm the gossip timer.  Call after the
        space's listeners are bound (the roster advertises
        ``space.endpoints``)."""
        space = self._space()
        if space is None:
            raise RuntimeError("MeshAgent is not bound to a Space; "
                               "pass it as Space(agent=...)")
        if self._active:
            return
        if self.replica_id is None:
            # Started without an id: have a seed (ultimately the
            # leader) grant one before we appear in any roster.
            self.replica_id = self._acquire_replica_id(join, space)
        self._active = True
        with self._lock:
            self._roster[self.replica_id] = tuple(space.endpoints)
            self._table[MESH_RPC_NAME] = self._peer_obj
        self._pending_joins = [ep for ep in join]
        self._try_joins()
        if self._leader is None:
            self._start_election()
        self._timer = space.reactor.add_timer(
            self.config.gossip_interval, self._tick
        )

    def _shutdown(self) -> None:
        """Called by ``Space.shutdown``: stop gossiping immediately."""
        self._stopped.set()
        self._coordinator_event.set()  # release any waiting election
        if self._timer is not None:
            self._timer.cancel()

    def _acquire_replica_id(self, join: Sequence[str], space) -> int:
        """Ask each seed for a granted id; with none reachable this
        replica is the mesh's first and takes id 1."""
        for endpoint in join:
            try:
                agent = space.import_object(endpoint)
                peer = agent._invoke("get", (MESH_RPC_NAME,), {})
                return int(peer.assign_replica_id(list(space.endpoints)))
            except NetObjError:
                continue
        return 1

    def _tick(self) -> None:
        # Reactor-thread timer callback: only schedules; the round does
        # RPC and must run on a dispatcher worker.
        space = self._space()
        if space is None or self._stopped.is_set():
            return
        space.dispatcher.submit(self._gossip_round)

    # -- agent surface -----------------------------------------------------------

    def get(self, name: str):
        if name == MESH_NAME:
            return self._mesh_info()
        return super().get(name)

    def put(self, name: str, obj) -> None:
        if is_reserved(name):
            with self._lock:
                self._table[name] = obj
            return
        self._write(name, obj, tombstone=False)

    def remove(self, name: str) -> None:
        if is_reserved(name):
            with self._lock:
                self._table.pop(name, None)
            return
        self._write(name, None, tombstone=True)

    def __lease_state__(self) -> dict:
        state = super().__lease_state__()
        # Even a client that narrowed us to a plain Agent can then
        # serve get("__mesh__") from its replica: the discovery
        # document rides inside the snapshot.
        state["names"][MESH_NAME] = self._mesh_info()
        return state

    def naming_stats(self) -> dict:
        with self._lock:
            entries = sum(1 for n in self._table if not is_reserved(n))
            tombstones = sum(
                1 for r in self._records.values() if r.tombstone
            )
            roster_live = sum(
                1 for rid in self._roster if rid not in self._dead
            )
        return {
            "mode": "mesh",
            "replica_id": self.replica_id,
            "leader": self._leader,
            "entries": entries,
            "tombstones": tombstones,
            "roster_live": roster_live,
            "gossip_rounds": self.gossip_rounds,
            "entries_synced": self.entries_synced,
            "elections": self.elections,
            "failovers": self.failovers,
        }

    def _mesh_info(self) -> dict:
        """The discovery document served under ``__mesh__``."""
        with self._lock:
            roster = {
                rid: list(eps) for rid, eps in self._roster.items()
                if rid not in self._dead
            }
        return {
            "replica_id": self.replica_id,
            "roster": roster,
            "leader": self._leader,
        }

    # -- versioned writes --------------------------------------------------------

    def _stamp(self) -> Version:
        # Caller holds self._lock.
        self._lamport += 1
        return (self._lamport, self.replica_id)

    def _apply_locked(self, name: str, version: Version, value,
                      tombstone: bool) -> bool:
        """Merge one record (caller holds the lock); True if it won."""
        record = self._records.get(name)
        if record is not None and record.version >= version:
            return False
        self._records[name] = _Record(
            version, None if tombstone else value, tombstone,
            time.monotonic(),
        )
        if tombstone:
            self._table.pop(name, None)
        else:
            self._table[name] = value
        return True

    def _write(self, name: str, value, tombstone: bool) -> None:
        """A client-facing ``put``/``remove``: route through the
        leader; elect on a dead one; apply locally as leader."""
        last_error: Optional[Exception] = None
        for _ in range(self.config.forward_attempts):
            leader = self._leader
            if (not self._active or leader is None
                    or leader == self.replica_id):
                with self._lock:
                    version = self._stamp()
                    self._apply_locked(name, version, value, tombstone)
                self._after_write(name, version, value, tombstone,
                                  propagate=True)
                return
            peer = self._peer_surrogate(leader)
            if peer is not None:
                try:
                    if tombstone:
                        version = tuple(peer.retract(name))
                    else:
                        version = tuple(peer.publish(name, value))
                    with self._lock:
                        self._lamport = max(self._lamport, version[0])
                        self._apply_locked(name, version, value, tombstone)
                    # The leader propagates; we only refresh our leases.
                    self._after_write(name, version, value, tombstone,
                                      propagate=False)
                    return
                except NameServiceError:
                    raise
                except NetObjError as exc:
                    last_error = exc
            self._peer_failed(leader)
            self._start_election()
        raise NameServiceError(
            f"naming mesh could not apply {name!r}: no reachable leader "
            f"({last_error})"
        )

    def _after_write(self, name: str, version: Version, value,
                     tombstone: bool, propagate: bool) -> None:
        self._invalidate_leases()
        if not propagate or not self._active or self._stopped.is_set():
            return
        space = self._space()
        if space is None:
            return
        record = (name, version, value, tombstone)
        for rid in self._live_peer_ids():
            space.dispatcher.submit(
                lambda rid=rid: self._push_to(rid, [record])
            )

    def _invalidate_leases(self) -> None:
        """Refresh every client's lease-cached copy of the table after
        a mutation (local writes bypass the space's remote-call
        invalidation hook)."""
        space = self._space()
        if space is not None:
            space._invalidate_after_write(self, "put")

    # -- internal RPC handlers (via MeshPeer, on dispatcher workers) ---------------

    def _handle_publish(self, name: str, value) -> Version:
        # Stamp and apply even if our leadership view is stale: the
        # version merge keeps convergence, and refusing would turn a
        # leadership race into a client-visible failure.
        with self._lock:
            version = self._stamp()
            self._apply_locked(name, version, value, False)
        self._after_write(name, version, value, False, propagate=True)
        return version

    def _handle_retract(self, name: str) -> Version:
        with self._lock:
            version = self._stamp()
            self._apply_locked(name, version, None, True)
        self._after_write(name, version, None, True, propagate=True)
        return version

    def _handle_gossip(self, sender_id: int, sender_endpoints,
                       digest: dict) -> dict:
        sender_id = int(sender_id)
        self._mark_alive(sender_id, sender_endpoints)
        updates = []
        wanted = []
        with self._lock:
            theirs = {n: tuple(v) for n, v in digest.items()}
            for name, record in self._records.items():
                version = theirs.get(name)
                if version is None or version < record.version:
                    updates.append(record.wire(name))
            for name, version in theirs.items():
                record = self._records.get(name)
                if record is None or record.version < version:
                    wanted.append(name)
            roster = {
                rid: list(eps) for rid, eps in self._roster.items()
                if rid not in self._dead
            }
        return {
            "updates": updates,
            "wanted": wanted,
            "roster": roster,
            "leader": self._leader,
        }

    def _handle_push(self, sender_id: int, records) -> int:
        self._mark_alive(int(sender_id), None)
        return self._apply_records(records)

    def _handle_join(self, replica_id: int, endpoints) -> dict:
        replica_id = int(replica_id)
        changed = False
        with self._lock:
            endpoints = tuple(endpoints)
            if (replica_id in self._dead
                    or self._roster.get(replica_id) != endpoints):
                changed = True
            self._dead.discard(replica_id)
            self._suspect.pop(replica_id, None)
            self._peers.pop(replica_id, None)  # re-dial fresh endpoints
            self._roster[replica_id] = endpoints
            records = [r.wire(n) for n, r in self._records.items()]
            roster = {
                rid: list(eps) for rid, eps in self._roster.items()
                if rid not in self._dead
            }
        if changed:
            self._invalidate_leases()
        return {
            "records": records,
            "roster": roster,
            "leader": self._leader,
        }

    def _handle_assign_id(self, endpoints) -> int:
        """Grant a fresh replica id to an auto-id joiner.

        Forwarded to the leader when we are not it (the single grantor
        keeps ids unique without consensus); an unreachable leader
        falls back to a local grant — the joiner must not be stranded,
        and a duplicate-free grant only needs ids this grantor has
        *seen*, which the version merge then reconciles exactly like
        any other roster disagreement.  Manual ids always win: the
        grant starts strictly above every known id.
        """
        leader = self._leader
        if leader is not None and leader != self.replica_id:
            peer = self._peer_surrogate(leader)
            if peer is not None:
                try:
                    return int(peer.assign_replica_id(endpoints))
                except NetObjError:
                    self._peer_failed(leader)
        with self._lock:
            known = [rid for rid in self._roster]
            known.extend(self._granted_ids)
            if self.replica_id is not None:
                known.append(self.replica_id)
            granted = max(known, default=0) + 1
            self._granted_ids.add(granted)
        return granted

    def _handle_election(self, candidate_id: int) -> bool:
        if int(candidate_id) >= self.replica_id:
            return False
        # A lower replica is electing: we outrank it, so we take over.
        space = self._space()
        if space is not None and self._active and not self._stopped.is_set():
            space.dispatcher.submit(self._start_election)
        return True

    def _handle_coordinator(self, leader_id: int, roster: dict) -> bool:
        leader_id = int(leader_id)
        self._merge_roster(roster)
        with self._lock:
            self._dead.discard(leader_id)
            self._suspect.pop(leader_id, None)
        self._set_leader(leader_id)
        self._coordinator_event.set()
        return True

    # -- gossip ------------------------------------------------------------------

    def _gossip_round(self) -> None:
        if self._stopped.is_set() or not self._active:
            return
        if self._pending_joins:
            self._try_joins()
        picked = self._pick_peer()
        if picked is None:
            return
        rid, peer = picked
        with self._lock:
            digest = {n: r.version for n, r in self._records.items()}
            my_endpoints = list(self._roster.get(self.replica_id, ()))
        try:
            reply = peer.gossip(self.replica_id, my_endpoints, digest)
        except NetObjError:
            self._peer_failed(rid)
            return
        self._suspect.pop(rid, None)
        self.gossip_rounds += 1
        self._apply_records(reply.get("updates", ()))
        self._merge_roster(reply.get("roster", {}))
        self._adopt_leader(reply.get("leader"))
        wanted = reply.get("wanted", ())
        if wanted:
            with self._lock:
                records = [
                    self._records[n].wire(n) for n in wanted
                    if n in self._records
                ]
            if records:
                self._push_to(rid, records)
        self._gc_tombstones()
        leader = self._leader
        if leader is None or leader in self._dead:
            self._start_election()

    def _pick_peer(self):
        candidates = self._live_peer_ids()
        random.shuffle(candidates)
        for rid in candidates:
            peer = self._peer_surrogate(rid)
            if peer is not None:
                return rid, peer
        return None

    def _apply_records(self, records) -> int:
        applied = 0
        with self._lock:
            for name, version, value, tombstone in records:
                version = tuple(version)
                if version[0] > self._lamport:
                    self._lamport = version[0]
                if self._apply_locked(name, version, value, tombstone):
                    applied += 1
        if applied:
            self.entries_synced += applied
            self._invalidate_leases()
        return applied

    def _push_to(self, rid: int, records) -> None:
        if self._stopped.is_set():
            return
        peer = self._peer_surrogate(rid)
        if peer is None:
            return
        try:
            peer.push(self.replica_id, records)
        except NetObjError:
            self._peer_failed(rid)

    def _gc_tombstones(self) -> None:
        horizon = time.monotonic() - self.config.tombstone_ttl
        with self._lock:
            for name, record in list(self._records.items()):
                if record.tombstone and record.stamped_at < horizon:
                    del self._records[name]

    # -- membership --------------------------------------------------------------

    def _live_peer_ids(self) -> List[int]:
        with self._lock:
            return [
                rid for rid in self._roster
                if rid != self.replica_id and rid not in self._dead
            ]

    def _mark_alive(self, rid: int, endpoints) -> None:
        if rid == self.replica_id:
            return
        changed = False
        with self._lock:
            if rid in self._dead:
                self._dead.discard(rid)
                changed = True
            self._suspect.pop(rid, None)
            if endpoints:
                endpoints = tuple(endpoints)
                if self._roster.get(rid) != endpoints:
                    self._roster[rid] = endpoints
                    changed = True
        if changed:
            self._invalidate_leases()

    def _merge_roster(self, incoming: dict) -> None:
        changed = False
        with self._lock:
            for rid, endpoints in incoming.items():
                rid = int(rid)
                if rid == self.replica_id or rid in self._dead:
                    continue
                endpoints = tuple(endpoints)
                if self._roster.get(rid) != endpoints:
                    self._roster[rid] = endpoints
                    changed = True
        if changed:
            self._invalidate_leases()

    def _peer_failed(self, rid: int) -> None:
        count = self._suspect.get(rid, 0) + 1
        self._suspect[rid] = count
        if count < self.config.suspect_after:
            return
        with self._lock:
            if rid in self._dead:
                return
            self._dead.add(rid)
            self._peers.pop(rid, None)
        self._invalidate_leases()  # the advertised roster shrank
        if self._leader == rid:
            self._leader = None
            self._start_election()

    def _peer_surrogate(self, rid: int):
        with self._lock:
            if rid in self._dead:
                return None
            peer = self._peers.get(rid)
            endpoints = self._roster.get(rid, ())
        if peer is not None:
            return peer
        space = self._space()
        if space is None or self._stopped.is_set():
            return None
        for endpoint in endpoints:
            try:
                agent = space.import_object(endpoint)
                # Plain RPC on purpose: a leased read here would leave
                # the peer's agent lease in *our* hands, and our death
                # would then stall its writers for a lease TTL.
                peer = agent._invoke("get", (MESH_RPC_NAME,), {})
            except NetObjError:
                continue
            with self._lock:
                if rid in self._dead:
                    return None
                self._peers[rid] = peer
            return peer
        return None

    def _try_joins(self) -> None:
        space = self._space()
        if space is None or self._stopped.is_set():
            return
        remaining = []
        for endpoint in self._pending_joins:
            try:
                agent = space.import_object(endpoint)
                peer = agent._invoke("get", (MESH_RPC_NAME,), {})
                with self._lock:
                    my_endpoints = list(
                        self._roster.get(self.replica_id, ())
                    )
                reply = peer.join(self.replica_id, my_endpoints)
            except NetObjError:
                remaining.append(endpoint)  # retried on gossip ticks
                continue
            self._apply_records(reply.get("records", ()))
            self._merge_roster(reply.get("roster", {}))
            self._adopt_leader(reply.get("leader"))
        self._pending_joins = remaining

    # -- leader election (bully) ---------------------------------------------------

    def _adopt_leader(self, leader: Optional[int]) -> None:
        """Take a peer's leader *view* when ours is missing, dead, or
        lower (the bully invariant: the highest live id leads)."""
        if leader is None:
            return
        leader = int(leader)
        with self._lock:
            if leader in self._dead:
                return
        current = self._leader
        if (current is None or current in self._dead
                or leader > current):
            self._set_leader(leader)

    def _set_leader(self, leader: int) -> None:
        previous = self._leader
        if previous == leader:
            return
        self._leader = leader
        if previous is not None:
            self.failovers += 1
        self._invalidate_leases()  # discovery documents changed

    def _start_election(self) -> None:
        if self._stopped.is_set() or not self._active:
            return
        if not self._election_lock.acquire(blocking=False):
            # An election is already running on another worker; wait
            # for its outcome rather than stampeding the mesh.
            self._coordinator_event.wait(self.config.election_timeout)
            return
        try:
            self.elections += 1
            self._coordinator_event.clear()
            for _ in range(self.config.election_rounds):
                if self._stopped.is_set():
                    return
                deferred = False
                higher = [rid for rid in self._live_peer_ids()
                          if rid > self.replica_id]
                for rid in sorted(higher, reverse=True):
                    peer = self._peer_surrogate(rid)
                    if peer is None:
                        continue
                    try:
                        if peer.election(self.replica_id):
                            deferred = True
                    except NetObjError:
                        self._peer_failed(rid)
                if not deferred:
                    self._become_leader()
                    return
                if self._coordinator_event.wait(
                        self.config.election_timeout):
                    return  # a higher replica announced itself
                # The higher replica answered but never announced —
                # treat the round as failed and re-probe.
            self._become_leader()
        finally:
            self._election_lock.release()

    def _become_leader(self) -> None:
        self._set_leader(self.replica_id)
        self._coordinator_event.set()
        with self._lock:
            roster = {
                rid: list(eps) for rid, eps in self._roster.items()
                if rid not in self._dead
            }
        for rid in self._live_peer_ids():
            peer = self._peer_surrogate(rid)
            if peer is None:
                continue
            try:
                peer.coordinator(self.replica_id, roster)
            except NetObjError:
                self._peer_failed(rid)

    # -- integration hooks ---------------------------------------------------------

    def _sweep_owner(self, owner) -> List[str]:
        """Dead-owner sweep, mesh edition: tombstone (not just drop)
        each dangling registration so the removal gossips to the other
        replicas instead of resurrecting from them."""
        removed: List[str] = []
        records = []
        with self._lock:
            for name, value in list(self._table.items()):
                if is_reserved(name):
                    continue
                rep = getattr(value, "_wirerep", None)
                if rep is not None and rep.owner == owner:
                    version = self._stamp()
                    self._apply_locked(name, version, None, True)
                    removed.append(name)
                    records.append((name, version, None, True))
        if records and self._active and not self._stopped.is_set():
            space = self._space()
            if space is not None:
                for rid in self._live_peer_ids():
                    space.dispatcher.submit(
                        lambda rid=rid, recs=list(records):
                        self._push_to(rid, recs)
                    )
        return removed
