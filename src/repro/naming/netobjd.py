"""``netobjd`` — a standalone name-server daemon.

The original system ran one ``netobjd`` per machine: a process whose
only job is to host an agent that everything else bootstraps from.
Our spaces each carry their own agent, so ``netobjd`` is simply a
space that serves nothing else:

.. code-block:: console

    $ python -m repro.naming.netobjd --listen tcp://0.0.0.0:7023

Programs then rendezvous through it::

    # publisher                      # consumer
    agent = space.import_object(     agent = space.import_object(
        "tcp://host:7023")               "tcp://host:7023")
    agent.put("service", obj)        svc = agent.get("service")

Because ``Agent.put`` accepts references owned elsewhere, the daemon
never owns application objects — it only holds surrogates for them,
and the distributed collector keeps the owners informed.
"""

from __future__ import annotations

import argparse
import threading
from typing import Callable, Optional, Sequence

from repro.core.space import Space
from repro.dgc.config import GcConfig

DEFAULT_ENDPOINT = "tcp://127.0.0.1:7023"


def serve(
    endpoints: Sequence[str] = (DEFAULT_ENDPOINT,),
    ping_interval: Optional[float] = 5.0,
    ready: Optional[Callable[[Space], None]] = None,
    stop_event: Optional[threading.Event] = None,
) -> Space:
    """Run a name-server space until ``stop_event`` is set.

    ``ready`` is invoked with the space once every listener is bound
    (its concrete endpoints are in ``space.endpoints``).  Returns the
    (shut-down) space, mostly for tests.
    """
    gc_config = GcConfig(ping_interval=ping_interval)
    space = Space("netobjd", listen=list(endpoints), gc=gc_config)
    if stop_event is None:
        stop_event = threading.Event()
    try:
        if ready is not None:
            ready(space)
        stop_event.wait()
    finally:
        space.shutdown()
    return space


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (``python -m repro.naming.netobjd``)."""
    parser = argparse.ArgumentParser(
        prog="netobjd",
        description="Network Objects name-server daemon",
    )
    parser.add_argument(
        "--listen", action="append", metavar="ENDPOINT",
        help=f"endpoint to listen on (repeatable; default {DEFAULT_ENDPOINT})",
    )
    parser.add_argument(
        "--ping-interval", type=float, default=5.0,
        help="seconds between client liveness probes (default 5)",
    )
    args = parser.parse_args(argv)
    endpoints = args.listen or [DEFAULT_ENDPOINT]

    def announce(space: Space) -> None:
        for endpoint in space.endpoints:
            print(f"netobjd: serving agent on {endpoint}", flush=True)

    try:
        serve(endpoints, ping_interval=args.ping_interval, ready=announce)
    except KeyboardInterrupt:
        print("netobjd: shutting down")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
