"""``netobjd`` — a standalone name-server daemon.

The original system ran one ``netobjd`` per machine: a process whose
only job is to host an agent that everything else bootstraps from.
Our spaces each carry their own agent, so ``netobjd`` is simply a
space that serves nothing else:

.. code-block:: console

    $ python -m repro.naming.netobjd --listen tcp://0.0.0.0:7023

Programs then rendezvous through it::

    # publisher                      # consumer
    agent = space.import_object(     agent = space.import_object(
        "tcp://host:7023")               "tcp://host:7023")
    agent.put("service", obj)        svc = agent.get("service")

Because ``Agent.put`` accepts references owned elsewhere, the daemon
never owns application objects — it only holds surrogates for them,
and the distributed collector keeps the owners informed.

Replication: give each daemon a ``--replica-id`` and point later ones
at any live replica with ``--join`` and the daemons form a naming
mesh (:mod:`repro.naming.mesh`) — leader-serialized writes, gossip
anti-entropy, no bootstrap SPOF:

.. code-block:: console

    $ netobjd --replica-id 1 --listen tcp://0.0.0.0:7023
    $ netobjd --listen tcp://0.0.0.0:7024 --join tcp://127.0.0.1:7023
    $ netobjd --listen tcp://0.0.0.0:7025 --join tcp://127.0.0.1:7023

``--replica-id`` is optional for joiners: a daemon started with only
``--join`` asks the mesh leader for a fresh id (manually assigned ids
always outrank grants, so mixing both is safe).

Clients bootstrap through
:class:`repro.naming.discovery.ReplicatedAgent` with any one of the
three endpoints as seed.
"""

from __future__ import annotations

import argparse
import sys
import threading
from typing import Callable, Optional, Sequence

from repro.core.space import Space
from repro.dgc.config import GcConfig
from repro.errors import CommFailure
from repro.naming.mesh import MeshAgent

DEFAULT_ENDPOINT = "tcp://127.0.0.1:7023"


def serve(
    endpoints: Sequence[str] = (DEFAULT_ENDPOINT,),
    ping_interval: Optional[float] = 5.0,
    ready: Optional[Callable[[Space], None]] = None,
    stop_event: Optional[threading.Event] = None,
    replica_id: Optional[int] = None,
    join: Sequence[str] = (),
    gossip_interval: float = 0.5,
) -> Space:
    """Run a name-server space until ``stop_event`` is set.

    ``ready`` is invoked with the space once every listener is bound
    (its concrete endpoints are in ``space.endpoints``).  With a
    ``replica_id`` (or ``join`` seeds) the daemon hosts a
    :class:`~repro.naming.mesh.MeshAgent` and participates in the
    replicated naming mesh; the mesh activates after the listeners
    are bound and before ``ready`` fires.  ``join`` without a
    ``replica_id`` asks the mesh (ultimately its leader) to grant a
    fresh id at activation.  Returns the (shut-down) space, mostly
    for tests.

    Raises :class:`~repro.errors.CommFailure` without leaking the
    space if a listen endpoint cannot be bound.
    """
    agent = None
    if replica_id is not None or join:
        # replica_id may be None: the mesh then grants one at
        # activation (leader-assigned; see MeshAgent).
        agent = MeshAgent(replica_id, gossip_interval=gossip_interval)
    gc_config = GcConfig(ping_interval=ping_interval)
    space = Space("netobjd", gc=gc_config, agent=agent)
    try:
        for endpoint in endpoints:
            space.add_listener(endpoint)
    except CommFailure:
        space.shutdown()
        raise
    if stop_event is None:
        stop_event = threading.Event()
    try:
        if agent is not None:
            agent.activate(join=join)
        if ready is not None:
            ready(space)
        stop_event.wait()
    finally:
        space.shutdown()
    return space


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (``python -m repro.naming.netobjd``)."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="netobjd",
        description="Network Objects name-server daemon",
    )
    parser.add_argument(
        "--listen", action="append", metavar="ENDPOINT",
        help=f"endpoint to listen on (repeatable; default {DEFAULT_ENDPOINT})",
    )
    parser.add_argument(
        "--ping-interval", type=float, default=5.0,
        help="seconds between client liveness probes (default 5)",
    )
    parser.add_argument(
        "--replica-id", type=int, default=None, metavar="N",
        help="join the naming mesh as replica N (the highest live id "
             "is elected leader)",
    )
    parser.add_argument(
        "--join", action="append", default=[], metavar="ENDPOINT",
        help="endpoint of a live mesh replica to join (repeatable; "
             "without --replica-id the mesh leader grants a fresh id)",
    )
    parser.add_argument(
        "--gossip-interval", type=float, default=0.5, metavar="SECONDS",
        help="seconds between mesh anti-entropy rounds (default 0.5)",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"netobjd (repro {__version__})",
    )
    args = parser.parse_args(argv)
    endpoints = args.listen or [DEFAULT_ENDPOINT]

    def announce(space: Space) -> None:
        # ``ready`` fires after mesh activation, so an auto-assigned
        # replica id is already resolved on the agent.
        agent = space.agent
        role = (f"mesh replica {agent.replica_id}"
                if isinstance(agent, MeshAgent) else "agent")
        for endpoint in space.endpoints:
            print(f"netobjd: serving {role} on {endpoint}", flush=True)

    try:
        serve(
            endpoints,
            ping_interval=args.ping_interval,
            ready=announce,
            replica_id=args.replica_id,
            join=args.join,
            gossip_interval=args.gossip_interval,
        )
    except CommFailure as exc:
        print(f"netobjd: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("netobjd: shutting down")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
