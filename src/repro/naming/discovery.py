"""Client-side discovery and failover for the replicated naming mesh.

:class:`ReplicatedAgent` is the bootstrap front door a client uses
instead of a raw ``import_object(endpoint, name)``: give it any seed
endpoint of the mesh and it

* **discovers** the full replica roster by asking the seed's agent for
  the reserved ``__mesh__`` name (a single-space agent answers with
  :class:`NameServiceError`, in which case the seed itself is the
  whole "mesh" and the client degrades gracefully to one replica);

* **caches** one agent surrogate per replica and spreads lookups
  round-robin across them;

* **retries** failed calls against the other replicas with jittered
  exponential backoff, dropping replicas that fail and re-resolving
  the roster from whatever still answers — a replica death costs one
  failed RPC and a re-dial, not a client-visible error.

``get``/``list`` on the underlying surrogates are lease-backed reads
(PR 7), so a steady-state lookup costs no RPC at all; this class only
adds the *which replica* decision and the failure handling around it.

A ``NameServiceError`` from ``get`` is different from a dead replica:
the name genuinely may not exist.  Because the table is eventually
consistent, ``get`` gives every live replica one chance to know the
name before the error propagates; all other methods treat it as the
authoritative answer it is.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.errors import (
    NameServiceError,
    NetObjError,
    SpaceShutdownError,
)
from repro.naming.agent import MESH_NAME


class ReplicatedAgent:
    """A mesh-aware name-service client with failover.

    Not a network object itself — a thin local wrapper that owns the
    replica roster and routes :class:`~repro.naming.agent.NameServer`
    calls (``get``/``put``/``remove``/``list``) to live replicas.
    """

    def __init__(self, space, seeds: Sequence[str],
                 max_attempts: int = 8, backoff: float = 0.05,
                 backoff_max: float = 1.0):
        if not seeds:
            raise ValueError("ReplicatedAgent needs at least one seed")
        self._space = space
        self._seeds = list(seeds)
        self._max_attempts = max_attempts
        self._backoff = backoff
        self._backoff_max = backoff_max
        self._lock = threading.Lock()
        self._replicas: Dict[str, object] = {}  # endpoint -> agent
        self._rr = 0
        #: "mesh" once a discovery document has been seen, "single"
        #: when the seed turned out to be an unreplicated agent.
        self.mode = "unresolved"
        self.bootstraps = 0
        self.failovers = 0
        self.retries = 0
        self._resolve()

    # -- public name-service surface -----------------------------------------------

    def get(self, name: str):
        """Resolve ``name``, failing over across replicas.  Because
        replicas converge (they are not snapshot-identical), a
        :class:`NameServiceError` is only raised after every live
        replica has denied the name."""
        return self._call("get", (name,), spread_miss=True)

    def put(self, name: str, obj) -> None:
        return self._call("put", (name, obj))

    def remove(self, name: str) -> None:
        return self._call("remove", (name,))

    def list(self) -> List[str]:
        return self._call("list", ())

    def refresh(self) -> None:
        """Drop the cached roster and re-discover from scratch."""
        with self._lock:
            self._replicas.clear()
        self._resolve()

    @property
    def replicas(self) -> List[str]:
        """The live replica endpoints, in routing order."""
        with self._lock:
            return list(self._replicas)

    # -- discovery -------------------------------------------------------------------

    def _resolve(self) -> None:
        with self._lock:
            known = list(self._replicas)
        last_error: Optional[Exception] = None
        for endpoint in known + [s for s in self._seeds
                                 if s not in known]:
            try:
                agent = self._space.import_object(endpoint)
                info = agent.get(MESH_NAME)
            except NameServiceError:
                # A plain single-space agent: it IS the name service.
                with self._lock:
                    self._replicas = {endpoint: agent}
                self.mode = "single"
                self.bootstraps += 1
                return
            except SpaceShutdownError:
                raise
            except NetObjError as exc:
                last_error = exc
                continue
            roster = info.get("roster", {})
            replicas: Dict[str, object] = {}
            for rid in sorted(roster, key=int):
                for ep in roster[rid]:
                    if ep not in replicas:
                        try:
                            replicas[ep] = self._space.import_object(ep)
                        except NetObjError:
                            continue
                        break
            if endpoint not in replicas:
                replicas[endpoint] = agent
            with self._lock:
                self._replicas = replicas
            self.mode = "mesh"
            self.bootstraps += 1
            return
        raise NameServiceError(
            f"could not discover the naming mesh from any of "
            f"{self._seeds!r} ({last_error})"
        )

    # -- routing ---------------------------------------------------------------------

    def _next(self):
        with self._lock:
            if not self._replicas:
                return None, None
            endpoints = list(self._replicas)
            endpoint = endpoints[self._rr % len(endpoints)]
            self._rr += 1
            return endpoint, self._replicas[endpoint]

    def _drop(self, endpoint: str) -> None:
        with self._lock:
            self._replicas.pop(endpoint, None)

    def _call(self, method: str, args: tuple,
              spread_miss: bool = False):
        attempt = 0
        while True:
            endpoint, agent = self._next()
            if agent is None:
                self._resolve()
                endpoint, agent = self._next()
                if agent is None:
                    raise NameServiceError(
                        "naming mesh unreachable: no live replicas"
                    )
            try:
                return getattr(agent, method)(*args)
            except NameServiceError:
                if not spread_miss:
                    raise
                # Either returns a hit from another replica or raises
                # the (now authoritative) NameServiceError.
                return self._spread_miss(method, args, endpoint)
            except SpaceShutdownError:
                raise
            except NetObjError:
                self._drop(endpoint)
                self.failovers += 1
            attempt += 1
            if attempt >= self._max_attempts:
                raise NameServiceError(
                    f"naming mesh call {method!r} failed after "
                    f"{attempt} attempts"
                )
            self.retries += 1
            delay = min(self._backoff * (2 ** attempt),
                        self._backoff_max)
            time.sleep(delay * random.uniform(0.5, 1.5))

    def _spread_miss(self, method: str, args: tuple, missed: str):
        """A replica denied the name; give each *other* live replica
        one chance (the table is eventually consistent) and raise the
        miss only when they all agree."""
        with self._lock:
            others = [(ep, ag) for ep, ag in self._replicas.items()
                      if ep != missed]
        for endpoint, agent in others:
            try:
                return getattr(agent, method)(*args)
            except NameServiceError:
                continue
            except NetObjError:
                self._drop(endpoint)
                self.failovers += 1
                continue
        raise NameServiceError(
            f"no object named {args[0]!r} on any live replica"
        )
