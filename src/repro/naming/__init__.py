"""The agent: Network Objects' bootstrap name service."""

from repro.naming.agent import Agent, NameServer

__all__ = ["Agent", "NameServer"]
