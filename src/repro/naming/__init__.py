"""The agent: Network Objects' bootstrap name service.

:class:`Agent` is the single-space name server every
:class:`~repro.core.space.Space` carries; :class:`MeshAgent` replicates
it across N ``netobjd`` daemons (leader-serialized writes, gossip
anti-entropy — see :mod:`repro.naming.mesh`) and
:class:`ReplicatedAgent` is the client that discovers the replica set
from any seed and fails over between replicas.
"""

from repro.naming.agent import (
    MESH_NAME,
    MESH_RPC_NAME,
    Agent,
    NameServer,
)
from repro.naming.discovery import ReplicatedAgent
from repro.naming.mesh import MeshAgent, MeshConfig

__all__ = [
    "Agent",
    "MESH_NAME",
    "MESH_RPC_NAME",
    "MeshAgent",
    "MeshConfig",
    "NameServer",
    "ReplicatedAgent",
]
