"""The reactor plane: selector threads owning every connection in a space.

The paper's 1993 runtime parked one reader thread per connection —
fine on a DECstation serving a handful of peers, fatal for a space
holding hundreds of mostly-idle inbound connections.  This module
replaces that with the classic reactor pattern: a small fixed pool of
I/O threads per :class:`~repro.core.space.Space`
(:class:`ReactorPool`, default ``min(4, cpu_count)`` shards) owns
every selectable channel through :mod:`selectors`, performs
incremental frame reassembly (:class:`~repro.wire.framing.FrameAssembler`
keeps PR 1's recv_into/one-allocation discipline), and hands each
completed frame to its connection's :class:`FrameSink` callbacks.
Thread count goes from O(connections) to O(shards) + dispatcher
workers, and a busy space is no longer capped at one core's worth of
frame processing: connections are assigned to the least-loaded shard
at registration and stay there for life, so per-channel state
(assembler, selector registration) remains single-threaded.

**The reactor thread never unpickles and never runs user code.**  A
sink's ``on_frame`` decodes the message *envelope* only and routes it:
replies complete a pending call future, requests go to the space's
dispatcher pool.  Anything that can block — unpickling (which may
issue nested dirty calls), method execution, GC acks — happens on a
worker or caller thread, exactly as it did under reader-per-connection,
so the formal-model GC obligations and protocol interop are untouched.

Transports with no kernel-pollable descriptor (in-process queues, the
simulated network) are bridged by :class:`ChannelPump`: one daemon
thread per connection blocking in ``channel.recv`` and invoking the
same sink callbacks, byte-for-byte the old reader-thread behaviour.
Connections therefore stay transport-blind — they implement FrameSink
and never ask which side of the bridge they live on.

The reactor also owns a timer wheel (:meth:`Reactor.add_timer`) used
for housekeeping ticks such as the connection cache's idle-TTL sweep,
and exports counters (``frames_in``, ``frames_out``, ``wakeups``,
``active_connections``) surfaced through ``Space.stats()``.
"""

from __future__ import annotations

import heapq
import itertools
import logging
import selectors
import socket
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional

from repro.errors import CommFailure
from repro.transport.base import Channel, SelectableChannel

logger = logging.getLogger("repro.transport.reactor")


# -- inline-dispatch budget (protocol v5 fast lane) ---------------------------
#
# A @quick method runs directly on the thread that delivered its frame
# (reactor shard or channel pump), skipping both thread hand-offs of a
# normal dispatch.  That thread also serves every other connection on
# the shard, so inline work is budgeted per wall-clock window: within
# any INLINE_WINDOW_NS span at most INLINE_WINDOW_BUDGET_NS of inline
# CPU and INLINE_WINDOW_MAX_CALLS calls run; past either limit new
# frames fall back to the dispatcher until the window rolls over.  A
# single call overrunning INLINE_CALL_DEMOTE_NS additionally demotes
# its *binding* — a mis-marked blocking method stalls the shard at most
# once, then dispatches normally forever (see DESIGN.md, "The call
# fast lane", for the resulting starvation bound).

#: Budget window length.
INLINE_WINDOW_NS = 5_000_000        # 5 ms
#: Inline CPU allowed per window (half the window: frame I/O always
#: keeps at least half the shard's attention).
INLINE_WINDOW_BUDGET_NS = 2_500_000
#: Call-count ceiling per window, a backstop against clock-granularity
#: undercounting of very short calls.
INLINE_WINDOW_MAX_CALLS = 2048
#: Single-call overrun that permanently demotes the method binding.
INLINE_CALL_DEMOTE_NS = 1_000_000   # 1 ms


class FrameSink:
    """What the reactor delivers to (duck-typed; Connection implements
    this).  ``on_frame(payload)`` receives one complete frame —
    called on the reactor thread for selectable channels, on the pump
    thread otherwise, and must not block.  ``on_closed(failure)``
    fires exactly once when the stream ends: ``failure`` is ``None``
    for a clean end-of-stream and an exception for an abortive one.
    """

    def on_frame(self, payload) -> None:  # pragma: no cover - protocol
        raise NotImplementedError

    def on_closed(self, failure: Optional[Exception]) -> None:  # pragma: no cover
        raise NotImplementedError


class Timer:
    """A repeating reactor timer; ``cancel()`` is thread-safe and
    idempotent.  Callbacks run on the reactor thread and must not
    block — they are housekeeping ticks, not work."""

    __slots__ = ("interval", "callback", "_cancelled")

    def __init__(self, interval: float, callback: Callable[[], None]):
        self.interval = interval
        self.callback = callback
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class ChannelPump:
    """Bridges a blocking :class:`Channel` into FrameSink callbacks.

    One daemon thread per connection calling ``channel.recv()`` — the
    adapter that keeps datagram-style transports (inproc queues, the
    simulated network) working under the reactor regime with frame
    delivery order and teardown semantics identical to the old
    per-connection reader thread.  ``recv() is None`` means clean
    end-of-stream (``on_closed(None)``); a :class:`CommFailure` from
    the channel is an abortive close.
    """

    def __init__(self, channel: Channel, sink, name: str = "pump",
                 reactor: Optional["Reactor"] = None,
                 gate: Optional[threading.Event] = None):
        self._channel = channel
        self._sink = sink
        self._reactor = reactor
        # Admission control's read-throttle for pumped transports: when
        # the sink's credit budget is exhausted the gate is cleared and
        # the pump parks here instead of pulling more frames — the
        # pumped-path analogue of dropping selector read interest.
        # Teardown must set the gate so a parked pump can exit.
        self._gate = gate
        self._thread = threading.Thread(
            target=self._run, name=f"{name}-pump", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def _run(self) -> None:
        failure: Optional[Exception] = None
        reactor = self._reactor
        gate = self._gate
        try:
            while True:
                if gate is not None and not gate.is_set():
                    gate.wait()
                frame = self._channel.recv()
                if frame is None:
                    break
                if reactor is not None:
                    reactor.frames_in += 1
                self._sink.on_frame(frame)
        except CommFailure as exc:
            failure = exc
        finally:
            if reactor is not None:
                reactor._pump_finished(self)
            self._sink.on_closed(failure)


class Reactor:
    """One selector thread owning every selectable channel of a space.

    Thread-safety contract: ``start``/``stop``/``register``/
    ``call_soon``/``add_timer``/``request_write`` may be called from
    any thread; everything prefixed ``_on_thread`` (selector mutation,
    channel event dispatch, timer firing) happens only on the reactor
    thread.  Counter increments ride the GIL like the dispatcher's —
    best-effort exactness, same as every other stats field.
    """

    def __init__(self, name: str = "", index: int = 0):
        self.name = name or "reactor"
        #: Shard number within a :class:`ReactorPool` (0 standalone).
        #: Connections use it to route dispatcher work to their
        #: shard's local deque.
        self.index = index
        #: Channels/pumps assigned to this reactor, counted eagerly at
        #: registration (before the deferred selector work runs) so a
        #: burst of registrations spreads across a pool instead of all
        #: picking the same momentarily-empty shard.
        self._assigned = 0
        self._selector = selectors.DefaultSelector()
        # Self-pipe (socketpair for portability): call_soon from other
        # threads writes one byte to pop the selector out of its wait.
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._wake_send.setblocking(False)
        self._selector.register(self._wake_recv, selectors.EVENT_READ, None)
        self._lock = threading.Lock()
        self._pending: deque = deque()
        self._wake_armed = False
        self._timers: List = []  # heap of (deadline, seq, Timer)
        self._timer_seq = itertools.count()
        self._interest: Dict[SelectableChannel, int] = {}
        # Channels whose read interest is dropped by admission control.
        # A fully-quiet channel (paused, nothing to write) cannot stay
        # in the selector with an empty mask — selectors reject a zero
        # event set — so it is *unregistered* while remaining in
        # ``_interest`` with mask 0, and re-registered on resume.
        self._read_paused: set = set()
        self._pumps: set = set()
        self._stopped = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"reactor-{self.name}", daemon=True
        )
        #: Stats counters (see Space.stats()).
        self.frames_in = 0
        self.frames_out = 0
        self.wakeups = 0
        self.inline_dispatches = 0
        # Inline budget window state (self-resetting on the clock, so
        # it needs no per-loop-turn hook and works identically for the
        # selector thread and ChannelPump threads sharing this shard).
        self._inline_window_start = 0
        self._inline_window_ns = 0
        self._inline_window_calls = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the I/O thread; closes any channel still registered."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        self._wake()
        if self._thread.is_alive() and \
                threading.current_thread() is not self._thread:
            self._thread.join(timeout)

    @property
    def alive(self) -> bool:
        return not self._stopped.is_set()

    # -- registration (any thread) --------------------------------------------

    def register(self, channel: Channel, sink, name: str = "conn") -> "Reactor":
        """Own ``channel``: selector-driven if it is selectable, pumped
        by a bridge thread otherwise.  Frames flow to ``sink`` either
        way.  Returns the reactor that owns the channel (itself; a
        :class:`ReactorPool` returns the chosen shard)."""
        with self._lock:
            self._assigned += 1
        if isinstance(channel, SelectableChannel):
            channel.attach_reactor(self, sink)
            if not self.call_soon(lambda: self._register_on_thread(channel)):
                # Raced by stop(): the channel never joined the
                # selector, so it never will be unassigned either.
                with self._lock:
                    self._assigned -= 1
        else:
            pump = ChannelPump(channel, sink, name=name, reactor=self,
                               gate=getattr(sink, "recv_gate", None))
            with self._lock:
                self._pumps.add(pump)
            pump.start()
        return self

    def call_soon(self, fn: Callable[[], None]) -> bool:
        """Run ``fn`` on the reactor thread at the next loop turn;
        False (and not queued) once the reactor has stopped."""
        with self._lock:
            if self._stopped.is_set():
                return False
            self._pending.append(fn)
            if self._wake_armed or \
                    threading.current_thread() is self._thread:
                return True
            self._wake_armed = True
        self._wake()
        return True

    def add_timer(self, interval: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` every ``interval`` seconds (reactor
        thread; keep it quick).  Returns a cancellable Timer."""
        timer = Timer(interval, callback)
        monotonic = _now()

        def arm():
            heapq.heappush(
                self._timers,
                (monotonic + interval, next(self._timer_seq), timer),
            )

        self.call_soon(arm)
        return timer

    def request_write(self, channel: SelectableChannel) -> None:
        """A nonblocking send left a backlog: poll ``channel`` for
        writability until it drains (cleared by the event handler once
        ``wants_write`` goes False)."""
        self.call_soon(lambda: self._update_interest(channel))

    def pause_read(self, channel: SelectableChannel) -> None:
        """Admission control: stop reading ``channel`` until
        :meth:`resume_read`.  Unread bytes back up in the kernel socket
        buffer and flow-control the peer through TCP — the reactor
        buffers nothing.  Idempotent; safe from any thread."""
        def apply():
            self._read_paused.add(channel)
            self._update_interest(channel)
        self.call_soon(apply)

    def resume_read(self, channel: SelectableChannel) -> None:
        """Undo :meth:`pause_read` once the connection's queued work
        drains below its low-water mark."""
        def apply():
            self._read_paused.discard(channel)
            self._update_interest(channel)
        self.call_soon(apply)

    def forget(self, channel: SelectableChannel,
               and_then: Optional[Callable[[], None]] = None) -> bool:
        """Unregister ``channel`` on the reactor thread, then run
        ``and_then`` (typically: release the file descriptor).  False
        if the reactor is stopped — the caller must clean up itself."""
        def drop():
            self._unregister_on_thread(channel)
            if and_then is not None:
                and_then()

        return self.call_soon(drop)

    # -- stats ----------------------------------------------------------------

    @property
    def load(self) -> int:
        """Channels assigned to this reactor, counted at registration
        time (eager — see ``_assigned``).  The pool's placement key."""
        with self._lock:
            return self._assigned

    @property
    def active_connections(self) -> int:
        with self._lock:
            return len(self._interest) + len(self._pumps)

    def stats(self) -> dict:
        return {
            "frames_in": self.frames_in,
            "frames_out": self.frames_out,
            "wakeups": self.wakeups,
            "inline_dispatches": self.inline_dispatches,
            "active_connections": self.active_connections,
            "paused_reads": len(self._read_paused),
        }

    # -- inline-dispatch budget (any frame-delivering thread) -----------------

    def try_acquire_inline(self) -> bool:
        """May one more call run inline right now?  Rolls the budget
        window over when it has expired.  Racy by design (GIL-ridden
        increments, like every counter here): the budget bounds inline
        work per window approximately, which is all the starvation
        argument needs."""
        now = time.perf_counter_ns()
        if now - self._inline_window_start >= INLINE_WINDOW_NS:
            self._inline_window_start = now
            self._inline_window_ns = 0
            self._inline_window_calls = 0
        return (
            self._inline_window_ns < INLINE_WINDOW_BUDGET_NS
            and self._inline_window_calls < INLINE_WINDOW_MAX_CALLS
        )

    def record_inline(self, elapsed_ns: int) -> bool:
        """Account one completed inline call; True when the call
        overran :data:`INLINE_CALL_DEMOTE_NS` and its binding should be
        demoted to the dispatcher."""
        self.inline_dispatches += 1
        self._inline_window_calls += 1
        self._inline_window_ns += elapsed_ns
        return elapsed_ns > INLINE_CALL_DEMOTE_NS

    # -- reactor thread -------------------------------------------------------

    def _run(self) -> None:
        try:
            while not self._stopped.is_set():
                timeout = self._next_timeout()
                events = self._selector.select(timeout)
                self.wakeups += 1
                for key, mask in events:
                    if key.data is None:
                        self._drain_wake()
                    else:
                        self._channel_event(key.data, mask)
                self._run_pending()
                self._fire_timers()
        except Exception:  # pragma: no cover - must never die silently
            logger.exception("reactor %s: I/O loop crashed", self.name)
        finally:
            self._shutdown_on_thread()

    def _next_timeout(self) -> Optional[float]:
        while self._timers and self._timers[0][2].cancelled:
            heapq.heappop(self._timers)
        if not self._timers:
            return None
        return max(0.0, self._timers[0][0] - _now())

    def _drain_wake(self) -> None:
        try:
            while self._wake_recv.recv(4096):
                pass
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:  # pragma: no cover - wake pipe died with us
            pass
        with self._lock:
            self._wake_armed = False

    def _wake(self) -> None:
        try:
            self._wake_send.send(b"\x00")
        except (BlockingIOError, InterruptedError):
            pass  # pipe already full: the loop is waking anyway
        except OSError:  # pragma: no cover - raced by close
            pass

    def _channel_event(self, channel: SelectableChannel, mask: int) -> None:
        if mask & selectors.EVENT_WRITE:
            try:
                more = channel.handle_writable()
            except Exception:  # noqa: BLE001 - one channel must not kill the loop
                logger.exception("reactor %s: writable handler failed",
                                 self.name)
                more = False
            if not more:
                self._update_interest(channel)
        if mask & selectors.EVENT_READ:
            try:
                channel.handle_readable()
            except Exception:  # noqa: BLE001
                logger.exception("reactor %s: readable handler failed",
                                 self.name)

    def _wanted_events(self, channel: SelectableChannel) -> int:
        events = 0
        if channel not in self._read_paused:
            events |= selectors.EVENT_READ
        if channel.wants_write():
            events |= selectors.EVENT_WRITE
        return events

    def _register_on_thread(self, channel: SelectableChannel) -> None:
        events = self._wanted_events(channel)
        with self._lock:
            if channel in self._interest:
                return
            self._interest[channel] = events
        if events == 0:
            # Paused before it ever joined the selector: tracked with
            # an empty mask, registered for real on resume.
            return
        try:
            self._selector.register(channel, events, channel)
        except (ValueError, OSError) as exc:
            with self._lock:
                self._interest.pop(channel, None)
                self._assigned -= 1
            logger.debug("reactor %s: register failed: %s", self.name, exc)

    def _unregister_on_thread(self, channel: SelectableChannel) -> None:
        self._read_paused.discard(channel)
        with self._lock:
            current = self._interest.pop(channel, None)
            if current is not None:
                self._assigned -= 1
        if not current:
            # Unknown, or tracked with an empty mask (read-paused and
            # nothing to write) — not in the selector either way.
            return
        try:
            self._selector.unregister(channel)
        except (KeyError, ValueError, OSError):  # pragma: no cover - raced
            pass

    def _update_interest(self, channel: SelectableChannel) -> None:
        wanted = self._wanted_events(channel)
        with self._lock:
            current = self._interest.get(channel)
            if current is None or current == wanted:
                return
            self._interest[channel] = wanted
        # A selector entry cannot carry an empty event mask, so the
        # zero transitions are register/unregister, not modify.
        try:
            if current == 0:
                self._selector.register(channel, wanted, channel)
            elif wanted == 0:
                self._selector.unregister(channel)
            else:
                self._selector.modify(channel, wanted, channel)
        except (KeyError, ValueError, OSError):  # pragma: no cover - raced
            pass

    def _run_pending(self) -> None:
        while True:
            with self._lock:
                if not self._pending:
                    return
                fn = self._pending.popleft()
            try:
                fn()
            except Exception:  # noqa: BLE001 - scheduled work must not kill the loop
                logger.exception("reactor %s: scheduled call failed", self.name)

    def _fire_timers(self) -> None:
        now = _now()
        while self._timers and self._timers[0][0] <= now:
            _deadline, _seq, timer = heapq.heappop(self._timers)
            if timer.cancelled:
                continue
            try:
                timer.callback()
            except Exception:  # noqa: BLE001
                logger.exception("reactor %s: timer callback failed", self.name)
            heapq.heappush(
                self._timers,
                (now + timer.interval, next(self._timer_seq), timer),
            )

    def _pump_finished(self, pump: ChannelPump) -> None:
        with self._lock:
            if pump in self._pumps:
                self._pumps.discard(pump)
                self._assigned -= 1

    def _shutdown_on_thread(self) -> None:
        # Channels still registered at stop (stragglers the owning
        # space failed to close) are closed here so their descriptors
        # and flush waiters are released.
        with self._lock:
            leftovers = list(self._interest)
            self._interest.clear()
            pending = list(self._pending)
            self._pending.clear()
        for channel in leftovers:
            try:
                self._selector.unregister(channel)
            except (KeyError, ValueError, OSError):
                pass
            try:
                channel.close()
            except CommFailure:
                pass
        for fn in pending:
            try:
                fn()
            except Exception:  # noqa: BLE001
                logger.exception("reactor %s: late scheduled call failed",
                                 self.name)
        try:
            self._selector.unregister(self._wake_recv)
        except (KeyError, ValueError, OSError):
            pass
        self._selector.close()
        self._wake_recv.close()
        self._wake_send.close()


class ReactorPool:
    """N reactors sharing a space's I/O load — one selector thread per
    shard, connections pinned to the least-loaded shard at
    registration.

    The pool presents the same surface a single :class:`Reactor` did
    (``register``/``add_timer``/``stop``/``stats``/``alive``/
    ``active_connections``), so the owning
    :class:`~repro.core.space.Space` and its
    :class:`~repro.rpc.cache.ConnectionCache` are shard-blind.
    ``register`` returns the chosen shard; a
    :class:`~repro.rpc.connection.Connection` keeps that handle for
    its per-shard counters and for routing incoming requests to the
    dispatcher's matching local deque.

    Placement is least-loaded by *assigned* channel count (eager, so a
    registration burst interleaves across shards instead of piling
    onto one), with the lowest shard index breaking ties.  A channel
    never migrates: its frame-assembly state and selector registration
    stay single-threaded for life, which is what keeps the whole plane
    lock-free on the per-channel hot path.

    Timers arm on shard 0 — housekeeping (the connection cache's idle
    sweep) does not need spreading.  ``frames_out`` on the pool itself
    counts frames sent before a connection is registered (handshake
    traffic); per-shard counters take over afterwards.
    """

    def __init__(self, shards: int = 1, name: str = ""):
        shards = max(1, int(shards))
        base = name or "pool"
        self._reactors: List[Reactor] = [
            Reactor(name=f"{base}.{i}" if shards > 1 else base, index=i)
            for i in range(shards)
        ]
        self._lock = threading.Lock()
        #: Handshake-time frame sends (see class docstring).
        self.frames_out = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        for reactor in self._reactors:
            reactor.start()

    def stop(self, timeout: float = 5.0) -> None:
        for reactor in self._reactors:
            reactor.stop(timeout)

    @property
    def alive(self) -> bool:
        return all(reactor.alive for reactor in self._reactors)

    @property
    def shards(self) -> int:
        return len(self._reactors)

    @property
    def reactors(self) -> "List[Reactor]":
        """The shards, indexed by ``Reactor.index`` (read-only use)."""
        return list(self._reactors)

    # -- registration ----------------------------------------------------------

    def register(self, channel: Channel, sink, name: str = "conn") -> Reactor:
        """Assign ``channel`` to the least-loaded shard; returns it."""
        with self._lock:
            # min() on the eager load keeps a registration burst from
            # racing every pick onto the momentarily-least shard; the
            # pool lock serialises the reads against each other.
            reactor = min(self._reactors, key=lambda r: (r.load, r.index))
        return reactor.register(channel, sink, name=name)

    def add_timer(self, interval: float, callback: Callable[[], None]) -> Timer:
        return self._reactors[0].add_timer(interval, callback)

    # -- stats ----------------------------------------------------------------

    @property
    def active_connections(self) -> int:
        return sum(r.active_connections for r in self._reactors)

    def stats(self) -> dict:
        per_shard = [reactor.stats() for reactor in self._reactors]
        return {
            "frames_in": sum(s["frames_in"] for s in per_shard),
            "frames_out": self.frames_out
            + sum(s["frames_out"] for s in per_shard),
            "wakeups": sum(s["wakeups"] for s in per_shard),
            "inline_dispatches": sum(
                s["inline_dispatches"] for s in per_shard
            ),
            "active_connections": sum(
                s["active_connections"] for s in per_shard
            ),
            "paused_reads": sum(s["paused_reads"] for s in per_shard),
            "shards": len(per_shard),
            "per_shard": per_shard,
        }


def default_reactor_shards() -> int:
    """The default I/O shard count: ``min(4, cpu_count)``.  One shard
    per core up to four — beyond that, selector threads contend on the
    GIL faster than they drain sockets."""
    try:
        import os

        cpus = os.cpu_count() or 1
    except Exception:  # pragma: no cover - platform oddity
        cpus = 1
    return max(1, min(4, cpus))


def _now() -> float:
    return time.monotonic()
