"""Transports: how frames move between address spaces.

The original system ran over TCP with a transport abstraction that
allowed others to be plugged in; we reproduce that shape with three
implementations selected by endpoint scheme:

* ``inproc://name`` — queue pairs inside one process; the fastest
  path and the "same machine" stand-in for unit tests.
* ``tcp://host:port`` — real sockets with length-prefixed framing.
* ``sim://name`` — channels over the discrete-event
  :class:`~repro.sim.network.SimNetwork`, for deterministic latency,
  loss and reordering experiments.
* ``shm://path`` — same-machine shared-memory rings with a Unix-socket
  doorbell; the side door spaces upgrade loopback TCP peers to.
"""

from repro.transport.base import Channel, Listener, Transport, TransportRegistry
from repro.transport.inprocess import InProcessTransport
from repro.transport.shm import ShmTransport
from repro.transport.tcp import TcpTransport
from repro.transport.simulated import SimTransport

__all__ = [
    "Channel",
    "InProcessTransport",
    "Listener",
    "ShmTransport",
    "SimTransport",
    "TcpTransport",
    "Transport",
    "TransportRegistry",
]
