"""The TCP transport: real sockets, length-prefixed frames.

This is the paper's deployment transport.  Listeners run an accept
loop on a daemon thread and hand each connection to the space's
``on_connect`` callback.  ``tcp://host:0`` binds an ephemeral port and
reports the concrete endpoint.

A :class:`SocketChannel` lives in one of two modes.  It starts
*blocking* — sends are serialising ``sendall`` calls, ``recv`` reads
frames with a tiny recv-exact loop — which is what the synchronous
HELLO handshake and the raw-channel tests use.  Once a space's reactor
adopts it (``attach_reactor``), the socket goes *nonblocking*: reads
become selector-driven incremental reassembly on the reactor thread,
and sends try the wire directly from the calling thread, parking any
unsent remainder in the cork for the reactor to flush on writable
events (backpressure never blocks a caller).
"""

from __future__ import annotations

import socket
import struct
import threading
from typing import Optional

from repro.errors import CommFailure
from repro.transport.base import (
    Listener,
    OnConnect,
    SelectableChannel,
    Transport,
    split_endpoint,
)
from repro.wire.framing import FrameAssembler, MAX_FRAME_SIZE, pack_frame

_LEN_STRUCT = struct.Struct("!I")


class SocketChannel(SelectableChannel):
    """A connected TCP socket carrying length-prefixed frames."""
    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._recv_lock = threading.Lock()
        self._closed = threading.Event()
        # Send coalescing ("cork") state; see ``_sendall``.  In reactor
        # mode the cork doubles as the nonblocking write backlog and
        # ``_drained`` gates ``flush``.
        self._cork_lock = threading.Lock()
        self._cork = bytearray()
        self._sender_active = False
        self._drained = threading.Event()
        self._drained.set()
        # Reactor adoption state (``attach_reactor``).
        self._reactor = None
        self._sink = None
        self._assembler: Optional[FrameAssembler] = None
        self._eof_delivered = False
        # Reused for every frame header; only touched under _recv_lock.
        self._header = bytearray(_LEN_STRUCT.size)
        self._header_view = memoryview(self._header)
        # Statistics (benchmarks): frames that rode another thread's
        # sendall, and the flushes that carried them.
        self.frames_coalesced = 0
        self.coalesced_flushes = 0
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def send(self, payload) -> None:
        self._sendall(pack_frame(payload))

    def send_framed(self, frame: bytearray) -> None:
        # The buffer already carries its patched header: one sendall,
        # no concatenation, no intermediate bytes object.
        self._sendall(frame)

    def _sendall(self, frame) -> None:
        """Write one frame, coalescing under contention.

        Opportunistic corking: while some thread is inside ``sendall``
        (the *active sender*), other senders append their frames to the
        cork buffer and return immediately — the active sender flushes
        the accumulated cork in one ``sendall`` per pass before giving
        the role up.  Pipelined bursts thus collapse many small frames
        into few syscalls, while an uncontended send stays the plain
        zero-copy ``sendall`` it always was, with errors raised in the
        sending thread.  Invariant: ``_sender_active`` is only cleared
        when the cork is empty (both under ``_cork_lock``), so corked
        frames can never be stranded and per-thread frame order is
        preserved.  A corked frame whose carrying ``sendall`` fails is
        reported to *its* sender only through the channel closing —
        the connection teardown fails every pending call anyway.

        In reactor mode the same cork is the nonblocking write
        backlog: the caller tries one direct ``send`` when the cork is
        empty, and whatever the kernel refuses is appended for the
        reactor to flush on writable events (``handle_writable``).
        """
        if self._reactor is not None:
            return self._send_nonblocking(frame)
        cork_lock = self._cork_lock
        with cork_lock:
            if self._sender_active:
                # Copy, not alias: callers recycle their frame buffers
                # the moment this returns.
                self._cork += frame
                self.frames_coalesced += 1
                return
            self._sender_active = True
        try:
            self._sock.sendall(frame)
            while True:
                with cork_lock:
                    if not self._cork:
                        self._sender_active = False
                        return
                    flush = self._cork
                    self._cork = bytearray()
                self.coalesced_flushes += 1
                self._sock.sendall(flush)
        except OSError as exc:
            with cork_lock:
                self._sender_active = False
                self._cork.clear()
            self.close()
            raise CommFailure(f"send failed: {exc}") from exc

    def _send_nonblocking(self, frame) -> None:
        """Reactor-mode send: never blocks the calling thread.

        The cork doubles as the write backlog toward a peer that is
        not reading; ``write_backlog_limit`` caps it.  A send that
        would grow the backlog past the cap disconnects the slow
        consumer instead of buffering without bound.
        """
        limit = self.write_backlog_limit
        with self._cork_lock:
            if self._closed.is_set():
                raise CommFailure("channel is closed")
            overflow = False
            if self._cork:
                if limit is not None and len(self._cork) + len(frame) > limit:
                    self._abort_cork_locked()
                    overflow = True
                else:
                    # Order: everything already corked goes first.
                    self._cork += frame
                    self.frames_coalesced += 1
                    return
            else:
                try:
                    sent = self._sock.send(frame)
                except (BlockingIOError, InterruptedError):
                    sent = 0
                except OSError as exc:
                    self._abort_cork_locked()
                    raise CommFailure(f"send failed: {exc}") from exc
                if sent == len(frame):
                    return
                # Copy the unsent tail: the caller recycles its buffer.
                self._cork += memoryview(frame)[sent:]
                self._drained.clear()
        if overflow:
            hook = self.on_backlog_overflow
            if hook is not None:
                hook()
            self.close()
            raise CommFailure(
                f"write backlog exceeded {limit} bytes (peer not reading)"
            )
        self._reactor.request_write(self)

    def _abort_cork_locked(self) -> None:
        """Send-path failure cleanup (cork lock held): drop the
        backlog and release flush waiters before closing."""
        self._cork.clear()
        self._drained.set()

    # -- reactor protocol (see transport.base.SelectableChannel) -------------

    def fileno(self) -> int:
        return self._sock.fileno()

    def attach_reactor(self, reactor, sink) -> None:
        self._reactor = reactor
        self._sink = sink
        self._assembler = FrameAssembler()
        self._sock.setblocking(False)

    def wants_write(self) -> bool:
        with self._cork_lock:
            return bool(self._cork)

    def handle_writable(self) -> bool:
        """Reactor thread: push corked bytes; True while more remain."""
        with self._cork_lock:
            if not self._cork:
                self._drained.set()
                return False
            try:
                sent = self._sock.send(self._cork)
            except (BlockingIOError, InterruptedError):
                return True
            except OSError:
                # The read side will observe the failure and tear the
                # connection down; just stop asking for write events.
                self._abort_cork_locked()
                return False
            del self._cork[:sent]
            if self._cork:
                return True
            self.coalesced_flushes += 1
            self._drained.set()
            return False

    def handle_readable(self) -> None:
        """Reactor thread: drain the socket through the resumable
        framing state machine, delivering each complete frame."""
        sink = self._sink
        assembler = self._assembler
        while True:
            try:
                count = self._sock.recv_into(assembler.next_buffer())
            except (BlockingIOError, InterruptedError):
                return
            except OSError as exc:
                if self._closed.is_set():
                    self._deliver_eof(None)
                else:
                    self._deliver_eof(CommFailure(f"recv failed: {exc}"))
                return
            if count == 0:
                if assembler.mid_frame and not self._closed.is_set():
                    self._deliver_eof(
                        CommFailure("connection closed mid-frame")
                    )
                else:
                    self._deliver_eof(None)
                return
            try:
                payload = assembler.advance(count)
            except Exception as exc:  # oversized frame: drop connection
                self._deliver_eof(
                    CommFailure(f"invalid frame from peer: {exc}")
                )
                return
            if payload is not None:
                self._reactor.frames_in += 1
                sink.on_frame(payload)

    def _deliver_eof(self, failure: Optional[Exception]) -> None:
        if self._eof_delivered:
            return
        self._eof_delivered = True
        self._sink.on_closed(failure)

    # -- orderly shutdown ------------------------------------------------------

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Wait for the cork/backlog to reach the kernel."""
        if self._reactor is None:
            # Blocking mode: _sendall returns only once bytes are
            # written, so there is never a backlog to wait on.
            return True
        return self._drained.wait(timeout)

    def half_close(self) -> None:
        """Signal end-of-stream; keep receiving the peer's last words."""
        try:
            self._sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass

    def recv(self, timeout: Optional[float] = None) -> Optional[bytes]:
        with self._recv_lock:
            try:
                self._sock.settimeout(timeout)
                if not self._recv_into(self._header_view, allow_eof=True):
                    return None
                (length,) = _LEN_STRUCT.unpack(self._header)
                if length > MAX_FRAME_SIZE:
                    raise CommFailure(f"oversized frame announced ({length})")
                if length == 0:
                    return b""
                # The frame's only payload-sized allocation: the buffer
                # the payload lands in, filled in place by recv_into and
                # decoded through memoryview slices from then on.
                payload = bytearray(length)
                self._recv_into(memoryview(payload), allow_eof=False)
                return payload
            except socket.timeout as exc:
                raise CommFailure("recv timed out") from exc
            except OSError as exc:
                if self._closed.is_set():
                    return None
                raise CommFailure(f"recv failed: {exc}") from exc

    def _recv_into(self, view: memoryview, allow_eof: bool) -> bool:
        """Fill ``view`` exactly from the socket; False on clean EOF
        before the first byte (only when ``allow_eof``)."""
        total = len(view)
        while view:
            count = self._sock.recv_into(view)
            if count == 0:
                if allow_eof and len(view) == total:
                    return False
                raise CommFailure("connection closed mid-frame")
            view = view[count:]
        return True

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        with self._cork_lock:
            self._abort_cork_locked()
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        reactor = self._reactor
        if reactor is not None:
            # Defer the descriptor's release until the reactor has
            # dropped its registration: closing first would let the
            # kernel recycle the fd under the selector's feet.  The
            # shutdown above already woke the reactor with EOF.
            if reactor.forget(self, and_then=self._sock.close):
                return
        self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()


class _TcpListener(Listener):
    """One endpoint, one *or several* accept sockets.

    With ``SO_REUSEPORT`` every socket binds the same port and the
    kernel spreads incoming connections across them (hashing the
    4-tuple), so accepts never funnel through a single accept queue —
    the listener-side twin of the reactor-pool sharding.  Each socket
    gets its own accept thread; ``shards`` reports how many.
    """

    def __init__(self, socks: "list[socket.socket]", on_connect: OnConnect):
        self._socks = socks
        self._on_connect = on_connect
        self._closed = threading.Event()
        host, port = socks[0].getsockname()[:2]
        self.endpoint = f"tcp://{host}:{port}"
        self.shards = len(socks)
        self._threads = [
            threading.Thread(
                target=self._accept_loop, args=(sock,),
                name=f"tcp-accept-{port}.{index}", daemon=True,
            )
            for index, sock in enumerate(socks)
        ]
        for thread in self._threads:
            thread.start()

    def _accept_loop(self, listen_sock: socket.socket) -> None:
        while not self._closed.is_set():
            try:
                sock, _addr = listen_sock.accept()
            except OSError:
                return  # listener closed
            channel = SocketChannel(sock)
            threading.Thread(
                target=self._on_connect,
                args=(channel,),
                name="tcp-on-connect",
                daemon=True,
            ).start()

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        for sock in self._socks:
            try:
                # close() alone does not wake a thread blocked in
                # accept(); shutdown does, so the accept loops exit
                # promptly instead of lingering until process death.
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        me = threading.current_thread()
        for thread in self._threads:
            if thread is not me:
                thread.join(timeout=5.0)


class TcpTransport(Transport):
    """Listener/dialer factory for ``tcp://host:port`` endpoints.

    ``listener_shards > 1`` asks for that many ``SO_REUSEPORT`` accept
    sockets per listen call.  Platforms without the option (or kernels
    that refuse the second bind) fall back to a single shared socket;
    everything above the accept path is identical either way.
    """
    scheme = "tcp"

    def __init__(self, connect_timeout: float = 10.0,
                 listener_shards: int = 1):
        self.connect_timeout = connect_timeout
        self.listener_shards = max(1, listener_shards)

    def listen(self, endpoint: str, on_connect: OnConnect) -> Listener:
        host, port = self._parse(endpoint)
        first = self._bind(host, port, reuseport=self.listener_shards > 1)
        socks = [first]
        if self.listener_shards > 1:
            # The first socket resolved an ephemeral port request; the
            # siblings bind the concrete port it landed on.
            concrete = first.getsockname()[1]
            for _ in range(self.listener_shards - 1):
                try:
                    socks.append(self._bind(host, concrete, reuseport=True))
                except CommFailure:
                    # Kernel refused the extra bind (no effective
                    # REUSEPORT support): run with what we have.
                    break
        return _TcpListener(socks, on_connect)

    def _bind(self, host: str, port: int, reuseport: bool) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuseport:
            reuseport_option = getattr(socket, "SO_REUSEPORT", None)
            if reuseport_option is None:
                if port == 0:
                    # No REUSEPORT on this platform: shard 0 proceeds
                    # alone (caller's retry loop stops at the first
                    # sibling failure below).
                    reuseport = False
                else:
                    sock.close()
                    raise CommFailure("SO_REUSEPORT unavailable")
            else:
                try:
                    sock.setsockopt(socket.SOL_SOCKET, reuseport_option, 1)
                except OSError as exc:
                    sock.close()
                    if port == 0:
                        return self._bind(host, port, reuseport=False)
                    raise CommFailure(f"SO_REUSEPORT refused: {exc}") from exc
        try:
            sock.bind((host, port))
            sock.listen(128)
        except OSError as exc:
            sock.close()
            raise CommFailure(
                f"cannot listen on tcp://{host}:{port}: {exc}"
            ) from exc
        return sock

    def connect(self, endpoint: str) -> Channel:
        host, port = self._parse(endpoint)
        try:
            sock = socket.create_connection((host, port), self.connect_timeout)
        except OSError as exc:
            raise CommFailure(f"cannot connect to {endpoint!r}: {exc}") from exc
        return SocketChannel(sock)

    @staticmethod
    def _parse(endpoint: str) -> "tuple[str, int]":
        scheme, rest = split_endpoint(endpoint)
        if scheme != "tcp":
            raise CommFailure(f"not a tcp endpoint: {endpoint!r}")
        host, sep, port_text = rest.rpartition(":")
        if not sep:
            raise CommFailure(f"tcp endpoint needs host:port, got {endpoint!r}")
        try:
            port = int(port_text)
        except ValueError as exc:
            raise CommFailure(f"bad port in {endpoint!r}") from exc
        return host or "127.0.0.1", port
