"""The TCP transport: real sockets, length-prefixed frames.

This is the paper's deployment transport.  Listeners run an accept
loop on a daemon thread and hand each connection to the space's
``on_connect`` callback; channels serialise sends under a lock and
read frames with a tiny ``recv``-exact loop.  ``tcp://host:0`` binds
an ephemeral port and reports the concrete endpoint.
"""

from __future__ import annotations

import socket
import struct
import threading
from typing import Optional

from repro.errors import CommFailure
from repro.transport.base import Channel, Listener, OnConnect, Transport, split_endpoint
from repro.wire.framing import MAX_FRAME_SIZE, pack_frame

_LEN_STRUCT = struct.Struct("!I")


class SocketChannel(Channel):
    """A connected TCP socket carrying length-prefixed frames."""
    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._recv_lock = threading.Lock()
        self._closed = threading.Event()
        # Send coalescing ("cork") state; see ``_sendall``.
        self._cork_lock = threading.Lock()
        self._cork = bytearray()
        self._sender_active = False
        # Reused for every frame header; only touched under _recv_lock.
        self._header = bytearray(_LEN_STRUCT.size)
        self._header_view = memoryview(self._header)
        # Statistics (benchmarks): frames that rode another thread's
        # sendall, and the flushes that carried them.
        self.frames_coalesced = 0
        self.coalesced_flushes = 0
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def send(self, payload) -> None:
        self._sendall(pack_frame(payload))

    def send_framed(self, frame: bytearray) -> None:
        # The buffer already carries its patched header: one sendall,
        # no concatenation, no intermediate bytes object.
        self._sendall(frame)

    def _sendall(self, frame) -> None:
        """Write one frame, coalescing under contention.

        Opportunistic corking: while some thread is inside ``sendall``
        (the *active sender*), other senders append their frames to the
        cork buffer and return immediately — the active sender flushes
        the accumulated cork in one ``sendall`` per pass before giving
        the role up.  Pipelined bursts thus collapse many small frames
        into few syscalls, while an uncontended send stays the plain
        zero-copy ``sendall`` it always was, with errors raised in the
        sending thread.  Invariant: ``_sender_active`` is only cleared
        when the cork is empty (both under ``_cork_lock``), so corked
        frames can never be stranded and per-thread frame order is
        preserved.  A corked frame whose carrying ``sendall`` fails is
        reported to *its* sender only through the channel closing —
        the connection teardown fails every pending call anyway.
        """
        cork_lock = self._cork_lock
        with cork_lock:
            if self._sender_active:
                # Copy, not alias: callers recycle their frame buffers
                # the moment this returns.
                self._cork += frame
                self.frames_coalesced += 1
                return
            self._sender_active = True
        try:
            self._sock.sendall(frame)
            while True:
                with cork_lock:
                    if not self._cork:
                        self._sender_active = False
                        return
                    flush = self._cork
                    self._cork = bytearray()
                self.coalesced_flushes += 1
                self._sock.sendall(flush)
        except OSError as exc:
            with cork_lock:
                self._sender_active = False
                self._cork.clear()
            self.close()
            raise CommFailure(f"send failed: {exc}") from exc

    def recv(self, timeout: Optional[float] = None) -> Optional[bytes]:
        with self._recv_lock:
            try:
                self._sock.settimeout(timeout)
                if not self._recv_into(self._header_view, allow_eof=True):
                    return None
                (length,) = _LEN_STRUCT.unpack(self._header)
                if length > MAX_FRAME_SIZE:
                    raise CommFailure(f"oversized frame announced ({length})")
                if length == 0:
                    return b""
                # The frame's only payload-sized allocation: the buffer
                # the payload lands in, filled in place by recv_into and
                # decoded through memoryview slices from then on.
                payload = bytearray(length)
                self._recv_into(memoryview(payload), allow_eof=False)
                return payload
            except socket.timeout as exc:
                raise CommFailure("recv timed out") from exc
            except OSError as exc:
                if self._closed.is_set():
                    return None
                raise CommFailure(f"recv failed: {exc}") from exc

    def _recv_into(self, view: memoryview, allow_eof: bool) -> bool:
        """Fill ``view`` exactly from the socket; False on clean EOF
        before the first byte (only when ``allow_eof``)."""
        total = len(view)
        while view:
            count = self._sock.recv_into(view)
            if count == 0:
                if allow_eof and len(view) == total:
                    return False
                raise CommFailure("connection closed mid-frame")
            view = view[count:]
        return True

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()


class _TcpListener(Listener):
    def __init__(self, sock: socket.socket, on_connect: OnConnect):
        self._sock = sock
        self._on_connect = on_connect
        self._closed = threading.Event()
        host, port = sock.getsockname()[:2]
        self.endpoint = f"tcp://{host}:{port}"
        self._thread = threading.Thread(
            target=self._accept_loop, name=f"tcp-accept-{port}", daemon=True
        )
        self._thread.start()

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                sock, _addr = self._sock.accept()
            except OSError:
                return  # listener closed
            channel = SocketChannel(sock)
            threading.Thread(
                target=self._on_connect,
                args=(channel,),
                name="tcp-on-connect",
                daemon=True,
            ).start()

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            self._sock.close()
        except OSError:
            pass


class TcpTransport(Transport):
    """Listener/dialer factory for ``tcp://host:port`` endpoints."""
    scheme = "tcp"

    def __init__(self, connect_timeout: float = 10.0):
        self.connect_timeout = connect_timeout

    def listen(self, endpoint: str, on_connect: OnConnect) -> Listener:
        host, port = self._parse(endpoint)
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            sock.bind((host, port))
            sock.listen(128)
        except OSError as exc:
            sock.close()
            raise CommFailure(f"cannot listen on {endpoint!r}: {exc}") from exc
        return _TcpListener(sock, on_connect)

    def connect(self, endpoint: str) -> Channel:
        host, port = self._parse(endpoint)
        try:
            sock = socket.create_connection((host, port), self.connect_timeout)
        except OSError as exc:
            raise CommFailure(f"cannot connect to {endpoint!r}: {exc}") from exc
        return SocketChannel(sock)

    @staticmethod
    def _parse(endpoint: str) -> "tuple[str, int]":
        scheme, rest = split_endpoint(endpoint)
        if scheme != "tcp":
            raise CommFailure(f"not a tcp endpoint: {endpoint!r}")
        host, sep, port_text = rest.rpartition(":")
        if not sep:
            raise CommFailure(f"tcp endpoint needs host:port, got {endpoint!r}")
        try:
            port = int(port_text)
        except ValueError as exc:
            raise CommFailure(f"bad port in {endpoint!r}") from exc
        return host or "127.0.0.1", port
