"""Shared-memory ring transport for same-machine spaces.

Two spaces on one machine still paid the full loopback-TCP toll per
frame: kernel socket buffers, two copies, packetisation.  This module
moves the bytes through a pair of single-producer/single-consumer ring
buffers in a shared ``mmap`` instead, and keeps only a tiny Unix-domain
socket as rendezvous and *doorbell* — a one-byte nudge that makes the
peer's reactor look at the ring.  The wire format is exactly the TCP
one (4-byte length prefix, then payload; see ``repro.wire.framing``),
so handshake, RPC, and DGC traffic ride the channel unchanged.

Layout of the mapped file (one per channel, created by the dialer and
unlinked the moment the listener has mapped it, so a dying process
leaks no files)::

    0    magic "RSHM" + version          8 bytes
    8    ring capacity (uint64)          8 bytes
    64   ring 0 header: tail / head / need_space   (dialer -> listener)
    128  ring 1 header: tail / head / need_space   (listener -> dialer)
    192  ring 0 data [capacity bytes]
    ...  ring 1 data [capacity bytes]

``tail`` (producer cursor) and ``head`` (consumer cursor) are
monotonically increasing uint64 byte counts; ``used = tail - head``,
position in the buffer is ``cursor % capacity``.  Each cursor has
exactly one writer, and an 8-byte aligned store is a single machine
word on every platform CPython runs on — with the doorbell's
send/recv syscall pair as the cross-process memory barrier, the peer
never observes a cursor before the bytes it covers.

Doorbell protocol (bytes on the UDS):

* ``\\x01`` — "I produced into my ring (or corked with ``need_space``
  set): look."  Rung after every send; the receiving side drains its
  consumer ring completely per wakeup, so a spurious ring is a no-op.
* ``\\x02`` — "I consumed and your ``need_space`` flag was set: there
  is room again."  The producer flushes its cork on receipt.

End-of-stream is the UDS closing.  The survivor drains its consumer
ring *before* delivering EOF — frames already in shared memory are
not lost — and reports :class:`~repro.errors.CommFailure` if the
stream dies mid-frame (``FrameAssembler.mid_frame``), mirroring the
TCP channel's truncation semantics.
"""

from __future__ import annotations

import errno
import mmap
import os
import socket
import struct
import tempfile
import threading
import time
from typing import Optional

from repro.errors import CommFailure
from repro.transport.base import (
    Listener,
    OnConnect,
    SelectableChannel,
    Transport,
    split_endpoint,
)
from repro.wire.framing import FrameAssembler, pack_frame

_MAGIC = b"RSHM\x01\x00\x00\x00"
_U64 = struct.Struct("<Q")

_HEADER_SIZE = 64          # file header (magic + capacity, padded)
_RING_HEADER = 64          # per-ring header (tail/head/flag, padded)
_TAIL_OFF = 0
_HEAD_OFF = 8
_FLAG_OFF = 16

#: Default ring capacity per direction.  Large enough that a pipelined
#: burst of small frames never blocks; two of these per channel.
DEFAULT_CAPACITY = 1 << 20

_DATA_BELL = b"\x01"
_SPACE_BELL = b"\x02"

_SETUP_PREFIX = b"REPRO-SHM1 "


def rendezvous_path(port: int) -> str:
    """Where a space listening on TCP ``port`` parks its shm doorbell
    socket.  Deriving the path from the port is what lets a dialer
    holding only ``tcp://127.0.0.1:port`` discover the shm side door."""
    return os.path.join(tempfile.gettempdir(), f"repro-shm-{port}.sock")


def _file_size(capacity: int) -> int:
    return _HEADER_SIZE + 2 * _RING_HEADER + 2 * capacity


class _Ring:
    """One direction of the channel: a SPSC byte ring over the map.

    Exactly one process calls :meth:`produce`, the other :meth:`consume`
    — the cursor discipline in the module docstring depends on it.
    """

    __slots__ = ("_map", "_mv", "_header", "_data", "_capacity")

    def __init__(self, map_: mmap.mmap, mv: memoryview, header: int,
                 data: int, capacity: int):
        self._map = map_
        # Slicing an mmap materialises bytes; slicing a memoryview of
        # it does not — payload copies below go through ``_mv`` so each
        # byte crosses the ring exactly once per direction.
        self._mv = mv
        self._header = header
        self._data = data
        self._capacity = capacity

    # Cursor accessors: single-word loads/stores on the mapping.
    def _tail(self) -> int:
        return _U64.unpack_from(self._map, self._header + _TAIL_OFF)[0]

    def _head(self) -> int:
        return _U64.unpack_from(self._map, self._header + _HEAD_OFF)[0]

    def _set_tail(self, value: int) -> None:
        _U64.pack_into(self._map, self._header + _TAIL_OFF, value)

    def _set_head(self, value: int) -> None:
        _U64.pack_into(self._map, self._header + _HEAD_OFF, value)

    @property
    def need_space(self) -> bool:
        return self._map[self._header + _FLAG_OFF] != 0

    @need_space.setter
    def need_space(self, value: bool) -> None:
        self._map[self._header + _FLAG_OFF] = 1 if value else 0

    def free(self) -> int:
        return self._capacity - (self._tail() - self._head())

    def used(self) -> int:
        return self._tail() - self._head()

    def produce(self, data) -> int:
        """Copy as much of ``data`` into the ring as fits; return the
        byte count (0 when full)."""
        view = memoryview(data)
        tail = self._tail()
        count = min(len(view), self._capacity - (tail - self._head()))
        if count == 0:
            return 0
        pos = tail % self._capacity
        first = min(count, self._capacity - pos)
        base = self._data
        self._mv[base + pos:base + pos + first] = view[:first]
        if first < count:
            self._mv[base:base + count - first] = view[first:count]
        # Publish after the payload bytes are in place.
        self._set_tail(tail + count)
        return count

    def consume_into(self, view: memoryview) -> int:
        """Fill ``view`` from the ring; return bytes copied (0 when
        empty)."""
        head = self._head()
        count = min(len(view), self._tail() - head)
        if count == 0:
            return 0
        pos = head % self._capacity
        first = min(count, self._capacity - pos)
        base = self._data
        view[:first] = self._mv[base + pos:base + pos + first]
        if first < count:
            view[first:count] = self._mv[base:base + count - first]
        self._set_head(head + count)
        return count


class ShmChannel(SelectableChannel):
    """A same-machine channel: frames through shared memory, wakeups
    through a Unix-domain doorbell socket.

    The doorbell descriptor is what the reactor selects on
    (:meth:`fileno`), so a :class:`~repro.transport.reactor.Reactor`
    owns shm channels exactly like sockets.  ``wants_write`` is always
    False — backpressure flushing is driven by the peer's ``\\x02``
    doorbell arriving as a *readable* event, never by writability of
    the UDS.
    """

    def __init__(self, bell: socket.socket, map_: mmap.mmap,
                 capacity: int, dialer: bool):
        self._bell = bell
        self._map = map_
        self._map_view = memoryview(map_)
        ring0 = _Ring(map_, self._map_view, _HEADER_SIZE,
                      _HEADER_SIZE + 2 * _RING_HEADER, capacity)
        ring1 = _Ring(map_, self._map_view, _HEADER_SIZE + _RING_HEADER,
                      _HEADER_SIZE + 2 * _RING_HEADER + capacity, capacity)
        # Ring 0 always flows dialer -> listener.
        self._out, self._in = (ring0, ring1) if dialer else (ring1, ring0)
        self._recv_lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._closed = threading.Event()
        self._eof = False
        # Reactor adoption state (mirrors SocketChannel).
        self._reactor = None
        self._sink = None
        self._assembler = FrameAssembler()
        self._eof_delivered = False
        self._cork = bytearray()
        self._drained = threading.Event()
        self._drained.set()
        bell.setblocking(True)

    # -- sending ---------------------------------------------------------------

    def send(self, payload) -> None:
        self._sendall(pack_frame(payload))

    def send_framed(self, frame: bytearray) -> None:
        self._sendall(frame)

    def _sendall(self, frame) -> None:
        if self._reactor is not None:
            return self._send_nonblocking(frame)
        with self._send_lock:
            if self._closed.is_set():
                raise CommFailure("channel is closed")
            view = memoryview(frame)
            while view:
                wrote = self._out.produce(view)
                if wrote:
                    view = view[wrote:]
                    self._ring_bell(_DATA_BELL)
                elif self._closed.is_set() or self._eof:
                    raise CommFailure("peer closed while sending")
                else:
                    # Blocking mode only carries the handshake; a full
                    # ring here means the peer is slow, not wedged —
                    # poll briefly rather than entangling the doorbell
                    # with a concurrent blocking recv.
                    time.sleep(0.0005)

    def _send_nonblocking(self, frame) -> None:
        """Reactor-mode send: never blocks the caller; whatever does
        not fit in the ring is corked for the ``\\x02`` doorbell.
        ``write_backlog_limit`` caps the cork — a peer that stops
        draining its ring is disconnected, not buffered for."""
        limit = self.write_backlog_limit
        with self._send_lock:
            if self._closed.is_set():
                raise CommFailure("channel is closed")
            if self._cork:
                if limit is not None and len(self._cork) + len(frame) > limit:
                    self._cork.clear()
                    self._drained.set()
                else:
                    self._cork += frame
                    self._ring_bell(_DATA_BELL)
                    return
            else:
                view = memoryview(frame)
                wrote = self._out.produce(view)
                if wrote < len(view):
                    # Copy the tail: the caller recycles its buffer.
                    self._cork += view[wrote:]
                    self._out.need_space = True
                    self._drained.clear()
                self._ring_bell(_DATA_BELL)
                return
        hook = self.on_backlog_overflow
        if hook is not None:
            hook()
        self.close()
        raise CommFailure(
            f"write backlog exceeded {limit} bytes (peer not draining)"
        )

    def _flush_cork(self) -> None:
        """Reactor thread (``\\x02`` received): push corked bytes."""
        rang = False
        with self._send_lock:
            if self._cork:
                wrote = self._out.produce(self._cork)
                if wrote:
                    del self._cork[:wrote]
                    rang = True
                if self._cork:
                    self._out.need_space = True
                else:
                    self._drained.set()
        if rang:
            self._ring_bell(_DATA_BELL)

    def _ring_bell(self, which: bytes) -> None:
        """Nudge the peer.  Nonblocking and lossy-on-backlog by design:
        if the doorbell socket's buffer is full, kilobytes of unread
        bells already guarantee the peer will wake."""
        try:
            self._bell.send(which, socket.MSG_DONTWAIT)
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            pass  # peer gone; EOF surfaces through the read path

    # -- reactor protocol ------------------------------------------------------

    def fileno(self) -> int:
        return self._bell.fileno()

    def attach_reactor(self, reactor, sink) -> None:
        self._reactor = reactor
        self._sink = sink
        self._bell.setblocking(False)

    def wants_write(self) -> bool:
        return False

    def handle_writable(self) -> bool:
        return False

    def handle_readable(self) -> None:
        """Reactor thread: swallow doorbell bytes, then drain the
        consumer ring through the frame assembler."""
        sink = self._sink
        while True:
            try:
                bells = self._bell.recv(512)
            except (BlockingIOError, InterruptedError):
                return
            except OSError as exc:
                self._drain_ring(sink)
                if self._closed.is_set():
                    self._deliver_eof(None)
                else:
                    self._deliver_eof(CommFailure(f"doorbell failed: {exc}"))
                return
            if not bells:
                # Peer closed.  Frames already in shared memory are
                # still good — drain before pronouncing EOF.
                self._eof = True
                self._drain_ring(sink)
                if self._assembler.mid_frame and not self._closed.is_set():
                    self._deliver_eof(
                        CommFailure("peer died mid-frame over shm")
                    )
                else:
                    self._deliver_eof(None)
                return
            if _SPACE_BELL[0] in bells:
                self._flush_cork()
            self._drain_ring(sink)

    def _drain_ring(self, sink) -> None:
        assembler = self._assembler
        while True:
            try:
                count = self._in.consume_into(assembler.next_buffer())
            except ValueError:
                # close() raced this drain and released the mapping on
                # another thread (reactor already stopping, so forget()
                # could not defer the release to us).  The connection
                # is going away either way — stop reading.
                return
            if count == 0:
                break
            payload = assembler.advance(count)
            if payload is not None:
                if self._reactor is not None:
                    self._reactor.frames_in += 1
                sink.on_frame(payload)
        # The drain leaves the ring empty, so a blocked peer producer
        # can always make progress now.
        if self._in.need_space:
            self._in.need_space = False
            self._ring_bell(_SPACE_BELL)

    def _deliver_eof(self, failure: Optional[Exception]) -> None:
        if self._eof_delivered:
            return
        self._eof_delivered = True
        self._sink.on_closed(failure)

    # -- blocking mode (handshake / raw-channel use) ---------------------------

    def recv(self, timeout: Optional[float] = None) -> Optional[bytes]:
        with self._recv_lock:
            while True:
                frame = self._next_frame_blocking()
                if frame is not None:
                    return frame
                if self._eof:
                    if self._assembler.mid_frame:
                        raise CommFailure("peer died mid-frame over shm")
                    return None
                try:
                    self._bell.settimeout(timeout)
                    bells = self._bell.recv(512)
                except socket.timeout as exc:
                    raise CommFailure("recv timed out") from exc
                except OSError as exc:
                    if self._closed.is_set():
                        self._eof = True
                        continue
                    raise CommFailure(f"recv failed: {exc}") from exc
                if not bells:
                    self._eof = True
                # ``\x02`` bells are irrelevant here: blocking sends
                # poll for space rather than corking.

    def _next_frame_blocking(self) -> Optional[bytearray]:
        assembler = self._assembler
        while True:
            count = self._in.consume_into(assembler.next_buffer())
            if count == 0:
                if self._in.need_space:
                    self._in.need_space = False
                    self._ring_bell(_SPACE_BELL)
                return None
            payload = assembler.advance(count)
            if payload is not None:
                if self._in.need_space:
                    self._in.need_space = False
                    self._ring_bell(_SPACE_BELL)
                return payload

    # -- orderly shutdown ------------------------------------------------------

    def flush(self, timeout: Optional[float] = None) -> bool:
        if self._reactor is None:
            return True
        return self._drained.wait(timeout)

    def half_close(self) -> None:
        try:
            self._bell.shutdown(socket.SHUT_WR)
        except OSError:
            pass

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        with self._send_lock:
            self._cork.clear()
            self._drained.set()
        try:
            self._bell.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        reactor = self._reactor
        if reactor is not None:
            # As with sockets: the descriptor (and the mapping the
            # selector-driven drain still reads) outlives the
            # registration, not the other way around.
            if reactor.forget(self, and_then=self._release):
                return
        self._release()

    def _release(self) -> None:
        try:
            self._bell.close()
        except OSError:
            pass
        try:
            self._map_view.release()
        except (BufferError, ValueError):
            pass  # a sliced payload view still pins it; see below
        try:
            self._map.close()
        except (BufferError, ValueError):
            # An exported payload view pins the map briefly; the map
            # goes away with the process either way.
            pass

    @property
    def closed(self) -> bool:
        return self._closed.is_set()


def _recv_line(sock: socket.socket, limit: int = 512) -> bytes:
    chunks = bytearray()
    while not chunks.endswith(b"\n"):
        if len(chunks) > limit:
            raise CommFailure("oversized shm setup line")
        byte = sock.recv(1)
        if not byte:
            raise CommFailure("peer closed during shm setup")
        chunks += byte
    return bytes(chunks[:-1])


class _ShmListener(Listener):
    def __init__(self, path: str, on_connect: OnConnect):
        self._path = path
        self._on_connect = on_connect
        self._closed = threading.Event()
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.bind(path)
        except OSError as exc:
            if exc.errno != errno.EADDRINUSE:
                sock.close()
                raise
            # A previous process may have died without unlinking.  If
            # nobody answers the socket it is stale: reclaim it.
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.settimeout(0.2)
                probe.connect(path)
            except OSError:
                probe.close()
                try:
                    os.unlink(path)
                except OSError:
                    pass
                sock.bind(path)
            else:
                probe.close()
                sock.close()
                raise CommFailure(
                    f"shm rendezvous {path!r} already in use"
                ) from exc
        sock.listen(16)
        self._sock = sock
        self.endpoint = f"shm://{path}"
        self._thread = threading.Thread(
            target=self._accept_loop, name=f"shm-accept-{os.path.basename(path)}",
            daemon=True,
        )
        self._thread.start()

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                sock, _addr = self._sock.accept()
            except OSError:
                return
            threading.Thread(
                target=self._setup, args=(sock,),
                name="shm-on-connect", daemon=True,
            ).start()

    def _setup(self, sock: socket.socket) -> None:
        """Accept side of the rendezvous: map the dialer's file, ack,
        hand the channel up."""
        try:
            sock.settimeout(10.0)
            line = _recv_line(sock)
            if not line.startswith(_SETUP_PREFIX):
                raise CommFailure(f"bad shm setup line: {line!r}")
            _tag, path_text, capacity_text = line.split(b" ")
            capacity = int(capacity_text)
            with open(path_text.decode(), "r+b") as backing:
                map_ = mmap.mmap(backing.fileno(), _file_size(capacity))
            if bytes(map_[:8]) != _MAGIC:
                map_.close()
                raise CommFailure("shm segment has wrong magic")
            sock.sendall(b"OK\n")
            sock.settimeout(None)
        except (OSError, ValueError, CommFailure):
            sock.close()
            return
        self._on_connect(ShmChannel(sock, map_, capacity, dialer=False))

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        try:
            os.unlink(self._path)
        except OSError:
            pass
        if threading.current_thread() is not self._thread:
            self._thread.join(timeout=5.0)


class ShmTransport(Transport):
    """Factory for ``shm://<rendezvous-socket-path>`` endpoints."""
    scheme = "shm"

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 connect_timeout: float = 10.0):
        self.capacity = capacity
        self.connect_timeout = connect_timeout

    def listen(self, endpoint: str, on_connect: OnConnect) -> Listener:
        scheme, path = split_endpoint(endpoint)
        if scheme != "shm":
            raise CommFailure(f"not an shm endpoint: {endpoint!r}")
        try:
            return _ShmListener(path, on_connect)
        except OSError as exc:
            raise CommFailure(f"cannot listen on {endpoint!r}: {exc}") from exc

    def connect(self, endpoint: str):
        scheme, path = split_endpoint(endpoint)
        if scheme != "shm":
            raise CommFailure(f"not an shm endpoint: {endpoint!r}")
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.connect_timeout)
        try:
            sock.connect(path)
        except OSError as exc:
            sock.close()
            raise CommFailure(f"cannot connect to {endpoint!r}: {exc}") from exc
        fd, backing_path = tempfile.mkstemp(prefix="repro-shm-seg-")
        map_ = None
        try:
            capacity = self.capacity
            size = _file_size(capacity)
            os.ftruncate(fd, size)
            map_ = mmap.mmap(fd, size)
            map_[:8] = _MAGIC
            _U64.pack_into(map_, 8, capacity)
            sock.sendall(
                _SETUP_PREFIX + backing_path.encode() +
                b" " + str(capacity).encode() + b"\n"
            )
            ack = _recv_line(sock)
            if ack != b"OK":
                raise CommFailure(f"shm setup rejected: {ack!r}")
        except (OSError, CommFailure) as exc:
            sock.close()
            if map_ is not None:
                map_.close()
            raise CommFailure(
                f"shm setup with {endpoint!r} failed: {exc}"
            ) from exc
        finally:
            os.close(fd)
            # Both sides hold the mapping now (or setup failed); either
            # way the name must not outlive this call.
            try:
                os.unlink(backing_path)
            except OSError:
                pass
        sock.settimeout(None)
        return ShmChannel(sock, map_, capacity, dialer=True)
