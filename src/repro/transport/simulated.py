"""The simulated transport: channels over a :class:`SimNetwork`.

All spaces sharing one :class:`SimTransport` instance live on the same
simulated network and therefore share its latency/loss/FIFO model and
its statistics.  Frames traverse the event scheduler; reads block on a
local inbox, so the threaded RPC runtime runs unchanged on top.
"""

from __future__ import annotations

import itertools
import queue
import threading
from typing import Dict, Optional

from repro.errors import CommFailure
from repro.sim.network import NetworkModel, SimNetwork
from repro.sim.scheduler import EventScheduler
from repro.transport.base import Channel, Listener, OnConnect, Transport, split_endpoint

_EOF = object()


class SimChannel(Channel):
    """A channel endpoint whose sends traverse the simulated network."""
    def __init__(self, network: SimNetwork, local: str, remote: str):
        self._network = network
        self._local = local
        self._remote = remote
        self._inbox: "queue.Queue" = queue.Queue()
        self._closed = threading.Event()
        self.peer: Optional["SimChannel"] = None

    def send(self, payload) -> None:
        # Accepts any bytes-like payload; it is queued in the event
        # scheduler as-is, so reusable buffers must arrive through
        # ``send_framed`` (which copies once before queueing).
        peer = self.peer
        if self._closed.is_set() or peer is None or peer._closed.is_set():
            raise CommFailure("simulated channel is closed")
        self._network.send(self._local, self._remote, payload, peer._deliver)

    def _deliver(self, payload: bytes) -> None:
        if not self._closed.is_set():
            self._inbox.put(payload)

    def recv(self, timeout: Optional[float] = None) -> Optional[bytes]:
        if self._closed.is_set():
            return None
        try:
            item = self._inbox.get(timeout=timeout)
        except queue.Empty:
            raise CommFailure("recv timed out") from None
        if item is _EOF:
            return None
        return item

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        self._inbox.put(_EOF)
        peer = self.peer
        if peer is not None and not peer._closed.is_set():
            # Closure notice travels instantaneously: it models the
            # peer's kernel noticing the TCP reset, not a message.
            peer._inbox.put(_EOF)

    @property
    def closed(self) -> bool:
        return self._closed.is_set()


class _SimListener(Listener):
    def __init__(self, transport: "SimTransport", endpoint: str, on_connect: OnConnect):
        self.endpoint = endpoint
        self.on_connect = on_connect
        self._transport = transport

    def close(self) -> None:
        self._transport._unlisten(self.endpoint)


class SimTransport(Transport):
    """One simulated network; create one per experiment."""

    scheme = "sim"

    def __init__(self, model: Optional[NetworkModel] = None,
                 scheduler: Optional[EventScheduler] = None):
        self.scheduler = scheduler if scheduler is not None else EventScheduler()
        self.scheduler.start()
        self.network = SimNetwork(self.scheduler, model)
        self._listeners: Dict[str, _SimListener] = {}
        self._lock = threading.Lock()
        self._conn_ids = itertools.count(1)

    @property
    def clock(self):
        return self.scheduler.clock

    @property
    def stats(self):
        return self.network.stats

    def listen(self, endpoint: str, on_connect: OnConnect) -> Listener:
        scheme, _name = split_endpoint(endpoint)
        if scheme != self.scheme:
            raise CommFailure(f"not a sim endpoint: {endpoint!r}")
        listener = _SimListener(self, endpoint, on_connect)
        with self._lock:
            if endpoint in self._listeners:
                raise CommFailure(f"endpoint already in use: {endpoint!r}")
            self._listeners[endpoint] = listener
        return listener

    def connect(self, endpoint: str) -> Channel:
        with self._lock:
            listener = self._listeners.get(endpoint)
        if listener is None:
            raise CommFailure(f"connection refused: {endpoint!r}")
        conn_id = next(self._conn_ids)
        client_name = f"{endpoint}/client/{conn_id}"
        server_name = f"{endpoint}/server/{conn_id}"
        client_side = SimChannel(self.network, client_name, server_name)
        server_side = SimChannel(self.network, server_name, client_name)
        client_side.peer = server_side
        server_side.peer = client_side
        threading.Thread(
            target=listener.on_connect,
            args=(server_side,),
            name=f"sim-accept-{conn_id}",
            daemon=True,
        ).start()
        return client_side

    def _unlisten(self, endpoint: str) -> None:
        with self._lock:
            self._listeners.pop(endpoint, None)

    def shutdown(self) -> None:
        self.scheduler.stop()
