"""Transport abstractions shared by all implementations."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Optional

from repro.errors import CommFailure
from repro.wire.framing import FRAME_HEADER_SIZE


class Channel(ABC):
    """A bidirectional, frame-oriented connection between two spaces.

    ``send`` either accepts the whole frame for transmission or raises
    :class:`~repro.errors.CommFailure`; frames are never split or
    merged.  Success means *accepted*, not delivered: an
    implementation may coalesce frames queued by concurrent senders
    into one write (see the TCP channel's cork), in which case a
    transmission failure after ``send`` returned surfaces only through
    the channel closing — and, one level up, through connection
    teardown failing every pending call.  Callers of one-way messages
    with no reply must not treat a returned ``send`` as proof of
    delivery.  ``recv`` blocks for the next frame and returns ``None``
    on orderly end-of-stream.  Both directions may be used from
    multiple threads; implementations serialise sends internally.

    Payloads may be any bytes-like object (``bytes``, ``bytearray``,
    ``memoryview``); the hot path hands channels reusable buffers, so
    an implementation that retains a payload past the ``send`` call
    must copy it.
    """

    #: Admission control's cap on buffered unsent output bytes (the
    #: reactor-mode write backlog).  ``None`` = unbounded.  Set by the
    #: owning connection at registration; transports that buffer
    #: output (tcp cork, shm cork) enforce it by aborting the channel
    #: with :class:`~repro.errors.CommFailure` — a peer that will not
    #: read its replies cannot be shed politely.
    write_backlog_limit: Optional[int] = None
    #: Invoked (once, no args) when the backlog cap trips, before the
    #: channel closes — lets admission control count the shed.
    on_backlog_overflow: Optional[Callable[[], None]] = None

    @abstractmethod
    def send(self, payload) -> None: ...

    def send_framed(self, frame: bytearray) -> None:
        """Send a complete frame built in place: 4-byte length header
        (already patched by :func:`repro.wire.framing.finish_frame`)
        followed by the payload.

        The caller may reuse ``frame`` as soon as this returns.  Stream
        transports override this to hand the socket the single buffer;
        the default strips the header and copies the payload out — the
        one payload-sized allocation a datagram-style transport needs
        to decouple the receiver from the sender's buffer reuse.
        """
        self.send(bytes(memoryview(frame)[FRAME_HEADER_SIZE:]))

    @abstractmethod
    def recv(self, timeout: Optional[float] = None) -> Optional[bytes]: ...

    @abstractmethod
    def close(self) -> None: ...

    # -- orderly shutdown ----------------------------------------------------
    #
    # ``flush`` + ``half_close`` let a connection end a conversation
    # without destroying frames still in transit: flush waits for
    # locally buffered output (a nonblocking transport's write backlog)
    # to reach the wire, half_close then signals end-of-stream to the
    # peer while leaving the receive direction open so the peer's final
    # frames — and its answering end-of-stream — still arrive.  The
    # defaults fit unbuffered transports, where ``send`` returning
    # already implies delivery to the peer's inbox and no separate
    # write direction exists to close by itself.

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Wait until locally buffered output has been handed to the
        wire; True on success, False on timeout."""
        return True

    def half_close(self) -> None:
        """Stop sending; keep receiving until the peer closes too."""
        self.close()

    @property
    @abstractmethod
    def closed(self) -> bool: ...


class SelectableChannel(Channel):
    """A channel a :class:`~repro.transport.reactor.Reactor` can own
    directly: it exposes a kernel-pollable file descriptor plus
    nonblocking event hooks, so one selector thread can serve every
    such channel in a space.

    Lifecycle: the reactor calls :meth:`attach_reactor` once (switching
    the descriptor to nonblocking mode), registers :meth:`fileno` for
    readable events, and from then on invokes :meth:`handle_readable` /
    :meth:`handle_writable` **only on the reactor thread**.  The
    channel asks for writable events via ``reactor.request_write`` when
    a nonblocking send leaves a backlog, and reports ``wants_write``
    when polled so the reactor can drop write interest once drained.
    Channels without a real descriptor (queues, the simulated network)
    are instead bridged by :class:`~repro.transport.reactor.ChannelPump`.
    """

    @abstractmethod
    def fileno(self) -> int: ...

    @abstractmethod
    def attach_reactor(self, reactor, sink) -> None:
        """Go nonblocking; deliver decoded frames to ``sink``."""

    @abstractmethod
    def handle_readable(self) -> None:
        """Drain readable bytes, feeding complete frames to the sink;
        reports end-of-stream/errors via ``sink.on_closed``."""

    @abstractmethod
    def handle_writable(self) -> bool:
        """Flush backlog; return True while write interest is still
        needed."""

    @abstractmethod
    def wants_write(self) -> bool: ...


class Listener(ABC):
    """An open listening endpoint; ``endpoint`` is its concrete address
    (e.g. with the ephemeral TCP port filled in)."""

    endpoint: str

    @abstractmethod
    def close(self) -> None: ...


OnConnect = Callable[[Channel], None]


class Transport(ABC):
    """Factory for listeners and outgoing channels of one scheme."""

    scheme: str

    @abstractmethod
    def listen(self, endpoint: str, on_connect: OnConnect) -> Listener: ...

    @abstractmethod
    def connect(self, endpoint: str) -> Channel: ...


class TransportRegistry:
    """Maps endpoint schemes (``tcp``, ``inproc``, ``sim``) to transports."""

    def __init__(self) -> None:
        self._by_scheme: Dict[str, Transport] = {}

    def add(self, transport: Transport) -> None:
        self._by_scheme[transport.scheme] = transport

    def __contains__(self, scheme: str) -> bool:
        return scheme in self._by_scheme

    def for_endpoint(self, endpoint: str) -> Transport:
        scheme = split_endpoint(endpoint)[0]
        transport = self._by_scheme.get(scheme)
        if transport is None:
            raise CommFailure(
                f"no transport for scheme {scheme!r} "
                f"(have: {sorted(self._by_scheme)})"
            )
        return transport

    def connect(self, endpoint: str) -> Channel:
        return self.for_endpoint(endpoint).connect(endpoint)

    def listen(self, endpoint: str, on_connect: OnConnect) -> Listener:
        return self.for_endpoint(endpoint).listen(endpoint, on_connect)


def split_endpoint(endpoint: str) -> "tuple[str, str]":
    """``"tcp://host:1234"`` → ``("tcp", "host:1234")``."""
    scheme, sep, rest = endpoint.partition("://")
    if not sep or not scheme:
        raise CommFailure(f"malformed endpoint {endpoint!r}")
    return scheme, rest
