"""Transport abstractions shared by all implementations."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Optional

from repro.errors import CommFailure


class Channel(ABC):
    """A bidirectional, frame-oriented connection between two spaces.

    ``send`` either queues the whole frame or raises
    :class:`~repro.errors.CommFailure`; frames are never split or
    merged.  ``recv`` blocks for the next frame and returns ``None``
    on orderly end-of-stream.  Both directions may be used from
    multiple threads; implementations serialise sends internally.
    """

    @abstractmethod
    def send(self, payload: bytes) -> None: ...

    @abstractmethod
    def recv(self, timeout: Optional[float] = None) -> Optional[bytes]: ...

    @abstractmethod
    def close(self) -> None: ...

    @property
    @abstractmethod
    def closed(self) -> bool: ...


class Listener(ABC):
    """An open listening endpoint; ``endpoint`` is its concrete address
    (e.g. with the ephemeral TCP port filled in)."""

    endpoint: str

    @abstractmethod
    def close(self) -> None: ...


OnConnect = Callable[[Channel], None]


class Transport(ABC):
    """Factory for listeners and outgoing channels of one scheme."""

    scheme: str

    @abstractmethod
    def listen(self, endpoint: str, on_connect: OnConnect) -> Listener: ...

    @abstractmethod
    def connect(self, endpoint: str) -> Channel: ...


class TransportRegistry:
    """Maps endpoint schemes (``tcp``, ``inproc``, ``sim``) to transports."""

    def __init__(self) -> None:
        self._by_scheme: Dict[str, Transport] = {}

    def add(self, transport: Transport) -> None:
        self._by_scheme[transport.scheme] = transport

    def for_endpoint(self, endpoint: str) -> Transport:
        scheme = split_endpoint(endpoint)[0]
        transport = self._by_scheme.get(scheme)
        if transport is None:
            raise CommFailure(
                f"no transport for scheme {scheme!r} "
                f"(have: {sorted(self._by_scheme)})"
            )
        return transport

    def connect(self, endpoint: str) -> Channel:
        return self.for_endpoint(endpoint).connect(endpoint)

    def listen(self, endpoint: str, on_connect: OnConnect) -> Listener:
        return self.for_endpoint(endpoint).listen(endpoint, on_connect)


def split_endpoint(endpoint: str) -> "tuple[str, str]":
    """``"tcp://host:1234"`` → ``("tcp", "host:1234")``."""
    scheme, sep, rest = endpoint.partition("://")
    if not sep or not scheme:
        raise CommFailure(f"malformed endpoint {endpoint!r}")
    return scheme, rest
